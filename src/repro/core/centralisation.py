"""Concentration of users and toots across instances (Section 4.1, Fig. 2).

The paper's core observation is that, despite decentralisation, users and
content concentrate on a handful of instances: the top 5% of instances
hold ~90% of users and ~95% of toots, open instances are far larger than
closed ones, yet closed instances have more active and more prolific
users per capita.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.datasets.instances import InstancesDataset
from repro.stats.distributions import ECDF, pareto_share
from repro.stats.summary import gini_coefficient


@dataclass(frozen=True, slots=True)
class RegistrationSplit:
    """Instance/user/toot shares of open vs closed instances (Fig. 2b)."""

    open_instances: int
    closed_instances: int
    open_users: int
    closed_users: int
    open_toots: int
    closed_toots: int

    @property
    def open_instance_share(self) -> float:
        """Fraction of instances with open registrations."""
        total = self.open_instances + self.closed_instances
        return self.open_instances / total if total else 0.0

    @property
    def open_user_share(self) -> float:
        """Fraction of users registered on open instances."""
        total = self.open_users + self.closed_users
        return self.open_users / total if total else 0.0

    @property
    def open_toot_share(self) -> float:
        """Fraction of toots hosted on open instances."""
        total = self.open_toots + self.closed_toots
        return self.open_toots / total if total else 0.0

    @property
    def mean_users_open(self) -> float:
        """Mean user count of open instances."""
        return self.open_users / self.open_instances if self.open_instances else 0.0

    @property
    def mean_users_closed(self) -> float:
        """Mean user count of closed instances."""
        return self.closed_users / self.closed_instances if self.closed_instances else 0.0

    @property
    def toots_per_user_open(self) -> float:
        """Per-capita toot count on open instances."""
        return self.open_toots / self.open_users if self.open_users else 0.0

    @property
    def toots_per_user_closed(self) -> float:
        """Per-capita toot count on closed instances."""
        return self.closed_toots / self.closed_users if self.closed_users else 0.0


def registration_split(dataset: InstancesDataset) -> RegistrationSplit:
    """Compute the open/closed breakdown of instances, users and toots."""
    users = dataset.users_per_instance()
    toots = dataset.toots_per_instance()
    open_domains = set(dataset.open_domains())
    closed_domains = set(dataset.closed_domains())
    if not open_domains and not closed_domains:
        raise AnalysisError("the dataset contains no instances")
    return RegistrationSplit(
        open_instances=len(open_domains),
        closed_instances=len(closed_domains),
        open_users=sum(users[d] for d in open_domains),
        closed_users=sum(users[d] for d in closed_domains),
        open_toots=sum(toots[d] for d in open_domains),
        closed_toots=sum(toots[d] for d in closed_domains),
    )


def per_instance_count_cdfs(dataset: InstancesDataset) -> dict[str, ECDF]:
    """CDFs of users and toots per instance, split by registration (Fig. 2a).

    Returns four ECDFs keyed ``users_open``, ``users_closed``,
    ``toots_open``, ``toots_closed``.  Zero-count instances are kept (they
    contribute the left edge of the CDF), but at least one positive value
    is required per group.
    """
    users = dataset.users_per_instance()
    toots = dataset.toots_per_instance()
    open_domains = dataset.open_domains()
    closed_domains = dataset.closed_domains()
    cdfs: dict[str, ECDF] = {}
    for label, domains, counts in (
        ("users_open", open_domains, users),
        ("users_closed", closed_domains, users),
        ("toots_open", open_domains, toots),
        ("toots_closed", closed_domains, toots),
    ):
        sample = [counts[d] for d in domains]
        if sample:
            cdfs[label] = ECDF(sample)
    if not cdfs:
        raise AnalysisError("no instances to build per-instance CDFs from")
    return cdfs


def activity_level_cdfs(dataset: InstancesDataset) -> dict[str, ECDF]:
    """CDFs of per-instance activity levels, overall and by registration (Fig. 2c)."""
    all_levels = []
    open_levels = []
    closed_levels = []
    open_domains = set(dataset.open_domains())
    for domain in dataset.domains():
        level = dataset.activity_level(domain)
        all_levels.append(level)
        if domain in open_domains:
            open_levels.append(level)
        else:
            closed_levels.append(level)
    cdfs = {"all": ECDF(all_levels)}
    if open_levels:
        cdfs["open"] = ECDF(open_levels)
    if closed_levels:
        cdfs["closed"] = ECDF(closed_levels)
    return cdfs


def concentration_metrics(dataset: InstancesDataset) -> dict[str, float]:
    """Headline concentration numbers of Section 4.1.

    Includes the user/toot share of the top 5% and top 10% of instances,
    and the Gini coefficients of both allocations.
    """
    users = list(dataset.users_per_instance().values())
    toots = list(dataset.toots_per_instance().values())
    if not users:
        raise AnalysisError("the dataset contains no instances")
    return {
        "top5pct_user_share": pareto_share(users, 0.05),
        "top10pct_user_share": pareto_share(users, 0.10),
        "top5pct_toot_share": pareto_share(toots, 0.05),
        "top10pct_toot_share": pareto_share(toots, 0.10),
        "user_gini": gini_coefficient(users),
        "toot_gini": gini_coefficient(toots),
    }


def smallest_fraction_hosting_share(dataset: InstancesDataset, share: float = 0.5) -> float:
    """Smallest fraction of instances that together host ``share`` of users.

    The paper phrases this as "10% of instances host almost half of the
    users"; this helper answers the inverse question directly.
    """
    if not 0.0 < share <= 1.0:
        raise AnalysisError("share must be in (0, 1]")
    users = sorted(dataset.users_per_instance().values(), reverse=True)
    total = sum(users)
    if total == 0:
        raise AnalysisError("the dataset reports zero users")
    running = 0
    for count, value in enumerate(users, start=1):
        running += value
        if running >= share * total:
            return count / len(users)
    return 1.0
