"""Fig. 12 — impact of removing the most-connected accounts from G(V,E).

Paper shape: Mastodon's social graph is far more sensitive than Twitter's
— removing the top 1% of accounts shrinks Mastodon's LCC from ~100% to
26% of users, while Twitter retains ~80% even after losing the top 10%.

Thin timing wrapper over the ``fig12`` registry runner (the sweeps
dispatch through the engine's CSR/csgraph kernels).
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_fig12_user_removal(benchmark, ctx):
    result = benchmark(lambda: get_experiment("fig12").run(ctx))
    emit("Fig. 12 — removing the top 1% of accounts per round", result.render_text())

    assert result.scalar("mastodon_initial_lcc") > 0.9
    # the LCC shrinks and Mastodon degrades at least as fast as Twitter
    assert result.scalar("mastodon_lcc_drop") > 0.05
    assert result.scalar("mastodon_lcc_drop") >= result.scalar("twitter_lcc_drop") - 0.05
