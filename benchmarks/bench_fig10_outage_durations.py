"""Fig. 10 — continuous outage durations and the users/toots they affect.

Paper shape: almost every instance goes down at least once; a quarter of
instances disappear for at least a day, 7% for over a month; 14% of users
lose access to their instance for a whole day at least once.
"""

from __future__ import annotations

import numpy as np

from repro.core import availability
from repro.reporting import format_percentage, format_table

from benchmarks.conftest import emit


def test_fig10_outage_durations(benchmark, data):
    report = benchmark(lambda: availability.outage_durations(data.instances, min_days=1.0))
    durations = report.durations_days
    rows = [
        ["instances down at least once", format_percentage(report.share_of_instances_down_at_least_once), "98%"],
        ["instances down >= 1 day", format_percentage(report.share_down_at_least_one_day), "~25%"],
        ["longest outage (days)", round(max(durations), 1) if durations else 0, ">30"],
        ["median long outage (days)", round(float(np.median(durations)), 1) if durations else 0, "-"],
        ["users affected by >=1-day outages", report.affected_users, "-"],
        ["toots affected by >=1-day outages", report.affected_toots, "-"],
    ]
    emit("Fig. 10 — continuous outage durations", format_table(["metric", "measured", "paper"], rows))

    assert report.share_of_instances_down_at_least_once > 0.7
    assert 0.05 < report.share_down_at_least_one_day < 0.8
    assert report.affected_users > 0
