"""Tests for the availability schedule and outage bookkeeping."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.fediverse.uptime import (
    ASOutageEvent,
    AvailabilitySchedule,
    Outage,
    OutageCause,
)
from repro.simtime import MINUTES_PER_DAY, TimeWindow

WINDOW = 10 * MINUTES_PER_DAY


def make_schedule() -> AvailabilitySchedule:
    return AvailabilitySchedule(window_minutes=WINDOW)


class TestOutage:
    def test_durations(self):
        outage = Outage("a.example", TimeWindow(0, MINUTES_PER_DAY))
        assert outage.duration_minutes == MINUTES_PER_DAY
        assert outage.duration_days == pytest.approx(1.0)
        assert outage.cause is OutageCause.INSTANCE


class TestAvailabilitySchedule:
    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            AvailabilitySchedule(window_minutes=0)

    def test_online_by_default(self):
        schedule = make_schedule()
        assert schedule.is_online("a.example", 100)
        assert schedule.downtime_minutes("a.example") == 0

    def test_outage_makes_instance_offline(self):
        schedule = make_schedule()
        schedule.add_outage(Outage("a.example", TimeWindow(100, 200)))
        assert not schedule.is_online("a.example", 150)
        assert schedule.is_online("a.example", 99)
        assert schedule.is_online("a.example", 200)

    def test_outage_clipped_to_window(self):
        schedule = make_schedule()
        schedule.add_outage(Outage("a.example", TimeWindow(WINDOW - 50, WINDOW + 500)))
        assert schedule.downtime_minutes("a.example") == 50

    def test_outage_outside_window_ignored(self):
        schedule = make_schedule()
        schedule.add_outage(Outage("a.example", TimeWindow(WINDOW + 10, WINDOW + 20)))
        assert schedule.outages_for("a.example") == []

    def test_downtime_fraction(self):
        schedule = make_schedule()
        schedule.add_outage(Outage("a.example", TimeWindow(0, WINDOW // 2)))
        assert schedule.downtime_fraction("a.example") == pytest.approx(0.5)

    def test_downtime_fraction_invalid_range(self):
        schedule = make_schedule()
        with pytest.raises(ConfigurationError):
            schedule.downtime_fraction("a.example", 10, 10)

    def test_overlapping_outages_merged_for_downtime(self):
        schedule = make_schedule()
        schedule.add_outage(Outage("a.example", TimeWindow(0, 100)))
        schedule.add_outage(Outage("a.example", TimeWindow(50, 150)))
        assert schedule.downtime_minutes("a.example") == 150
        assert len(schedule.merged_outage_windows("a.example")) == 1

    def test_daily_downtime_fractions(self):
        schedule = make_schedule()
        schedule.add_outage(Outage("a.example", TimeWindow(0, MINUTES_PER_DAY // 2)))
        daily = schedule.daily_downtime_fractions("a.example")
        assert len(daily) == 10
        assert daily[0] == pytest.approx(0.5)
        assert daily[1] == 0.0

    def test_continuous_outage_days_and_longest(self):
        schedule = make_schedule()
        schedule.add_outage(Outage("a.example", TimeWindow(0, 2 * MINUTES_PER_DAY)))
        schedule.add_outage(Outage("a.example", TimeWindow(5 * MINUTES_PER_DAY, 6 * MINUTES_PER_DAY)))
        days = schedule.continuous_outage_days("a.example")
        assert days == pytest.approx([2.0, 1.0])
        assert schedule.longest_outage_days("a.example") == pytest.approx(2.0)
        assert schedule.longest_outage_days("never-down.example") == 0.0

    def test_as_event_adds_per_instance_outages(self):
        schedule = make_schedule()
        event = ASOutageEvent(
            asn=9370,
            window=TimeWindow(100, 200),
            domains=("a.example", "b.example"),
        )
        schedule.add_as_event(event)
        assert not schedule.is_online("a.example", 150)
        assert not schedule.is_online("b.example", 150)
        assert len(schedule.as_events()) == 1
        assert all(o.cause is OutageCause.AS_FAILURE for o in schedule.outages_for("a.example"))

    def test_permanent_down(self):
        schedule = make_schedule()
        schedule.mark_permanently_down("a.example", 5 * MINUTES_PER_DAY)
        assert schedule.is_permanently_down("a.example")
        assert not schedule.is_permanently_down("a.example", minute=0)
        assert schedule.is_permanently_down("a.example", minute=6 * MINUTES_PER_DAY)
        assert schedule.is_online("a.example", 0)
        assert not schedule.is_online("a.example", WINDOW - 1)
        assert not schedule.is_permanently_down("b.example")

    @given(
        st.lists(
            st.tuples(st.integers(0, WINDOW - 1), st.integers(1, MINUTES_PER_DAY)),
            min_size=1,
            max_size=20,
        )
    )
    def test_downtime_never_exceeds_window(self, raw):
        schedule = make_schedule()
        for start, length in raw:
            schedule.add_outage(Outage("a.example", TimeWindow(start, start + length)))
        downtime = schedule.downtime_minutes("a.example")
        assert 0 <= downtime <= WINDOW
        assert 0.0 <= schedule.downtime_fraction("a.example") <= 1.0
