"""Where instances are hosted: countries, ASes and cross-country federation.

Covers Fig. 5 (top countries / ASes by instances, users and toots) and
Fig. 6 (the Sankey of federated subscription links between countries),
the analyses behind the paper's "infrastructure-driven pressures towards
centralisation".
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import AnalysisError
from repro.datasets.instances import InstancesDataset
from repro.fediverse.geo import hoster_of_asn


@dataclass(frozen=True, slots=True)
class HostingShare:
    """Instance/user/toot shares attributed to one hosting location."""

    key: str
    instances: int
    users: int
    toots: int
    instance_share: float
    user_share: float
    toot_share: float


def country_breakdown(dataset: InstancesDataset, top: int | None = None) -> list[HostingShare]:
    """Per-country shares of instances, users and toots (Fig. 5 top)."""
    return _grouped_breakdown(dataset, by="country", top=top)


def asn_breakdown(dataset: InstancesDataset, top: int | None = None) -> list[HostingShare]:
    """Per-AS shares of instances, users and toots (Fig. 5 bottom)."""
    return _grouped_breakdown(dataset, by="asn", top=top)


def hoster_breakdown(dataset: InstancesDataset, top: int | None = None) -> list[HostingShare]:
    """Per-hosting-provider shares, with sibling ASNs collapsed (Tables 1-2).

    The provider — not the individual AS — is the failure domain of a
    correlated outage, so this is the grouping
    :class:`~repro.engine.failures.HosterRemoval` sweeps over.
    """
    return _grouped_breakdown(dataset, by="hoster", top=top)


def _grouped_breakdown(
    dataset: InstancesDataset, by: str, top: int | None
) -> list[HostingShare]:
    users = dataset.users_per_instance()
    toots = dataset.toots_per_instance()
    total_instances = len(dataset.domains())
    total_users = sum(users.values())
    total_toots = sum(toots.values())
    if total_instances == 0:
        raise AnalysisError("the dataset contains no instances")

    groups: dict[str, list[str]] = {}
    for domain in dataset.domains():
        metadata = dataset.metadata_for(domain)
        if by == "country":
            key = metadata.country or "unknown"
        elif by == "asn":
            key = metadata.as_name or f"AS{metadata.asn}"
        elif by == "hoster":
            key = hoster_of_asn(metadata.asn, metadata.as_name)
        else:
            raise AnalysisError(f"unknown grouping: {by!r}")
        groups.setdefault(key, []).append(domain)

    shares = [
        HostingShare(
            key=key,
            instances=len(domains),
            users=sum(users[d] for d in domains),
            toots=sum(toots[d] for d in domains),
            instance_share=len(domains) / total_instances,
            user_share=(sum(users[d] for d in domains) / total_users) if total_users else 0.0,
            toot_share=(sum(toots[d] for d in domains) / total_toots) if total_toots else 0.0,
        )
        for key, domains in groups.items()
    ]
    shares.sort(key=lambda share: share.users, reverse=True)
    return shares if top is None else shares[:top]


def top_as_user_share(dataset: InstancesDataset, top: int = 3) -> float:
    """Fraction of users hosted by the ``top`` ASes (paper: top 3 hold ~62%)."""
    shares = asn_breakdown(dataset)
    return sum(share.user_share for share in shares[:top])


@dataclass(frozen=True, slots=True)
class CountryFlow:
    """Federated subscription volume from one hosting country to another."""

    source_country: str
    target_country: str
    links: int
    share_of_source: float


def country_federation_flows(
    federation_graph: nx.DiGraph,
    dataset: InstancesDataset,
    top_sources: int = 5,
) -> list[CountryFlow]:
    """Cross-country federated subscription flows (Fig. 6 Sankey data).

    Every edge of the federation graph is attributed to the hosting
    countries of its two endpoint instances and weighted by the number of
    underlying follow relationships (the edge ``weight``).
    """
    country_of: dict[str, str] = {
        domain: dataset.metadata_for(domain).country or "unknown"
        for domain in dataset.domains()
    }
    outgoing: dict[str, dict[str, int]] = {}
    for source, target, data in federation_graph.edges(data=True):
        weight = int(data.get("weight", 1))
        source_country = country_of.get(source, "unknown")
        target_country = country_of.get(target, "unknown")
        outgoing.setdefault(source_country, {}).setdefault(target_country, 0)
        outgoing[source_country][target_country] += weight
    if not outgoing:
        raise AnalysisError("the federation graph has no cross-instance edges")

    totals = {country: sum(targets.values()) for country, targets in outgoing.items()}
    ranked_sources = sorted(totals, key=lambda c: totals[c], reverse=True)[:top_sources]
    flows: list[CountryFlow] = []
    for source_country in ranked_sources:
        for target_country, links in sorted(
            outgoing[source_country].items(), key=lambda kv: kv[1], reverse=True
        ):
            flows.append(
                CountryFlow(
                    source_country=source_country,
                    target_country=target_country,
                    links=links,
                    share_of_source=links / totals[source_country],
                )
            )
    return flows


def federation_homophily(
    federation_graph: nx.DiGraph, dataset: InstancesDataset
) -> dict[str, float]:
    """Same-country share of federated links and top-5-country concentration.

    The paper reports that ~32% of federated links stay within one country
    and that the top five countries attract ~94% of all subscription links.
    """
    country_of: dict[str, str] = {
        domain: dataset.metadata_for(domain).country or "unknown"
        for domain in dataset.domains()
    }
    total_links = 0
    same_country_links = 0
    links_touching_country: dict[str, int] = {}
    for source, target, data in federation_graph.edges(data=True):
        weight = int(data.get("weight", 1))
        total_links += weight
        source_country = country_of.get(source, "unknown")
        target_country = country_of.get(target, "unknown")
        if source_country == target_country:
            same_country_links += weight
        for country in {source_country, target_country}:
            links_touching_country[country] = links_touching_country.get(country, 0) + weight
    if total_links == 0:
        raise AnalysisError("the federation graph has no cross-instance edges")
    top5 = sorted(links_touching_country.values(), reverse=True)[:5]
    return {
        "same_country_share": same_country_links / total_links,
        "top5_country_link_share": min(1.0, sum(top5) / total_links),
        "total_links": float(total_links),
    }
