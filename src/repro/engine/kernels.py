"""Batch reduction kernels over toot×instance incidence matrices.

Each kernel replaces a per-toot Python loop with one vectorised pass:

* a toot's **kill step** is the maximum removal step over the domains
  holding a copy (it dies only when its *last* replica disappears);
* per-row maxima over the CSR structure come from
  :func:`numpy.maximum.reduceat` on the ``indptr``/``indices`` arrays;
* losses per step are a single :func:`numpy.bincount`, and the
  availability curve is one cumulative sum.

The arithmetic mirrors the legacy loops operation-for-operation, so the
results are bit-identical — the differential suite in
``tests/engine/test_equivalence.py`` holds the engine to exact equality.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.errors import AnalysisError


def _check_rows(matrix: sparse.csr_matrix) -> None:
    if matrix.shape[0] == 0:
        raise AnalysisError("the placement map is empty")
    if np.any(np.diff(matrix.indptr) == 0):
        raise AnalysisError("every toot needs at least one holding instance")


def kill_steps(matrix: sparse.csr_matrix, removal_steps: np.ndarray) -> np.ndarray:
    """Per-toot kill step: the max removal step over its holding domains.

    ``removal_steps`` is a dense per-domain vector (``np.inf`` for domains
    that never fail).  Returns a float vector with ``np.inf`` for toots
    that survive the whole schedule.
    """
    _check_rows(matrix)
    values = np.asarray(removal_steps, dtype=np.float64)[matrix.indices]
    return np.maximum.reduceat(values, matrix.indptr[:-1])


def kill_steps_batch(matrix: sparse.csr_matrix, removal_matrix: np.ndarray) -> np.ndarray:
    """Kill steps for many removal schedules at once.

    ``removal_matrix`` has shape ``(n_domains, k)`` — one column per
    schedule.  Returns ``(n_toots, k)``.  Each schedule is one contiguous
    1-D gather + ``reduceat`` pass over the shared CSR structure (faster
    than a single 2-D pass: the per-domain table stays cache-resident).
    """
    _check_rows(matrix)
    removal_matrix = np.asarray(removal_matrix, dtype=np.float64)
    if removal_matrix.ndim != 2:
        raise AnalysisError("removal_matrix must be 2-D (n_domains, k)")
    kill = np.empty((matrix.shape[0], removal_matrix.shape[1]), dtype=np.float64)
    sentinel = np.iinfo(np.int32).max
    for j in range(removal_matrix.shape[1]):
        column = removal_matrix[:, j]
        finite = np.isfinite(column)
        if finite.any() and column[finite].max() >= sentinel:
            # schedules longer than int32 can hold: fall back to floats
            values = column[matrix.indices]
            kill[:, j] = np.maximum.reduceat(values, matrix.indptr[:-1])
            continue
        # int32 with a "never removed" sentinel halves the gather/reduceat
        # traffic vs float64; removal steps are small integers
        lookup = np.where(finite, column, float(sentinel)).astype(np.int32)
        values = lookup[matrix.indices]
        killed = np.maximum.reduceat(values, matrix.indptr[:-1])
        out = killed.astype(np.float64)
        out[killed == sentinel] = np.inf
        kill[:, j] = out
    return kill


def losses_per_step(kill: np.ndarray, steps: int) -> np.ndarray:
    """Count the toots dying at each step (index 0 is always zero)."""
    finite = np.isfinite(kill)
    killed = kill[finite].astype(np.int64)
    if killed.size and (killed.min() < 1 or killed.max() > steps):
        raise AnalysisError("kill steps fall outside the removal schedule")
    return np.bincount(killed, minlength=steps + 1)[: steps + 1]


def availability_from_losses(losses: np.ndarray, total: int) -> np.ndarray:
    """Availability curve (length ``steps + 1``) from per-step losses."""
    if total <= 0:
        raise AnalysisError("the placement map is empty")
    lost = np.cumsum(losses.astype(np.int64))
    return 1.0 - lost / total


def availability_curve_array(
    matrix: sparse.csr_matrix, removal_steps: np.ndarray, steps: int
) -> np.ndarray:
    """Availability after 0..``steps`` removals, as one dense vector."""
    kill = kill_steps(matrix, removal_steps)
    losses = losses_per_step(kill, steps)
    return availability_from_losses(losses, matrix.shape[0])


def availability_curves_batch(
    matrix: sparse.csr_matrix,
    removal_matrix: np.ndarray,
    steps_per_schedule: np.ndarray,
) -> list[np.ndarray]:
    """Availability curves for many schedules sharing one incidence matrix.

    ``steps_per_schedule[j]`` is the schedule length of column ``j``; the
    returned list holds one curve of length ``steps_per_schedule[j] + 1``
    per schedule.
    """
    kill = kill_steps_batch(matrix, removal_matrix)
    total = matrix.shape[0]
    curves: list[np.ndarray] = []
    for j, steps in enumerate(np.asarray(steps_per_schedule, dtype=np.int64)):
        losses = losses_per_step(kill[:, j], int(steps))
        curves.append(availability_from_losses(losses, total))
    return curves
