"""The columnar corpus store: the crawl as integer-coded column shards.

The paper's dataset is a 67M-toot de-duplicated union of every
instance's federated timeline.  With the availability sweeps streaming
(PR 4), the corpus itself — ``TootRecord`` lists held by
``TootCrawlResult``, the dict-based dedup in ``unique_toots()``, and
placement construction from record lists — became the memory/time
ceiling: every observed toot existed as a Python object before a single
placement array was built.  This package removes that ceiling by keeping
the corpus columnar from the first crawled page onward:

* :class:`CorpusWriter` — the streaming write path.  It sits behind
  :class:`~repro.crawler.toot_crawler.TootCrawler` as a page sink:
  crawled pages are encoded straight into per-instance column spools
  (no ``TootRecord`` objects), spools seal to disk as each instance
  completes, and ``finalise()`` merges them in sorted-domain order —
  interning instance domains, author handles, hashtags, and toot URLs
  (the URL intern table *is* the dedup, replacing the global
  ``unique_toots()`` dict of records) — flushing fixed-size shards to
  disk as ``.npz`` files under a small JSON manifest;
* :class:`CorpusStore` — the read path.  Shards load lazily (one
  ``.npz`` member at a time), so touching one column of one shard never
  materialises anything else; :class:`TootColumns` is the per-shard
  column bundle and :meth:`CorpusStore.urls` a corpus-wide lazy
  URL sequence;
* :class:`GraphWriter` / :class:`GraphStore` — the same treatment for
  the follower graph (:mod:`repro.corpus.graph`): the graph crawler
  streams edges into per-instance spools, ``finalise()`` interns the
  handles in first-appearance order and flushes integer edge shards, and
  the store answers the placement/resilience queries (follower-domain
  sets, adjacency matrices) without ever building a networkx graph;
* :mod:`repro.corpus.placement` — placement construction straight from
  columns: :meth:`PlacementArrays.from_corpus
  <repro.engine.placement.PlacementArrays.from_corpus>` builds home
  codes and replica CSR arrays shard by shard, and the corpus shard
  boundaries flow through to :class:`~repro.engine.sharding.ShardedIncidence`
  so the sweep streams over exactly the shards the crawl wrote.

The merge order (instances sorted by domain, pages in crawl order,
first-seen URL wins) reproduces the legacy
``TootCrawlResult.unique_toots()`` ordering exactly, which is what makes
corpus-built placements — and every availability curve derived from
them — bit-identical to the record-list path.
"""

from repro.corpus.columns import COLUMN_NAMES, CORPUS_SCHEMA, TootColumns
from repro.corpus.journal import CrawlJournal, InstanceProgress, JournalReplay
from repro.corpus.graph import (
    DEFAULT_GRAPH_SHARD_SIZE,
    GRAPH_SCHEMA,
    GraphStore,
    GraphWriter,
)
from repro.corpus.store import CorpusStore, CorpusUrls
from repro.corpus.writer import DEFAULT_CORPUS_SHARD_SIZE, CorpusWriter
from repro.corpus.placement import (
    build_no_replication_from_corpus,
    build_random_replication_from_corpus,
    build_subscription_replication_from_corpus,
)

__all__ = [
    "COLUMN_NAMES",
    "CORPUS_SCHEMA",
    "CorpusStore",
    "CorpusUrls",
    "CorpusWriter",
    "CrawlJournal",
    "InstanceProgress",
    "JournalReplay",
    "DEFAULT_CORPUS_SHARD_SIZE",
    "DEFAULT_GRAPH_SHARD_SIZE",
    "GRAPH_SCHEMA",
    "GraphStore",
    "GraphWriter",
    "TootColumns",
    "build_no_replication_from_corpus",
    "build_random_replication_from_corpus",
    "build_subscription_replication_from_corpus",
]
