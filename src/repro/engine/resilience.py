"""Vectorised graph-removal trajectories (Figs. 11-13 hot paths).

The legacy sweeps copy a :mod:`networkx` graph and re-run pure-Python
BFS after every removal round.  Here the graph is converted **once** to a
binary CSR adjacency matrix; each round is a boolean mask, a submatrix
slice, and one :func:`scipy.sparse.csgraph.connected_components` call —
the same trajectory, computed in C.

Exact equivalence with the legacy sweeps (including tie-breaking when
degrees are equal) relies on two invariants:

* node columns follow the graph's insertion order, which is also the
  iteration order :func:`sorted` saw in the legacy code;
* top-degree selection uses a *stable* descending argsort, matching
  Python's stable ``sorted(..., reverse=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import networkx as nx
import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from repro.errors import AnalysisError
from repro.core.resilience import RemovalStep


@dataclass
class GraphMatrix:
    """Binary CSR adjacency plus node indexing, built once per graph."""

    adjacency: sparse.csr_matrix
    nodes: tuple
    index: dict
    directed: bool

    @classmethod
    def from_networkx(cls, graph: nx.Graph | nx.DiGraph) -> "GraphMatrix":
        nodes = tuple(graph.nodes())
        if not nodes:
            raise AnalysisError("cannot build a matrix from an empty graph")
        adjacency = sparse.csr_matrix(
            nx.to_scipy_sparse_array(graph, nodelist=list(nodes), weight=None, format="csr")
        )
        return cls(
            adjacency=adjacency,
            nodes=nodes,
            index={node: i for i, node in enumerate(nodes)},
            directed=graph.is_directed(),
        )

    @classmethod
    def from_graph_store(cls, store, directed: bool = True) -> "GraphMatrix":
        """Build the adjacency straight from an on-disk edge-shard store.

        ``store`` is a :class:`repro.corpus.graph.GraphStore`; its node
        intern order matches :func:`build_follower_graph` insertion
        order, so the resulting matrix is bit-compatible with
        :meth:`from_networkx` over the equivalent networkx graph.
        """
        n = store.n_nodes
        if n == 0:
            raise AnalysisError("cannot build a matrix from an empty graph")
        sources = []
        targets = []
        for _, follower, followed in store.iter_edges():
            sources.append(follower.astype(np.int64, copy=False))
            targets.append(followed.astype(np.int64, copy=False))
        src = np.concatenate(sources) if sources else np.empty(0, dtype=np.int64)
        dst = np.concatenate(targets) if targets else np.empty(0, dtype=np.int64)
        if not directed:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        adjacency = sparse.coo_matrix(
            (np.ones(src.size, dtype=np.int64), (src, dst)), shape=(n, n)
        ).tocsr()
        adjacency.data[:] = 1  # duplicate edges must not leave weights > 1
        nodes = tuple(store.handles.tolist())
        return cls(
            adjacency=adjacency,
            nodes=nodes,
            index={node: i for i, node in enumerate(nodes)},
            directed=directed,
        )

    @property
    def n_nodes(self) -> int:
        return self.adjacency.shape[0]


def _as_matrix(graph: "nx.Graph | nx.DiGraph | GraphMatrix") -> GraphMatrix:
    if isinstance(graph, GraphMatrix):
        return graph
    if hasattr(graph, "shard_edges"):  # duck-typed GraphStore
        return GraphMatrix.from_graph_store(graph)
    return GraphMatrix.from_networkx(graph)


def _lcc_and_components_from_sub(
    sub: sparse.csr_matrix, directed: bool, initial_nodes: int
) -> tuple[float, int]:
    """LCC fraction (of the initial node count) and component count."""
    if sub.shape[0] == 0:
        return 0.0, 0
    n_components, labels = csgraph.connected_components(
        sub, directed=directed, connection="weak"
    )
    largest = int(np.bincount(labels).max())
    return largest / initial_nodes, int(n_components)


def _lcc_and_components(
    gm: GraphMatrix, alive_index: np.ndarray, initial_nodes: int
) -> tuple[float, int]:
    sub = gm.adjacency[alive_index][:, alive_index]
    return _lcc_and_components_from_sub(sub, gm.directed, initial_nodes)


def _total_degrees(sub: sparse.csr_matrix, directed: bool) -> np.ndarray:
    """networkx-compatible total degrees (self-loops count twice)."""
    row = np.asarray(sub.sum(axis=1)).ravel()
    if directed:
        col = np.asarray(sub.sum(axis=0)).ravel()
        return row + col
    return row + sub.diagonal()


def _step(gm: GraphMatrix, alive: np.ndarray, removed: int, initial: int) -> RemovalStep:
    lcc, components = _lcc_and_components(gm, np.flatnonzero(alive), initial)
    return RemovalStep(
        removed_fraction=removed / initial,
        removed_count=removed,
        lcc_fraction=lcc,
        components=components,
    )


def user_removal_sweep_matrix(
    graph: "nx.DiGraph | GraphMatrix",
    rounds: int = 20,
    fraction_per_round: float = 0.01,
) -> list[RemovalStep]:
    """Vectorised twin of :func:`repro.core.resilience.user_removal_sweep`."""
    if rounds < 1:
        raise AnalysisError("need at least one removal round")
    if not 0.0 < fraction_per_round <= 1.0:
        raise AnalysisError("fraction_per_round must be in (0, 1]")
    if isinstance(graph, nx.Graph) and graph.number_of_nodes() == 0:
        raise AnalysisError("the follower graph is empty")
    gm = _as_matrix(graph)
    initial = gm.n_nodes
    alive = np.ones(initial, dtype=bool)

    # each round's end-of-round submatrix doubles as the next round's
    # degree source, so the alive×alive slice happens once per round
    sub = gm.adjacency
    alive_index = np.arange(initial)
    lcc, components = _lcc_and_components_from_sub(sub, gm.directed, initial)
    steps = [
        RemovalStep(
            removed_fraction=0.0, removed_count=0, lcc_fraction=lcc, components=components
        )
    ]
    removed_total = 0
    for _ in range(rounds):
        remaining = int(alive_index.size)
        if remaining == 0:
            break
        batch = max(1, int(round(float(fraction_per_round) * remaining)))
        degrees = _total_degrees(sub, gm.directed)
        order = np.argsort(-degrees, kind="stable")
        victims = alive_index[order[:batch]]
        alive[victims] = False
        removed_total += int(victims.size)
        alive_index = np.flatnonzero(alive)
        sub = gm.adjacency[alive_index][:, alive_index]
        lcc, components = _lcc_and_components_from_sub(sub, gm.directed, initial)
        steps.append(
            RemovalStep(
                removed_fraction=removed_total / initial,
                removed_count=removed_total,
                lcc_fraction=lcc,
                components=components,
            )
        )
    return steps


def ranked_removal_sweep_matrix(
    graph: "nx.Graph | nx.DiGraph | GraphMatrix",
    ranking: Sequence[str],
    steps: int = 20,
    per_step: int = 1,
) -> list[RemovalStep]:
    """Vectorised twin of :func:`repro.core.resilience.ranked_removal_sweep`."""
    if steps < 1 or per_step < 1:
        raise AnalysisError("steps and per_step must be positive")
    if isinstance(graph, nx.Graph) and graph.number_of_nodes() == 0:
        raise AnalysisError("cannot run a removal sweep on an empty graph")
    gm = _as_matrix(graph)
    initial = gm.n_nodes
    alive = np.ones(initial, dtype=bool)

    results = [_step(gm, alive, 0, initial)]
    removed = 0
    cursor = 0
    ranking = list(ranking)
    for _ in range(steps):
        batch = ranking[cursor : cursor + per_step]
        cursor += per_step
        if not batch:
            break
        present = [
            gm.index[node] for node in batch if node in gm.index and alive[gm.index[node]]
        ]
        if present:
            alive[np.asarray(present, dtype=np.int64)] = False
        removed += len(present)
        results.append(_step(gm, alive, removed, initial))
    return results


def as_removal_sweep_matrix(
    graph: "nx.DiGraph | GraphMatrix",
    asn_of_instance: Mapping[str, int],
    as_ranking: Sequence[int],
    steps: int = 20,
) -> list[RemovalStep]:
    """Vectorised twin of :func:`repro.core.resilience.as_removal_sweep`."""
    if steps < 1:
        raise AnalysisError("steps must be positive")
    if isinstance(graph, nx.Graph) and graph.number_of_nodes() == 0:
        raise AnalysisError("cannot run a removal sweep on an empty graph")
    gm = _as_matrix(graph)
    initial = gm.n_nodes
    alive = np.ones(initial, dtype=bool)
    domains_per_asn: dict[int, list[str]] = {}
    for domain, asn in asn_of_instance.items():
        domains_per_asn.setdefault(asn, []).append(domain)

    results = [_step(gm, alive, 0, initial)]
    removed = 0
    for asn in list(as_ranking)[:steps]:
        victims = [
            gm.index[d]
            for d in domains_per_asn.get(asn, [])
            if d in gm.index and alive[gm.index[d]]
        ]
        if victims:
            alive[np.asarray(victims, dtype=np.int64)] = False
        removed += len(victims)
        results.append(_step(gm, alive, removed, initial))
    return results
