"""Thread-safe tracing spans with JSONL and Chrome ``trace_event`` export.

A :class:`Tracer` hands out context-manager spans.  Each span records a
name, free-form attributes, a monotonic start time and duration, and its
parent span — tracked through a :mod:`contextvars` variable, so nesting
works across ``with`` blocks, generators, and (where contexts are
propagated) asyncio tasks.  Threads spawned the ordinary way start with
an empty context, so spans opened inside worker threads become roots of
their own trees; the recording side is fully thread-safe either way.

Two properties keep the tracer honest as *infrastructure*:

* **Injectable clock.**  ``Tracer(clock=...)`` accepts any zero-argument
  float callable, so tests assert exact durations without sleeping.
* **No-op fast path.**  A disabled tracer (``enabled=False``) returns a
  shared :data:`NULL_SPAN` singleton whose ``__enter__``/``__exit__`` do
  nothing — instrumented hot paths pay one attribute check and an empty
  ``with`` block, and emit zero events.

Export formats:

* ``jsonl`` — one JSON object per completed span, streamed to the trace
  file as spans close (crash-safe: a killed run keeps everything flushed
  so far).
* ``chrome`` — the Chrome ``trace_event`` array format understood by
  ``chrome://tracing`` and https://ui.perfetto.dev; buffered in memory
  and written on :meth:`Tracer.close`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextvars import ContextVar
from typing import Any, Callable, TextIO

from repro.errors import ConfigurationError

__all__ = [
    "NULL_SPAN",
    "TRACE_FORMATS",
    "Tracer",
    "chrome_trace_events",
    "root_span_seconds",
]

#: Export formats a :class:`Tracer` understands.
TRACE_FORMATS = ("jsonl", "chrome")

_ACTIVE_SPAN: ContextVar["_Span | None"] = ContextVar(
    "repro_obs_active_span", default=None
)


class _NullSpan:
    """The do-nothing span a disabled tracer hands out (a singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        """Discard ``attrs`` (matches :meth:`_Span.set`)."""
        return self


#: Shared no-op span: one allocation for the whole process.
NULL_SPAN = _NullSpan()


class _Span:
    """One live span; becomes an event dict in ``tracer.events`` on exit."""

    __slots__ = (
        "_tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "started",
        "_token",
        "_thread",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self.started = 0.0

    def set(self, **attrs: Any) -> "_Span":
        """Attach attributes to an open span (e.g. results known late)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        parent = _ACTIVE_SPAN.get()
        self.parent_id = parent.span_id if parent is not None else None
        self.span_id = tracer._next_id()
        self._thread = threading.get_ident()
        self._token = _ACTIVE_SPAN.set(self)
        # start the clock last so setup cost stays outside the span
        self.started = tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        ended = self._tracer.clock()
        _ACTIVE_SPAN.reset(self._token)
        self._tracer._record(self, ended, exc_type)
        return False


class Tracer:
    """Collects spans; optionally streams JSONL or exports Chrome format.

    Parameters
    ----------
    path:
        Trace file to write, or ``None`` to only buffer in memory
        (``tracer.events``).
    fmt:
        ``"jsonl"`` (streamed per span) or ``"chrome"`` (written on
        :meth:`close`).
    clock:
        Monotonic float clock; injectable for tests.
    enabled:
        When false, :meth:`span` returns :data:`NULL_SPAN` and nothing
        is ever recorded.
    """

    def __init__(
        self,
        path: str | os.PathLike[str] | None = None,
        *,
        fmt: str = "jsonl",
        clock: Callable[[], float] = time.perf_counter,
        enabled: bool = True,
    ) -> None:
        if fmt not in TRACE_FORMATS:
            raise ConfigurationError(
                f"unknown trace format {fmt!r}; expected one of {TRACE_FORMATS}"
            )
        self.path = os.fspath(path) if path is not None else None
        self.fmt = fmt
        self.clock = clock
        self.enabled = enabled
        self.events: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._last_id = 0
        self._stream: TextIO | None = None
        if self.path is not None and enabled:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
        if self.path is not None and fmt == "jsonl" and enabled:
            self._stream = open(self.path, "w", encoding="utf-8")

    def span(self, name: str, **attrs: Any):
        """A context-manager span (or :data:`NULL_SPAN` when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs)

    def _next_id(self) -> int:
        with self._lock:
            self._last_id += 1
            return self._last_id

    def _record(self, span: _Span, ended: float, exc_type) -> None:
        event: dict[str, Any] = {
            "name": span.name,
            "ts": span.started,
            "dur": max(0.0, ended - span.started),
            "span": span.span_id,
            "parent": span.parent_id,
            "thread": span._thread,
        }
        if span.attrs:
            event["attrs"] = span.attrs
        if exc_type is not None:
            event["error"] = exc_type.__name__
        with self._lock:
            self.events.append(event)
            if self._stream is not None:
                self._stream.write(json.dumps(event, default=str) + "\n")
                self._stream.flush()

    def close(self) -> None:
        """Flush and close the trace file (writes it, for Chrome format)."""
        with self._lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None
        if self.path is not None and self.fmt == "chrome":
            self.export_chrome(self.path)

    def export_chrome(self, path: str | os.PathLike[str]) -> None:
        """Write buffered spans as a Chrome ``trace_event`` JSON file."""
        with self._lock:
            events = list(self.events)
        payload = {"traceEvents": chrome_trace_events(events)}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, default=str)

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def chrome_trace_events(events: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Span events as Chrome ``trace_event`` complete-phase (``X``) dicts."""
    pid = os.getpid()
    chrome = []
    for event in events:
        entry: dict[str, Any] = {
            "ph": "X",
            "name": event["name"],
            "pid": pid,
            "tid": event.get("thread", 0),
            "ts": round(event["ts"] * 1e6, 3),
            "dur": round(event["dur"] * 1e6, 3),
        }
        args = dict(event.get("attrs") or {})
        if event.get("error"):
            args["error"] = event["error"]
        if event.get("parent") is not None:
            args["parent_span"] = event["parent"]
        if args:
            entry["args"] = args
        chrome.append(entry)
    return chrome


def root_span_seconds(events: list[dict[str, Any]]) -> float:
    """Total seconds covered by parentless spans (wall-clock coverage)."""
    return sum(e["dur"] for e in events if e.get("parent") is None)
