"""Dataset export: persist anonymised measurement artefacts to disk.

Shows the data-release workflow the paper followed: collect the three
datasets, anonymise all user-identifying fields, and write JSON-lines
files (snapshots, toots, follower edges) that the analysis layer can be
re-run from without the simulator — plus the same toot catalogue as a
**columnar corpus** (integer-coded ``.npz`` shards + manifest, see
:mod:`repro.corpus`), the format the scale paths build placements from
directly.

Run with::

    python examples/dataset_export.py [output_dir]
"""

from __future__ import annotations

import shutil
import sys
from pathlib import Path

from repro import build_scenario, collect_datasets
from repro.corpus import CorpusWriter
from repro.crawler import FollowerGraphCrawler, SimulatedTransport, TootCrawler
from repro.datasets import (
    Anonymiser,
    GraphDataset,
    TootsDataset,
    load_edges,
    load_toot_records,
    save_edges,
    save_snapshots,
    save_toot_records,
)


def main(output_dir: str = "dataset_export") -> None:
    output = Path(output_dir)
    network = build_scenario("tiny", seed=99)
    data = collect_datasets(network, monitor_interval_minutes=24 * 60)

    # Re-run the raw crawls so we have the raw records to anonymise and export.
    transport = SimulatedTransport(network)
    toot_crawl = TootCrawler(transport, threads=4).crawl()
    graph_crawl = FollowerGraphCrawler(transport, threads=4).crawl()

    anonymiser = Anonymiser()
    toot_records = anonymiser.anonymise_toots(toot_crawl.all_records())
    edges = anonymiser.anonymise_edges(graph_crawl.edges)

    snapshot_count = save_snapshots(output / "instance_snapshots.jsonl", data.instances.log)
    toot_count = save_toot_records(output / "toots.jsonl", toot_records)
    edge_count = save_edges(output / "follower_edges.jsonl", edges)
    print(f"wrote {snapshot_count} snapshots, {toot_count} toot records, {edge_count} edges to {output}/")
    print(f"anonymisation salt (keep private to re-link future crawls): {anonymiser.salt}")

    # The same catalogue in the columnar corpus format: anonymised records
    # stream through the corpus writer instance by instance, so the export
    # demonstrates both the JSONL row format and the integer-coded shards.
    corpus_dir = output / "corpus"
    shutil.rmtree(corpus_dir, ignore_errors=True)
    writer = CorpusWriter(corpus_dir, shard_size=2_000)
    for domain, records in toot_crawl.records_by_instance.items():
        writer.add_records(domain, anonymiser.anonymise_toots(records))
        writer.end_instance(domain)
    store = writer.finalise(crawl_minute=toot_crawl.crawl_minute)
    print(
        f"wrote the columnar corpus to {corpus_dir}/: {store.n_toots} unique toots "
        f"in {store.n_shards} shard(s), {store.nbytes() / 2**20:.2f} MiB on disk"
    )

    # Round-trip: rebuild the datasets purely from the exported files.
    reloaded_toots = TootsDataset(records=load_toot_records(output / "toots.jsonl"))
    reloaded_graphs = GraphDataset.from_edges(load_edges(output / "follower_edges.jsonl"))
    corpus_toots = TootsDataset.from_corpus(store)
    assert len(corpus_toots) == len(reloaded_toots)
    print(
        f"reloaded: {len(reloaded_toots)} unique toots from "
        f"{reloaded_toots.author_count()} pseudonymous authors, "
        f"{reloaded_graphs.user_count()} accounts / {reloaded_graphs.follow_edge_count()} edges"
    )
    print(
        f"corpus-backed dataset answers without records: "
        f"{corpus_toots.author_count()} authors, {corpus_toots.boost_count()} boosts"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "dataset_export")
