"""Differential suite: corpus-built placements vs the record-list builders.

`PlacementArrays.from_corpus` must reproduce the record-path builders
bit for bit — same domain universe, same home codes, same replica CSR,
same seeded draws — and the corpus shard boundaries must flow through
the sweep without changing a single curve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import replication
from repro.datasets import TootsDataset
from repro.engine import (
    InstanceRemoval,
    PlacementArrays,
    ShardedIncidence,
    StrategySpec,
    availability_curves,
)
from repro.engine.placement import (
    build_no_replication,
    build_random_replication,
    build_subscription_replication,
)
from repro.errors import AnalysisError, DatasetError
from repro.experiments import ExperimentContext


@pytest.fixture(scope="module")
def record_toots(tiny_crawl):
    return TootsDataset.from_crawl(tiny_crawl)


@pytest.fixture(scope="module")
def candidate_domains(tiny_network):
    return tiny_network.domains()


def assert_arrays_equal(expected: PlacementArrays, got: PlacementArrays) -> None:
    assert got.strategy == expected.strategy
    assert got.domains == expected.domains
    assert list(got.toot_urls) == list(expected.toot_urls)
    assert np.array_equal(got.home, expected.home)
    assert np.array_equal(got.replica_indices, expected.replica_indices)
    assert np.array_equal(got.replica_indptr, expected.replica_indptr)
    got.validate()


class TestBuilderEquivalence:
    def test_no_replication(self, record_toots, tiny_store):
        expected = build_no_replication(record_toots)
        got = PlacementArrays.from_corpus(tiny_store, "none")
        assert_arrays_equal(expected, got)
        assert got.source_bounds == tuple(tiny_store.shard_bounds())

    def test_random_replication_same_seeded_draw(
        self, record_toots, tiny_store, candidate_domains
    ):
        for seed in (0, 7):
            expected = build_random_replication(
                record_toots, candidate_domains, 3, seed=seed
            )
            got = PlacementArrays.from_corpus(
                tiny_store, "random", candidate_domains=candidate_domains,
                n_replicas=3, seed=seed,
            )
            assert_arrays_equal(expected, got)

    def test_weighted_random_replication(
        self, record_toots, tiny_store, candidate_domains
    ):
        rng = np.random.default_rng(5)
        weights = {
            domain: float(value)
            for domain, value in zip(
                candidate_domains, rng.random(len(candidate_domains)) + 0.05
            )
        }
        expected = build_random_replication(
            record_toots, candidate_domains, 2, seed=11, weights=weights
        )
        got = PlacementArrays.from_corpus(
            tiny_store, "random", candidate_domains=candidate_domains,
            n_replicas=2, seed=11, weights=weights,
        )
        assert_arrays_equal(expected, got)

    def test_subscription_replication(self, record_toots, tiny_store, datasets):
        expected = build_subscription_replication(record_toots, datasets.graphs)
        got = PlacementArrays.from_corpus(
            tiny_store, "subscription", graphs=datasets.graphs
        )
        assert_arrays_equal(expected, got)

    def test_invalid_requests(self, tiny_store, candidate_domains):
        with pytest.raises(AnalysisError, match="unknown placement strategy"):
            PlacementArrays.from_corpus(tiny_store, "mirror-everything")
        with pytest.raises(AnalysisError, match="graphs"):
            PlacementArrays.from_corpus(tiny_store, "subscription")
        with pytest.raises(AnalysisError, match="candidate"):
            PlacementArrays.from_corpus(tiny_store, "random", n_replicas=2)
        with pytest.raises(AnalysisError, match="negative"):
            PlacementArrays.from_corpus(
                tiny_store, "random", candidate_domains=candidate_domains, n_replicas=-1
            )

    def test_empty_corpus_refused(self, tmp_path):
        from repro.corpus import CorpusWriter

        store = CorpusWriter(tmp_path).finalise()
        with pytest.raises(DatasetError, match="no toots"):
            PlacementArrays.from_corpus(store, "none")


class TestSweepIdentity:
    @pytest.fixture(scope="class")
    def failure(self, candidate_domains):
        return InstanceRemoval(candidate_domains, steps=20, name="rank")

    def test_curves_identical_monolithic_and_corpus_sharded(
        self, record_toots, tiny_store, candidate_domains, failure
    ):
        legacy = replication.random_replication(record_toots, candidate_domains, 3, seed=2)
        corpus_arrays = PlacementArrays.from_corpus(
            tiny_store, "random", candidate_domains=candidate_domains,
            n_replicas=3, seed=2,
        )
        expected = availability_curves(legacy, [failure])
        # monolithic evaluation of the corpus backend (lazy URL view feeds
        # TootIncidence.from_arrays)
        monolithic = availability_curves(
            replication.PlacementMap(corpus_arrays.strategy, arrays=corpus_arrays),
            [failure],
        )
        assert monolithic == expected
        # corpus-aligned shards: crawl boundaries flow through unchanged
        sharded = ShardedIncidence.from_arrays(
            corpus_arrays, bounds=corpus_arrays.source_bounds
        )
        assert sharded.shard_bounds() == list(tiny_store.shard_bounds())
        assert availability_curves(sharded, [failure]) == expected
        # the workers path auto-shards over the corpus bounds
        threaded = availability_curves(
            replication.PlacementMap(corpus_arrays.strategy, arrays=corpus_arrays),
            [failure],
            workers=2,
        )
        assert threaded == expected

    def test_invalid_bounds_rejected(self, tiny_store, candidate_domains):
        arrays = PlacementArrays.from_corpus(
            tiny_store, "random", candidate_domains=candidate_domains, n_replicas=1
        )
        n = arrays.n_toots
        for bounds in ([(0, n - 1)], [(1, n)], [(0, 10), (11, n)], [(0, 0), (0, n)]):
            with pytest.raises(AnalysisError):
                ShardedIncidence.from_arrays(arrays, bounds=bounds)


class TestContextIntegration:
    def test_corpus_context_matches_record_context(
        self, tiny_network, datasets, tiny_store
    ):
        from repro import CollectedDatasets

        record_ctx = ExperimentContext.from_datasets(datasets, network=tiny_network)
        corpus_data = CollectedDatasets(
            instances=datasets.instances,
            toots=TootsDataset.from_corpus(tiny_store),
            graphs=datasets.graphs,
            network=tiny_network,
            corpus=tiny_store,
        )
        corpus_ctx = ExperimentContext.from_datasets(corpus_data, network=tiny_network)

        specs = [StrategySpec.none(), StrategySpec.subscription(), StrategySpec.random(2, seed=3)]
        failures = record_ctx.standard_failures()
        expected = record_ctx.sweep(specs, failures)
        got = corpus_ctx.sweep(specs, failures)
        assert got.curves == expected.curves
        # the corpus context built its placements from columns, not records
        for spec in specs:
            assert corpus_ctx.placements_for(spec).arrays.source_bounds is not None
