"""The toot crawler: paging every instance's federated timeline.

The paper's crawl (May 2018) connected to the ~1.75K instances that were
online, paged through the entire history of each instance's federated
timeline via the public API, and recorded per-toot metadata.  Roughly 38%
of toots could not be collected because they were private or because the
instance blocked crawling.

:class:`TootCrawler` reproduces that procedure over the simulated
transport: it filters to instances that are online at crawl time, pages
each federated timeline with ``max_id``, respects crawl blocks and
politeness delays, and runs instances in parallel across a thread pool.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro import obs
from repro.errors import CrawlBlockedError
from repro.crawler.faults import classify_error
from repro.crawler.http import SimulatedTransport
from repro.crawler.scheduler import CrawlReport, CrawlScheduler, RateLimiter
from repro.fediverse.timeline import DEFAULT_PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.corpus.writer import CorpusWriter

_log = logging.getLogger("repro.crawler.toots")


@dataclass(frozen=True, slots=True)
class TootRecord:
    """One toot as observed by the crawler (the paper's toots dataset row)."""

    toot_id: int
    url: str
    account: str
    author_domain: str
    collected_from: str
    created_at: int
    hashtags: tuple[str, ...] = ()
    media_attachments: int = 0
    favourites: int = 0
    is_boost: bool = False
    sensitive: bool = False

    @property
    def is_remote(self) -> bool:
        """Whether the toot was authored on a different instance than collected."""
        return self.author_domain != self.collected_from

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "TootRecord":
        """Build a record from the public timeline API payload."""
        return cls(
            toot_id=int(payload["id"]),
            url=str(payload["url"]),
            account=str(payload["account"]),
            author_domain=str(payload["account_domain"]),
            collected_from=str(payload["collected_from"]),
            created_at=int(payload["created_at"]),
            hashtags=tuple(payload.get("tags", ())),
            media_attachments=int(payload.get("media_attachments", 0)),
            favourites=int(payload.get("favourites_count", 0)),
            is_boost=payload.get("reblog_of_id") is not None,
            sensitive=bool(payload.get("sensitive", False)),
        )


@dataclass(frozen=True)
class CrawlCoverage:
    """Fetched-versus-attempted accounting for one crawl.

    ``instances_offline``/``instances_blocked`` are deterministic ground
    truth (the instance really was down or really blocks crawling);
    ``instances_failed`` is the coverage loss — instances the crawl
    *should* have collected but gave up on, broken down by failure class
    in ``failure_classes``.  A crawl is :attr:`complete` when nothing
    was lost that way, regardless of how much chaos the retry layer had
    to absorb along the way.
    """

    instances_attempted: int
    instances_crawled: int
    instances_resumed: int
    instances_offline: int
    instances_blocked: int
    instances_failed: int
    toots_observed: int
    failure_classes: dict[str, int] = field(default_factory=dict)

    @property
    def instances_eligible(self) -> int:
        """Instances that were reachable and crawlable at crawl time."""
        return self.instances_attempted - self.instances_offline - self.instances_blocked

    @property
    def fraction(self) -> float:
        """Crawled share of eligible instances (1.0 when nothing was eligible)."""
        eligible = self.instances_eligible
        return 1.0 if eligible <= 0 else self.instances_crawled / eligible

    @property
    def complete(self) -> bool:
        """Whether every eligible instance made it into the corpus."""
        return self.instances_failed == 0

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready mapping (what gets stamped into manifests/metadata)."""
        return {
            "instances_attempted": self.instances_attempted,
            "instances_crawled": self.instances_crawled,
            "instances_resumed": self.instances_resumed,
            "instances_offline": self.instances_offline,
            "instances_blocked": self.instances_blocked,
            "instances_failed": self.instances_failed,
            "toots_observed": self.toots_observed,
            "failure_classes": dict(sorted(self.failure_classes.items())),
            "coverage_fraction": round(self.fraction, 6),
            "complete": self.complete,
        }


@dataclass
class TootCrawlResult:
    """The outcome of a full toot crawl."""

    crawl_minute: int
    records_by_instance: dict[str, list[TootRecord]] = field(default_factory=dict)
    skipped_offline: list[str] = field(default_factory=list)
    skipped_blocked: list[str] = field(default_factory=list)
    failures: dict[str, str] = field(default_factory=dict)
    #: Observed toots per crawled instance.  In sink mode (``crawl(...,
    #: sink=...)``) this is the only per-instance volume record: the
    #: records themselves stream into the corpus writer instead.
    toot_counts: dict[str, int] = field(default_factory=dict)
    #: Per-domain reachability-probe outcome: ``"ok"`` or a failure
    #: class from :data:`repro.crawler.faults.FAILURE_CLASSES`.
    probe_outcomes: dict[str, str] = field(default_factory=dict)
    #: Failure class per failed instance (the taxonomy of ``failures``).
    failure_classes: dict[str, str] = field(default_factory=dict)
    #: Instances skipped because a resumed sink already held their
    #: sealed spools — counted as crawled, never re-fetched.
    resumed: list[str] = field(default_factory=list)

    def iter_records(self) -> Iterator[TootRecord]:
        """Yield every collected record without building one giant list.

        Instances iterate in ``records_by_instance`` insertion order
        (sorted by domain — the scheduler sorts its outcomes), so the
        stream is exactly :meth:`all_records` without the O(corpus)
        concatenated copy.
        """
        for instance_records in self.records_by_instance.values():
            yield from instance_records

    def all_records(self) -> list[TootRecord]:
        """Return every record collected, across all instances."""
        return list(self.iter_records())

    def unique_toots(self) -> dict[str, TootRecord]:
        """Return the de-duplicated toot catalogue keyed by toot URL.

        The same toot can be observed on many federated timelines; the
        paper's 67M-toot dataset is the de-duplicated union.
        """
        unique: dict[str, TootRecord] = {}
        for record in self.iter_records():
            unique.setdefault(record.url, record)
        return unique

    @property
    def crawled_instances(self) -> list[str]:
        """Instances that were successfully crawled."""
        return sorted(self.records_by_instance)

    def coverage(self) -> CrawlCoverage:
        """Fold this result into fetched-versus-attempted accounting."""
        failure_counts: dict[str, int] = {}
        for label in self.failure_classes.values():
            failure_counts[label] = failure_counts.get(label, 0) + 1
        attempted = (
            len(self.toot_counts)
            + len(self.skipped_offline)
            + len(self.skipped_blocked)
            + len(self.failures)
        )
        return CrawlCoverage(
            instances_attempted=attempted,
            instances_crawled=len(self.toot_counts),
            instances_resumed=len(self.resumed),
            instances_offline=len(self.skipped_offline),
            instances_blocked=len(self.skipped_blocked),
            instances_failed=len(self.failures),
            toots_observed=sum(self.toot_counts.values()),
            failure_classes=failure_counts,
        )


class TootCrawler:
    """Multi-threaded crawler for instance federated timelines."""

    def __init__(
        self,
        transport: SimulatedTransport,
        threads: int = 10,
        page_limit: int = DEFAULT_PAGE_SIZE,
        politeness_delay: float = 0.0,
        max_pages_per_instance: int | None = None,
    ) -> None:
        self._transport = transport
        self._scheduler = CrawlScheduler(threads=threads)
        self._rate_limiter = RateLimiter(delay_seconds=politeness_delay)
        self.page_limit = page_limit
        self.max_pages_per_instance = max_pages_per_instance

    # -- single instance -----------------------------------------------------

    def crawl_instance(
        self,
        domain: str,
        at_minute: int,
        sink: "CorpusWriter | None" = None,
    ) -> list[TootRecord]:
        """Page the full federated-timeline history of one instance.

        With a ``sink``, each page's payload streams straight into the
        corpus writer — no :class:`TootRecord` is ever built — and the
        return value is an empty list; the observation count lands in
        :attr:`TootCrawlResult.toot_counts` via :meth:`crawl`.
        """
        records: list[TootRecord] = []
        self._page_instance(domain, at_minute, records, sink)
        return records

    def _page_instance(
        self,
        domain: str,
        at_minute: int,
        records: list[TootRecord],
        sink: "CorpusWriter | None",
    ) -> int:
        """The shared paging loop; returns the number of toots observed."""
        observed = 0
        max_id: int | None = None
        pages = 0
        while True:
            self._rate_limiter.acquire(domain)
            url = f"https://{domain}/api/v1/timelines/public?limit={self.page_limit}"
            if max_id is not None:
                url = f"{url}&max_id={max_id}"
            response = self._transport.get(url, at_minute=at_minute)
            payload: list[dict[str, Any]] = response.payload
            if not payload:
                break
            if sink is not None:
                observed += sink.add_page(domain, payload)
            else:
                records.extend(TootRecord.from_payload(item) for item in payload)
                observed += len(payload)
            max_id = min(int(item["id"]) for item in payload)
            pages += 1
            if self.max_pages_per_instance is not None and pages >= self.max_pages_per_instance:
                break
            if len(payload) < self.page_limit:
                break
        if sink is not None:
            sink.end_instance(domain)
        return observed

    # -- full crawl -------------------------------------------------------------

    def probe_domains(self, domains: Iterable[str], at_minute: int) -> dict[str, str]:
        """Probe every instance API through the worker pool.

        Returns domain → ``"ok"`` or a failure class from
        :data:`repro.crawler.faults.FAILURE_CLASSES`, so the coverage
        report can tell a genuinely offline instance from a blocked or
        erroring one instead of discarding the error class.
        """

        def probe(domain: str) -> str:
            self._transport.get(
                f"https://{domain}/api/v1/instance", at_minute=at_minute
            )
            return "ok"

        targets = sorted(set(domains))
        with obs.span("crawl/probe", domains=len(targets)):
            report = self._scheduler.run(targets, probe)
        return {
            outcome.key: "ok" if outcome.ok else classify_error(outcome.error)
            for outcome in report.outcomes
        }

    def live_domains(self, domains: Iterable[str], at_minute: int) -> list[str]:
        """Filter ``domains`` to those whose instance API answers at ``at_minute``."""
        outcomes = self.probe_domains(domains, at_minute)
        return [domain for domain in sorted(outcomes) if outcomes[domain] == "ok"]

    def crawl(
        self,
        domains: Iterable[str] | None = None,
        at_minute: int | None = None,
        sink: "CorpusWriter | None" = None,
    ) -> TootCrawlResult:
        """Crawl the federated timelines of every (online) instance.

        ``domains`` defaults to every instance known to the transport and
        ``at_minute`` to the end of the observation window (the paper
        crawled toots near the end of its measurement period).

        With a ``sink`` (a :class:`~repro.corpus.writer.CorpusWriter`),
        pages stream into the columnar corpus as they are crawled and
        ``records_by_instance`` stays empty — only per-instance counts
        are kept.  Instances that fail mid-crawl are discarded from the
        sink, mirroring how the record path drops their lists.  A sink
        opened with ``resume=True`` reports its journal-sealed instances
        via ``sealed_domains()``; those are counted as crawled without a
        single request.  The caller finalises the sink once the crawl
        returns.
        """
        network = self._transport.network
        if at_minute is None:
            at_minute = network.clock.window_minutes - 1
        if domains is None:
            domains = self._transport.known_domains()
        domains = sorted(set(domains))

        result = TootCrawlResult(crawl_minute=at_minute)
        already_sealed: set[str] = set()
        if sink is not None and hasattr(sink, "sealed_domains"):
            already_sealed = set(sink.sealed_domains())
        result.resumed = [domain for domain in domains if domain in already_sealed]
        to_probe = [domain for domain in domains if domain not in already_sealed]

        result.probe_outcomes = self.probe_domains(to_probe, at_minute)
        live = [d for d in to_probe if result.probe_outcomes[d] == "ok"]
        result.skipped_offline = sorted(set(to_probe) - set(live))

        if sink is None:
            worker = lambda domain: self.crawl_instance(domain, at_minute)  # noqa: E731
        else:
            worker = lambda domain: self._page_instance(  # noqa: E731
                domain, at_minute, [], sink
            )
        with obs.span("crawl/toots", instances=len(live)):
            report: CrawlReport = self._scheduler.run(live, worker)
        for outcome in report.outcomes:
            if not outcome.ok:
                if sink is not None:
                    sink.discard_instance(outcome.key)
                if isinstance(outcome.error, CrawlBlockedError):
                    result.skipped_blocked.append(outcome.key)
                else:
                    result.failures[outcome.key] = str(outcome.error)
                    result.failure_classes[outcome.key] = classify_error(outcome.error)
                continue
            if sink is None:
                result.records_by_instance[outcome.key] = outcome.result  # type: ignore[assignment]
                result.toot_counts[outcome.key] = len(outcome.result)  # type: ignore[arg-type]
            else:
                result.records_by_instance[outcome.key] = []
                result.toot_counts[outcome.key] = int(outcome.result)  # type: ignore[call-overload]
        resumed_rows: dict[str, int] = {}
        if result.resumed and hasattr(sink, "resumed_rows"):
            resumed_rows = sink.resumed_rows()
        for domain in result.resumed:
            result.records_by_instance.setdefault(domain, [])
            result.toot_counts[domain] = int(resumed_rows.get(domain, 0))
        result.skipped_blocked.sort()
        observed = sum(result.toot_counts.values())
        obs.count("repro_crawl_toots_total", observed)
        _log.info(
            "toot crawl done: %d/%d instances, %d toots, %d offline, "
            "%d blocked, %d failed",
            len(result.toot_counts),
            len(domains),
            observed,
            len(result.skipped_offline),
            len(result.skipped_blocked),
            len(result.failures),
        )
        return result
