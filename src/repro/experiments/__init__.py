"""The executable experiment layer: one runner API for the whole evaluation.

The metadata registry (:mod:`repro.reporting.experiments`) names every
figure and table the paper reports; this package makes each entry
*executable*.  A runner is a callable ``run(ctx) -> ExperimentResult``
registered against its experiment id; :class:`ExperimentContext` builds
the shared pipeline (scenario, datasets, rankings, placements) lazily
and exactly once; :func:`run_experiments` evaluates any subset of the
paper over that shared context.  The CLI's ``run`` subcommand and every
``benchmarks/bench_*`` timing harness are thin wrappers over this API::

    from repro.experiments import run_experiments

    results = run_experiments(["fig15", "fig16"], preset="small", seed=42)
    print(results["fig16"].render_text())
    payload = results["fig16"].to_json_dict()   # round-trips via from_json_dict
"""

from __future__ import annotations

import time
from typing import Sequence

from repro import obs
from repro.errors import AnalysisError
from repro.reporting.experiments import EXPERIMENTS, get_experiment
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import (
    Runner,
    has_runner,
    register_runner,
    runnable_ids,
    runner_for,
)
from repro.experiments.results import (
    RESULT_SCHEMA,
    ExperimentResult,
    ResultSeries,
    ResultTable,
)

__all__ = [
    "RESULT_SCHEMA",
    "ExperimentContext",
    "ExperimentResult",
    "ResultSeries",
    "ResultTable",
    "Runner",
    "has_runner",
    "register_runner",
    "run_experiment",
    "run_experiments",
    "runnable_ids",
    "runner_for",
]


def run_experiment(experiment_id: str, ctx: ExperimentContext) -> ExperimentResult:
    """Run one experiment against ``ctx`` and stamp the run metadata.

    Under ``--trace`` the whole run sits inside an ``experiment/<id>``
    span and the context's per-phase seconds are stamped into the result
    metadata as ``phase_<name>_seconds``; without a tracer the metadata
    is exactly the untraced shape, so traced and untraced runs stay
    comparable after dropping the volatile timing keys.
    """
    experiment = get_experiment(experiment_id)
    runner = runner_for(experiment.experiment_id)
    with obs.span("experiment/" + experiment.experiment_id):
        started = time.perf_counter()
        result = runner(ctx)
        elapsed = time.perf_counter() - started
    metadata: dict[str, object] = {
        **ctx.run_metadata(),
        "elapsed_seconds": round(elapsed, 4),
    }
    if obs.tracing_enabled():
        for phase, seconds in sorted(ctx.phase_seconds.items()):
            metadata[f"phase_{phase}_seconds"] = round(seconds, 4)
    return result.with_metadata(metadata)


def run_experiments(
    experiment_ids: Sequence[str] | None = None,
    *,
    ctx: ExperimentContext | None = None,
    preset: str = "tiny",
    seed: int = 7,
    monitor_interval_minutes: int = 24 * 60,
) -> dict[str, ExperimentResult]:
    """Run a subset of the paper's experiments over one shared pipeline.

    ``experiment_ids`` defaults to every registered experiment (registry
    order).  All ids are validated before anything is built, so a typo
    fails fast instead of after a scenario generation.  Pass ``ctx`` to
    reuse an existing context (e.g. across successive calls); otherwise a
    fresh one is created from ``preset``/``seed`` and the shared
    artefacts are built at most once across the whole run.
    """
    if experiment_ids is None:
        ids = list(EXPERIMENTS)
    else:
        ids = list(experiment_ids)
    if not ids:
        raise AnalysisError("no experiments selected")
    for experiment_id in ids:
        get_experiment(experiment_id)  # raises AnalysisError on unknown ids
    seen = set()
    for experiment_id in ids:
        if experiment_id in seen:
            raise AnalysisError(f"duplicate experiment id: {experiment_id!r}")
        seen.add(experiment_id)
    if ctx is None:
        ctx = ExperimentContext(
            preset=preset, seed=seed, monitor_interval_minutes=monitor_interval_minutes
        )
    return {
        experiment_id: run_experiment(experiment_id, ctx) for experiment_id in ids
    }
