"""Vectorised placement builders: integer-coded placements for the engine.

The Figs. 15-16 experiments build a placement map per strategy before any
failure is simulated; with the availability kernels batched (PR 1), that
construction was the remaining per-toot Python loop in the pipeline.
This module replaces it with whole-array operations:

* :class:`PlacementArrays` — the integer-coded placement backend: one
  home-domain code per toot plus a CSR-style ``(replica_indices,
  replica_indptr)`` pair of replica codes.  The engine's
  :class:`~repro.engine.incidence.TootIncidence` consumes it directly,
  with no dict-of-frozensets round trip;
* :func:`build_no_replication` — the home array, nothing else;
* :func:`build_subscription_replication` — one pass over the follower
  graph to precompute the author→follower-domain table, then pure array
  expansion per toot;
* :func:`build_random_replication` — one batched draw for every toot,
  built on Gumbel top-k sampling: perturbing the log-weights with i.i.d.
  Gumbel noise and keeping the k largest keys per row samples without
  replacement with probabilities proportional to the weights — exactly
  the distribution of successive renormalised draws (Plackett-Luce),
  which is also what ``rng.choice(..., replace=False, p=...)``
  implements one toot at a time.  The hot path materialises that draw
  *lazily*: the descending order of Gumbel-perturbed keys is the arrival
  order of an i.i.d. categorical race, so drawing a few weighted rounds
  per row and keeping the first k distinct candidates yields the
  Gumbel top-k set with an ``n×O(k)`` footprint instead of ``n×m``;
  rows that do not resolve within the oversampled rounds fall back to
  the dense ``n_bad×m`` Gumbel key matrix (uniform keys in the
  unweighted case), which is exact for any weight skew.

Invariants every builder guarantees (and :meth:`PlacementArrays.validate`
checks): replica codes are distinct within a row and never equal the
row's home code, so ``holders(t) = {home[t]} ∪ replicas[t]`` has
``1 + replica_count`` members and the incidence matrix stays binary.

The pure-Python reference loops live on in
:mod:`repro.core.replication` as ``_*_python`` functions; the
differential suite (``tests/engine/test_placement.py``) holds these
builders to exact equality where the strategy is deterministic and to
equivalent replica-count distributions for the random draws.  Note the
batched draw consumes the RNG stream in a different order than the
legacy one-``rng.choice``-per-toot loop, so seeded *random* placements
legitimately differ from the legacy loop toot-by-toot while remaining
deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.graph import GraphStore
    from repro.corpus.store import CorpusStore

#: Row-chunk sizing for the batched draws: keep the per-chunk key matrix
#: around ~32 MB of float64 so 67M-toot runs stay memory-bounded.  The
#: chunk size is a pure function of the candidate count, never of the
#: machine, so a seed always yields the same placements.
_CHUNK_ELEMENTS = 4_000_000


@dataclass(eq=False)
class PlacementArrays:
    """Integer-coded placements: per-toot home codes plus replica CSR arrays.

    ``domains`` is the sorted domain universe (homes plus every possible
    replica target); ``home[t]`` indexes into it, and
    ``replica_indices[replica_indptr[t]:replica_indptr[t + 1]]`` are the
    codes of toot ``t``'s replicas beyond its home instance.

    ``toot_urls`` is any sequence — a tuple for the record-built
    backends, or the lazy :class:`~repro.corpus.store.CorpusUrls` view
    for corpus-built ones, so the scale paths (which only ever read
    codes) never materialise the URL strings.  ``source_bounds`` carries
    the corpus shard boundaries when the backend was built from a
    columnar store; the sweep's auto-sharding streams over exactly those
    shards (:func:`repro.engine.sweep._resolve_sharding`).
    """

    strategy: str
    toot_urls: Sequence[str]
    domains: tuple[str, ...]
    home: np.ndarray
    replica_indices: np.ndarray
    replica_indptr: np.ndarray
    source_bounds: tuple[tuple[int, int], ...] | None = None

    @property
    def n_toots(self) -> int:
        return len(self.toot_urls)

    @property
    def n_domains(self) -> int:
        return len(self.domains)

    def replica_counts(self) -> np.ndarray:
        """Replicas beyond the home instance, per toot (home never counted)."""
        return np.diff(self.replica_indptr)

    def domain_replica_load(self) -> np.ndarray:
        """How many replicas landed on each domain (aligned with ``domains``)."""
        return np.bincount(self.replica_indices, minlength=self.n_domains)

    def to_placement_dict(self) -> dict[str, frozenset[str]]:
        """The legacy dict-of-frozensets view (compatibility path only).

        This is the one remaining per-toot loop and exists solely so code
        that still wants ``PlacementMap.placements`` keeps working; the
        engine itself never calls it.
        """
        domains = self.domains
        indices = self.replica_indices
        indptr = self.replica_indptr
        out: dict[str, frozenset[str]] = {}
        for t, url in enumerate(self.toot_urls):
            holders = {domains[self.home[t]]}
            holders.update(domains[j] for j in indices[indptr[t] : indptr[t + 1]])
            out[url] = frozenset(holders)
        return out

    def rows_incidence(self, rows: np.ndarray) -> "sparse.csr_matrix":
        """The incidence CSR of a subset of toots, straight from the codes.

        Row ``i`` of the result interleaves toot ``rows[i]``'s home code
        with its replica codes — the exact structure
        :meth:`TootIncidence.from_arrays` builds for those rows, without
        ever assembling the full corpus matrix.  The serving layer's
        per-query construction: O(subset nnz) work and memory.
        """
        from scipy import sparse

        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1 or rows.size == 0:
            raise AnalysisError("rows must be a non-empty 1-D index array")
        if rows.min() < 0 or rows.max() >= self.n_toots:
            raise AnalysisError("row indices fall outside the placement arrays")
        replica_indptr = self.replica_indptr
        counts = (replica_indptr[rows + 1] - replica_indptr[rows]).astype(np.int64)
        lengths = counts + 1  # +1 for the home copy
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        total = int(indptr[-1])
        indices = np.empty(total, dtype=np.int64)
        home_slots = indptr[:-1]
        indices[home_slots] = self.home[rows]
        replica_slots = np.ones(total, dtype=bool)
        replica_slots[home_slots] = False
        replica_cum = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=replica_cum[1:])
        positions = (
            np.repeat(
                replica_indptr[rows].astype(np.int64) - replica_cum[:-1], counts
            )
            + np.arange(int(replica_cum[-1]), dtype=np.int64)
        )
        indices[replica_slots] = self.replica_indices[positions]
        matrix = sparse.csr_matrix(
            (np.ones(total, dtype=np.int8), indices, indptr),
            shape=(rows.size, self.n_domains),
        )
        matrix.sort_indices()
        return matrix

    def validate(self) -> "PlacementArrays":
        """Check the structural invariants; returns self for chaining."""
        n = self.n_toots
        if self.home.shape != (n,) or self.replica_indptr.shape != (n + 1,):
            raise AnalysisError("placement arrays have inconsistent shapes")
        if n and (self.home.min() < 0 or self.home.max() >= self.n_domains):
            raise AnalysisError("home codes fall outside the domain universe")
        if self.replica_indices.size and (
            self.replica_indices.min() < 0
            or self.replica_indices.max() >= self.n_domains
        ):
            raise AnalysisError("replica codes fall outside the domain universe")
        lengths = np.diff(self.replica_indptr)
        if lengths.size and lengths.min() < 0:
            raise AnalysisError("replica index pointers must be non-decreasing")
        if int(self.replica_indptr[-1]) != self.replica_indices.size:
            raise AnalysisError("replica index pointers do not cover the indices")
        row_ids = np.repeat(np.arange(n), lengths)
        if np.any(self.replica_indices == self.home[row_ids]):
            raise AnalysisError("replicas must not duplicate the home instance")
        if self.replica_indices.size:
            # distinct within a row: sort per row, adjacent equal values in
            # the same row are duplicates
            order = np.lexsort((self.replica_indices, row_ids))
            sorted_indices = self.replica_indices[order]
            sorted_rows = row_ids[order]
            duplicate = (sorted_rows[1:] == sorted_rows[:-1]) & (
                sorted_indices[1:] == sorted_indices[:-1]
            )
            if duplicate.any():
                raise AnalysisError("replica codes must be distinct within a row")
        return self

    @classmethod
    def from_corpus(
        cls,
        store: "CorpusStore",
        kind: str = "none",
        *,
        graphs: "GraphDataset | GraphStore | None" = None,
        candidate_domains: Sequence[str] | None = None,
        n_replicas: int = 0,
        seed: int = 0,
        weights: Mapping[str, float] | None = None,
    ) -> "PlacementArrays":
        """Build a placement backend straight from a columnar corpus.

        ``kind`` selects the strategy (``"none"`` / ``"subscription"`` /
        ``"random"``, mirroring :class:`~repro.engine.sweep.StrategySpec`).
        Home codes come from remapping the store's interned home column
        shard by shard; the random/subscription replica construction
        shares the exact batched cores of the record-list builders, so
        the output — draws included — is bit-identical to building from
        ``TootsDataset`` records.
        """
        from repro.corpus.placement import (
            build_no_replication_from_corpus,
            build_random_replication_from_corpus,
            build_subscription_replication_from_corpus,
        )

        if kind == "none":
            return build_no_replication_from_corpus(store)
        if kind == "subscription":
            if graphs is None:
                raise AnalysisError("subscription replication needs the graphs dataset")
            return build_subscription_replication_from_corpus(store, graphs)
        if kind == "random":
            if candidate_domains is None:
                raise AnalysisError("random replication needs candidate domains")
            return build_random_replication_from_corpus(
                store, candidate_domains, n_replicas, seed=seed, weights=weights
            )
        raise AnalysisError(f"unknown placement strategy kind: {kind!r}")


# -- shared encoding helpers -----------------------------------------------------


def _encode(values: Sequence[str], code: Mapping[str, int]) -> np.ndarray:
    return np.fromiter(
        map(code.__getitem__, values), dtype=np.int64, count=len(values)
    )


def _toot_columns(toots: "TootsDataset") -> tuple[tuple[str, ...], list[str], list[str]]:
    """One pass over the records: urls, author handles, home domains."""
    records = toots.records()
    urls = tuple(record.url for record in records)
    accounts = [record.account for record in records]
    homes = [record.author_domain for record in records]
    return urls, accounts, homes


# -- builders --------------------------------------------------------------------


def build_no_replication(toots: "TootsDataset") -> PlacementArrays:
    """Each toot lives only on its author's home instance."""
    urls, _, homes = _toot_columns(toots)
    domains = tuple(sorted(set(homes)))
    code = {domain: j for j, domain in enumerate(domains)}
    return PlacementArrays(
        strategy="no-replication",
        toot_urls=urls,
        domains=domains,
        home=_encode(homes, code),
        replica_indices=np.empty(0, dtype=np.int64),
        replica_indptr=np.zeros(len(urls) + 1, dtype=np.int64),
    )


def follower_domain_sets(
    authors: "Iterable[str]", graphs: "GraphDataset | GraphStore"
) -> dict[str, set[str]]:
    """Author → follower-domain sets in **one pass over the graph's edges**.

    ``authors`` may contain duplicates (per-toot account columns); keys
    keep first-appearance order, which both the record and corpus
    subscription builders rely on for identical author coding.

    ``graphs`` is either the networkx-backed
    :class:`~repro.datasets.graphs.GraphDataset` or an on-disk
    :class:`~repro.corpus.graph.GraphStore`, whose integer edge shards
    answer the same question without a networkx graph in memory — the
    store computes the identical mapping itself.
    """
    columnar = getattr(graphs, "follower_domain_sets", None)
    if callable(columnar):
        return columnar(list(authors))
    follower_graph = graphs.follower_graph
    follower_domains: dict[str, set[str]] = {author: set() for author in authors}
    nodes = follower_graph.nodes
    for follower, followed in follower_graph.edges():
        target = follower_domains.get(followed)
        if target is not None:
            domain = nodes[follower].get("domain")
            if domain:
                target.add(domain)
    return follower_domains


def build_subscription_replication(
    toots: "TootsDataset", graphs: "GraphDataset"
) -> PlacementArrays:
    """Each toot is replicated to the instances hosting the author's followers.

    The author→follower-domain table is built in one pass over the
    follower graph's edges (the legacy loop re-walked ``in_edges`` per
    author); everything per-toot after that is array expansion, shared
    with the corpus path via :func:`subscription_arrays_from_columns`.
    """
    urls, accounts, homes = _toot_columns(toots)
    follower_domains = follower_domain_sets(accounts, graphs)
    domains = tuple(sorted(set(homes).union(*follower_domains.values())))
    code = {domain: j for j, domain in enumerate(domains)}
    author_code = {author: i for i, author in enumerate(follower_domains)}
    return subscription_arrays_from_columns(
        urls,
        _encode(homes, code),
        domains,
        _encode(accounts, author_code),
        follower_domains,
    )


def subscription_arrays_from_columns(
    urls: Sequence[str],
    home: np.ndarray,
    domains: tuple[str, ...],
    toot_author: np.ndarray,
    follower_domains: Mapping[str, set[str]],
    source_bounds: tuple[tuple[int, int], ...] | None = None,
) -> PlacementArrays:
    """The subscription expansion over integer columns.

    ``home`` indexes ``domains`` (the sorted universe of homes plus
    every follower domain); ``toot_author`` indexes the keys of
    ``follower_domains`` in iteration order.  Shared by the record-list
    builder and :func:`repro.corpus.placement.build_subscription_replication_from_corpus`.
    """
    code = {domain: j for j, domain in enumerate(domains)}

    # per-author replica arrays (CSR over the unique authors)
    authors = list(follower_domains)
    author_counts = np.fromiter(
        (len(follower_domains[author]) for author in authors),
        dtype=np.int64,
        count=len(authors),
    )
    author_indptr = np.zeros(len(authors) + 1, dtype=np.int64)
    np.cumsum(author_counts, out=author_indptr[1:])
    author_flat = np.fromiter(
        (
            code[domain]
            for author in authors
            for domain in sorted(follower_domains[author])
        ),
        dtype=np.int64,
        count=int(author_indptr[-1]),
    )

    # expand the per-author table to per-toot rows with pure array ops,
    # chunked over toot ranges so the transient expansion arrays stay
    # bounded (the xlarge corpus expands to 120M+ replica rows; row-wise
    # ops make chunking exact)
    n = len(urls)
    lengths = author_counts[toot_author]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    kept_lengths = np.zeros(n, dtype=np.int64)
    replica_chunks = []
    chunk_rows = 1_000_000
    for lo in range(0, n, chunk_rows):
        hi = min(n, lo + chunk_rows)
        seg_lengths = lengths[lo:hi]
        seg_total = int(indptr[hi] - indptr[lo])
        if seg_total == 0:
            continue
        starts = np.repeat(author_indptr[:-1][toot_author[lo:hi]], seg_lengths)
        seg_indptr = indptr[lo:hi] - indptr[lo]
        within = np.arange(seg_total, dtype=np.int64) - np.repeat(seg_indptr, seg_lengths)
        flat = author_flat[starts + within]
        # drop follower domains equal to the toot's home (the legacy
        # frozenset union collapsed them); bincount keeps empty rows safe
        row_ids = np.repeat(np.arange(hi - lo, dtype=np.int64), seg_lengths)
        keep = flat != home[lo:hi][row_ids]
        kept_lengths[lo:hi] = seg_lengths - np.bincount(
            row_ids[~keep], minlength=hi - lo
        )
        replica_chunks.append(flat[keep])
    replica_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(kept_lengths, out=replica_indptr[1:])
    replica_indices = (
        np.concatenate(replica_chunks)
        if replica_chunks
        else np.empty(0, dtype=np.int64)
    )
    return PlacementArrays(
        strategy="subscription-replication",
        toot_urls=urls,
        domains=domains,
        home=home,
        replica_indices=replica_indices,
        replica_indptr=replica_indptr,
        source_bounds=source_bounds,
    )


def _normalised_log_weights(
    candidates: Sequence[str], weights: Mapping[str, float], k: int
) -> np.ndarray:
    """Validate ``weights`` over ``candidates`` and return log-probabilities.

    Negative weights are clamped to zero (they mean "never place here",
    same as the legacy loop); zero-weight candidates get ``-inf`` so the
    Gumbel keys can never select them.  Raises :class:`AnalysisError`
    when the total mass is zero or fewer than ``k`` candidates carry
    positive weight — the latter is the case where the legacy loop
    crashed with a raw ``ValueError`` from :meth:`rng.choice`.
    """
    raw = np.asarray(
        [max(0.0, float(weights.get(domain, 0.0))) for domain in candidates],
        dtype=np.float64,
    )
    if raw.sum() <= 0:
        raise AnalysisError("replication weights must contain positive mass")
    support = int(np.count_nonzero(raw))
    if support < k:
        raise AnalysisError(
            f"cannot place {k} replicas without replacement: only {support} of "
            f"{len(candidates)} candidate instances have positive weight"
        )
    with np.errstate(divide="ignore"):
        return np.log(raw / raw.sum())


def _dense_gumbel_top_k(
    rng: np.random.Generator,
    row_ids: np.ndarray,
    out: np.ndarray,
    m: int,
    k: int,
    log_weights: np.ndarray | None,
    partial_rows: np.ndarray | None = None,
    partial_picks: np.ndarray | None = None,
) -> None:
    """Exact Gumbel top-k for the given rows, written into ``out``.

    One dense key row per toot: i.i.d. uniform keys in the unweighted
    case, ``log w + Gumbel`` otherwise; the k largest keys are a sample
    without replacement proportional to the weights.  Chunked so the key
    matrix stays bounded.

    ``partial_rows``/``partial_picks`` (global row id repeated per pick,
    aligned pick codes) force already-found distinct picks of a
    truncated race into the top-k via ``+inf`` keys, so the remaining
    slots are filled by a fresh race over the other candidates — the
    exact conditional continuation.  ``row_ids`` must be sorted when
    they are given.
    """
    chunk_rows = max(1, _CHUNK_ELEMENTS // m)
    batch_rows = None
    if partial_rows is not None and partial_rows.size:
        # global row id -> position in this batch (row_ids is sorted)
        batch_rows = np.searchsorted(row_ids, partial_rows)
    for start in range(0, row_ids.size, chunk_rows):
        stop = min(start + chunk_rows, row_ids.size)
        rows = row_ids[start:stop]
        if log_weights is None:
            keys = rng.random((rows.size, m))
        else:
            keys = log_weights + rng.gumbel(size=(rows.size, m))
        if batch_rows is not None:
            in_chunk = (batch_rows >= start) & (batch_rows < stop)
            keys[batch_rows[in_chunk] - start, partial_picks[in_chunk]] = np.inf
        out[rows] = np.argpartition(keys, m - k, axis=1)[:, m - k :]


def _batch_distinct_draws(
    rng: np.random.Generator,
    n: int,
    m: int,
    k: int,
    log_weights: np.ndarray | None,
) -> np.ndarray:
    """``(n, k)`` distinct candidate indices per row, one batched pass.

    The lazy Gumbel top-k race: draw ``k + 5`` i.i.d. categorical
    rounds per row and keep the first k distinct candidates — the
    arrival order of an i.i.d. race is exactly the descending order of
    Gumbel-perturbed keys, so resolved rows already hold the Gumbel
    top-k sample.  Rows that fail to resolve (likelier under heavy
    weight skew) are *continued*, not redrawn: their partial distinct
    picks are kept and forced into a dense Gumbel top-k over the
    remaining candidates.  By memorylessness of the race, the
    continuation conditioned on any prefix is a fresh race on the
    not-yet-drawn candidates, so the combined draw is exact for any
    skew.  (A fresh redraw of stragglers would *not* be: keeping only
    rows that resolved within the truncated race conditions them on
    fast resolution and under-represents collision-prone heavy
    candidates.)
    """
    out = np.empty((n, k), dtype=np.int64)
    rounds = k + 5
    if 2 * rounds >= m:
        # the race would cost as much as the dense keys — go dense directly
        _dense_gumbel_top_k(rng, np.arange(n), out, m, k, log_weights)
        return out
    cumulative = None
    if log_weights is not None:
        cumulative = np.cumsum(np.exp(log_weights))
        # pin the tail to exactly 1.0 *from the last positive-weight
        # candidate on*, so cumsum float error can neither lose the final
        # mass nor hand it to a zero-weight candidate
        last_positive = int(np.nonzero(np.isfinite(log_weights))[0][-1])
        cumulative[last_positive:] = 1.0
    unresolved_rows: list[np.ndarray] = []
    partial_rows: list[np.ndarray] = []  # row id repeated per found pick
    partial_picks: list[np.ndarray] = []
    chunk_rows = max(1, _CHUNK_ELEMENTS // rounds)
    for start in range(0, n, chunk_rows):
        rows = min(chunk_rows, n - start)
        if cumulative is None:
            draws = rng.integers(0, m, size=(rows, rounds))
        else:
            draws = cumulative.searchsorted(rng.random((rows, rounds)), side="right")
        repeat = np.zeros((rows, rounds), dtype=bool)
        for j in range(1, rounds):
            repeat[:, j] = (draws[:, :j] == draws[:, j : j + 1]).any(axis=1)
        rank = np.cumsum(~repeat, axis=1)
        resolved = rank[:, -1] >= k
        first_k = (~repeat) & (rank <= k)
        out[start : start + rows][resolved] = draws[resolved][
            first_k[resolved]
        ].reshape(-1, k)
        bad = ~resolved
        if bad.any():
            bad_ids = np.nonzero(bad)[0] + start
            unresolved_rows.append(bad_ids)
            found = ~repeat[bad]  # every non-repeat pick of an unresolved row
            partial_rows.append(np.repeat(bad_ids, found.sum(axis=1)))
            partial_picks.append(draws[bad][found])
    stragglers = (
        np.concatenate(unresolved_rows) if unresolved_rows else np.empty(0, np.int64)
    )
    if stragglers.size:
        _dense_gumbel_top_k(
            rng,
            stragglers,
            out,
            m,
            k,
            log_weights,
            partial_rows=np.concatenate(partial_rows),
            partial_picks=np.concatenate(partial_picks),
        )
    return out


def validated_candidates(
    candidate_domains: Sequence[str], n_replicas: int
) -> list[str]:
    """The sorted, de-duplicated candidate set behind every random draw."""
    if n_replicas < 0:
        raise AnalysisError("the number of replicas cannot be negative")
    candidates = sorted(set(candidate_domains))
    if not candidates:
        raise AnalysisError("no candidate instances to replicate onto")
    return candidates


def build_random_replication(
    toots: "TootsDataset",
    candidate_domains: Sequence[str],
    n_replicas: int,
    seed: int = 0,
    weights: Mapping[str, float] | None = None,
) -> PlacementArrays:
    """Each toot is replicated onto ``n_replicas`` random instances.

    All toots are drawn in one batched pass (chunked to bound memory)
    via Gumbel top-k sampling — see :func:`_batch_distinct_draws` for
    the lazy race formulation and :func:`_dense_gumbel_top_k` for the
    dense keys.  The draw is deterministic per seed but consumes the RNG
    stream in a different order than the legacy per-toot loop, so seeded
    placements differ toot-by-toot while following the same
    distribution.
    """
    candidates = validated_candidates(candidate_domains, n_replicas)
    urls, _, homes = _toot_columns(toots)
    domains = tuple(sorted(set(homes).union(candidates)))
    home = _encode(homes, {domain: j for j, domain in enumerate(domains)})
    return random_arrays_from_columns(
        urls, home, domains, candidates, n_replicas, seed, weights
    )


def random_arrays_from_columns(
    urls: Sequence[str],
    home: np.ndarray,
    domains: tuple[str, ...],
    candidates: Sequence[str],
    n_replicas: int,
    seed: int = 0,
    weights: Mapping[str, float] | None = None,
    source_bounds: tuple[tuple[int, int], ...] | None = None,
) -> PlacementArrays:
    """The batched random draw over integer columns.

    ``home`` indexes ``domains`` (the sorted universe of homes plus
    ``candidates``); the draw depends only on ``(n, len(candidates),
    n_replicas, seed, weights)`` plus the home sequence, so any caller
    supplying the same columns — record lists or a columnar corpus —
    gets bit-identical placements.
    """
    code = {domain: j for j, domain in enumerate(domains)}
    n, m = len(urls), len(candidates)
    k = min(n_replicas, m)

    log_weights: np.ndarray | None = None
    if weights is not None:
        log_weights = _normalised_log_weights(candidates, weights, k)

    label = f"random-replication-n{n_replicas}"
    if weights is not None:
        label += "-weighted"

    if k == 0:
        return PlacementArrays(
            strategy=label,
            toot_urls=urls,
            domains=domains,
            home=home,
            replica_indices=np.empty(0, dtype=np.int64),
            replica_indptr=np.zeros(n + 1, dtype=np.int64),
            source_bounds=source_bounds,
        )

    candidate_codes = _encode(candidates, code)
    if k == m:
        # every candidate is picked for every toot; no draw needed
        picks = np.broadcast_to(candidate_codes, (n, m))
    else:
        rng = np.random.default_rng(seed)
        picks = candidate_codes[_batch_distinct_draws(rng, n, m, k, log_weights)]

    # collapse draws that hit the home instance (frozenset-union semantics)
    keep = picks != home[:, None]
    kept_lengths = keep.sum(axis=1).astype(np.int64)
    replica_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(kept_lengths, out=replica_indptr[1:])
    return PlacementArrays(
        strategy=label,
        toot_urls=urls,
        domains=domains,
        home=home,
        replica_indices=picks[keep],
        replica_indptr=replica_indptr,
        source_bounds=source_bounds,
    )
