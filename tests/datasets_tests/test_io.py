"""Tests for dataset persistence (JSONL / CSV)."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.crawler.graph_crawler import FollowEdgeRecord
from repro.crawler.monitor import InstanceSnapshot
from repro.crawler.toot_crawler import TootRecord
from repro.datasets.io import (
    load_edges,
    load_snapshots,
    load_toot_records,
    read_jsonl,
    save_edges,
    save_snapshots,
    save_toot_records,
    write_csv,
    write_jsonl,
)


class TestJSONL:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        rows = [{"a": 1}, {"a": 2, "b": "x"}]
        assert write_jsonl(path, rows) == 2
        assert list(read_jsonl(path)) == rows

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            list(read_jsonl(tmp_path / "missing.jsonl"))

    def test_read_invalid_json(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"ok": 1}\nnot json\n', encoding="utf-8")
        with pytest.raises(DatasetError):
            list(read_jsonl(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n', encoding="utf-8")
        assert len(list(read_jsonl(path))) == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "deeper" / "rows.jsonl"
        write_jsonl(path, [{"a": 1}])
        assert path.exists()


class TestCSV:
    def test_roundtrip_header(self, tmp_path):
        path = tmp_path / "table.csv"
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        assert write_csv(path, rows) == 2
        content = path.read_text(encoding="utf-8").splitlines()
        assert content[0] == "x,y"
        assert len(content) == 3

    def test_empty_rows(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_csv(path, []) == 0
        assert path.read_text(encoding="utf-8") == ""

    def test_heterogeneous_rows_raise_dataset_error_with_row_number(self, tmp_path):
        path = tmp_path / "ragged.csv"
        rows = [{"x": 1, "y": "a"}, {"x": 2, "z": "surprise"}]
        with pytest.raises(DatasetError, match=r"row 2") as excinfo:
            write_csv(path, rows)
        assert "['x', 'y']" in str(excinfo.value)

    def test_explicit_fieldnames_still_validated(self, tmp_path):
        path = tmp_path / "ragged.csv"
        with pytest.raises(DatasetError, match=r"row 1"):
            write_csv(path, [{"x": 1, "extra": 2}], fieldnames=["x"])


class TestDataclassRoundtrips:
    def test_snapshots(self, tmp_path):
        snapshots = [
            InstanceSnapshot(domain="a.example", minute=5, online=True, user_count=3),
            InstanceSnapshot(domain="b.example", minute=5, online=False, exists=False),
        ]
        path = tmp_path / "snapshots.jsonl"
        save_snapshots(path, snapshots)
        assert load_snapshots(path) == snapshots

    def test_toot_records(self, tmp_path):
        records = [
            TootRecord(
                toot_id=1,
                url="https://a.example/@u/1",
                account="u@a.example",
                author_domain="a.example",
                collected_from="b.example",
                created_at=10,
                hashtags=("cats", "dogs"),
            )
        ]
        path = tmp_path / "toots.jsonl"
        save_toot_records(path, records)
        loaded = load_toot_records(path)
        assert loaded == records
        assert loaded[0].hashtags == ("cats", "dogs")

    def test_edges(self, tmp_path):
        edges = [FollowEdgeRecord(follower="a@x.example", followed="b@y.example")]
        path = tmp_path / "edges.jsonl"
        save_edges(path, edges)
        assert load_edges(path) == edges

    def test_unknown_fields_ignored_on_load(self, tmp_path):
        path = tmp_path / "edges.jsonl"
        write_jsonl(
            path,
            [{"follower": "a@x.example", "followed": "b@y.example", "extra": 1}],
        )
        assert load_edges(path) == [
            FollowEdgeRecord(follower="a@x.example", followed="b@y.example")
        ]
