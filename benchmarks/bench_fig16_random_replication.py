"""Fig. 16 — random replication vs subscription replication vs none.

Paper shape: replicating each toot onto n random instances beats
subscription-based replication for the same budget (after removing 25
instances, S-Rep keeps 95% of toots available while a single random
replica already keeps 99.2%); curves for n > 4 are indistinguishable from
full availability.
"""

from __future__ import annotations

from repro.core import replication, resilience
from repro.reporting import format_percentage, format_table

from benchmarks.conftest import emit

REPLICA_COUNTS = (1, 2, 3, 4, 7, 9)
STEPS = 50


def test_fig16_random_replication(benchmark, data):
    ranking = resilience.rank_instances(
        data.graphs.federation_graph,
        toots_per_instance=data.toots.toots_per_instance(),
        by="toots",
    )
    domains = data.instances.domains()

    def run():
        curves = {
            "no-rep": replication.availability_under_instance_removal(
                replication.no_replication(data.toots), ranking, steps=STEPS
            ),
            "s-rep": replication.availability_under_instance_removal(
                replication.subscription_replication(data.toots, data.graphs), ranking, steps=STEPS
            ),
        }
        for n_replicas in REPLICA_COUNTS:
            curves[f"n={n_replicas}"] = replication.availability_under_instance_removal(
                replication.random_replication(data.toots, domains, n_replicas, seed=7),
                ranking,
                steps=STEPS,
            )
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    removals = (5, 10, 25, 50)
    rows = []
    for name in ("no-rep", "s-rep", *(f"n={n}" for n in REPLICA_COUNTS)):
        row = [name] + [
            format_percentage(replication.availability_at(curves[name], removed))
            for removed in removals
        ]
        rows.append(row)
    emit(
        "Fig. 16 — toot availability when removing top instances (by toots)",
        format_table(["strategy"] + [f"top {r} removed" for r in removals], rows),
    )

    at25 = {name: replication.availability_at(curve, 25) for name, curve in curves.items()}
    # ordering: no replication < subscription replication <= random replication
    assert at25["no-rep"] < at25["s-rep"]
    assert at25["n=1"] >= at25["s-rep"] - 0.05
    assert at25["n=4"] >= at25["n=1"] - 1e-9
    # high replica counts keep nearly everything available (paper: >99%)
    assert at25["n=7"] > 0.95
