"""The toots dataset: the de-duplicated catalogue of crawled toots.

Wraps the output of :class:`~repro.crawler.toot_crawler.TootCrawler` with
the indexes used in Sections 4 and 5: per-author and per-home-instance
toot counts, boost counts, and the home/remote composition of each
instance's federated timeline (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import DatasetError
from repro.crawler.toot_crawler import TootCrawlResult, TootRecord


@dataclass
class TimelineComposition:
    """Home vs. remote toots observed on one instance's federated timeline."""

    domain: str
    home_toots: int = 0
    remote_toots: int = 0

    @property
    def total(self) -> int:
        """Total number of toots on the federated timeline."""
        return self.home_toots + self.remote_toots

    @property
    def home_fraction(self) -> float:
        """Fraction of the federated timeline generated locally."""
        if self.total == 0:
            return 0.0
        return self.home_toots / self.total

    @property
    def remote_fraction(self) -> float:
        """Fraction of the federated timeline replicated from elsewhere."""
        if self.total == 0:
            return 0.0
        return self.remote_toots / self.total


class TootsDataset:
    """The de-duplicated toot catalogue plus per-instance observations."""

    def __init__(
        self,
        records: Iterable[TootRecord],
        observed_by_instance: Mapping[str, Iterable[TootRecord]] | None = None,
        crawl_minute: int = 0,
    ) -> None:
        self.crawl_minute = crawl_minute
        unique: dict[str, TootRecord] = {}
        for record in records:
            unique.setdefault(record.url, record)
        if not unique:
            raise DatasetError("cannot build a toots dataset with no records")
        self._records = unique
        self._observed_by_instance: dict[str, list[TootRecord]] = {
            domain: list(observations)
            for domain, observations in (observed_by_instance or {}).items()
        }

        self._by_author: dict[str, list[TootRecord]] = {}
        self._by_home_instance: dict[str, list[TootRecord]] = {}
        for record in self._records.values():
            self._by_author.setdefault(record.account, []).append(record)
            self._by_home_instance.setdefault(record.author_domain, []).append(record)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_crawl(cls, result: TootCrawlResult) -> "TootsDataset":
        """Build the dataset from a :class:`TootCrawlResult`."""
        return cls(
            records=result.all_records(),
            observed_by_instance=result.records_by_instance,
            crawl_minute=result.crawl_minute,
        )

    # -- basic accessors -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[TootRecord]:
        """Every unique toot record."""
        return list(self._records.values())

    def authors(self) -> list[str]:
        """Every distinct author handle."""
        return sorted(self._by_author)

    def author_count(self) -> int:
        """Number of distinct authors in the catalogue."""
        return len(self._by_author)

    def home_instances(self) -> list[str]:
        """Every instance that authored at least one crawled toot."""
        return sorted(self._by_home_instance)

    def toots_by_author(self, account: str) -> list[TootRecord]:
        """Toots authored by ``account``."""
        return list(self._by_author.get(account, []))

    def toots_from_instance(self, domain: str) -> list[TootRecord]:
        """Toots authored on ``domain`` (its home toots)."""
        return list(self._by_home_instance.get(domain, []))

    def toots_per_instance(self) -> dict[str, int]:
        """Home-toot count per instance."""
        return {domain: len(records) for domain, records in self._by_home_instance.items()}

    def toots_per_author(self) -> dict[str, int]:
        """Toot count per author handle."""
        return {account: len(records) for account, records in self._by_author.items()}

    def boost_count(self) -> int:
        """Number of boosts in the catalogue."""
        return sum(1 for record in self._records.values() if record.is_boost)

    def original_toots(self) -> list[TootRecord]:
        """Toots that are not boosts."""
        return [record for record in self._records.values() if not record.is_boost]

    def coverage(self, total_toots_reported: int) -> float:
        """Fraction of the instance-reported toot population we collected.

        The paper compares its crawl against the counts exposed by the
        instance API and reports 62% coverage.
        """
        if total_toots_reported <= 0:
            raise DatasetError("the reported toot population must be positive")
        return min(1.0, len(self._records) / total_toots_reported)

    # -- federated timeline composition (Fig. 14) ------------------------------------

    def observed_instances(self) -> list[str]:
        """Instances whose federated timeline was crawled."""
        return sorted(self._observed_by_instance)

    def timeline_composition(self, domain: str) -> TimelineComposition:
        """Home/remote composition of one instance's federated timeline."""
        observations = self._observed_by_instance.get(domain)
        if observations is None:
            raise DatasetError(f"no federated-timeline observations for {domain!r}")
        composition = TimelineComposition(domain=domain)
        for record in observations:
            if record.author_domain == domain:
                composition.home_toots += 1
            else:
                composition.remote_toots += 1
        return composition

    def timeline_compositions(self) -> list[TimelineComposition]:
        """Home/remote composition for every observed instance."""
        return [self.timeline_composition(domain) for domain in self.observed_instances()]

    def replication_counts(self) -> dict[str, int]:
        """For each toot URL, how many *other* instances held a copy.

        This quantifies how widely each toot was already replicated onto
        federated timelines at crawl time (used to motivate Section 5.2).
        """
        counts: dict[str, int] = {url: 0 for url in self._records}
        for domain, observations in self._observed_by_instance.items():
            for record in observations:
                if record.author_domain != domain and record.url in counts:
                    counts[record.url] += 1
        return counts
