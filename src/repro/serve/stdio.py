"""The line-oriented stdin/stdout transport for scripts.

One query per line — ``<verb> key=value key=value …`` — one JSON answer
per line, in order.  Blank lines and ``#`` comments are skipped;
``quit`` / ``exit`` ends the session.  Errors never kill the loop: a
malformed or rejected query answers ``{"error": …}`` on its own line,
so a script can pipe a whole batch through one warm service::

    printf 'availability strategy=no-rep failure=instances/by_toots k=10\\n' \\
        | repro-mastodon serve CORPUS --graph GRAPH --stdin
"""

from __future__ import annotations

import json
import sys
from typing import IO

from repro.errors import ReproError
from repro.serve.service import AvailabilityService, handle_query


def _parse_line(line: str) -> tuple[str, dict[str, str]]:
    tokens = line.split()
    verb = tokens[0]
    params: dict[str, str] = {}
    for token in tokens[1:]:
        name, sep, value = token.partition("=")
        if not sep or not name:
            raise ReproError(f"malformed query token {token!r} (expected key=value)")
        params[name] = value
    return verb, params


def serve_stdio(
    service: AvailabilityService,
    in_stream: IO[str] | None = None,
    out_stream: IO[str] | None = None,
) -> None:
    """Answer queries line by line until EOF or ``quit``/``exit``."""
    if in_stream is None:
        in_stream = sys.stdin
    if out_stream is None:
        out_stream = sys.stdout
    for line in in_stream:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if line in ("quit", "exit"):
            break
        try:
            verb, params = _parse_line(line)
            payload = handle_query(service, verb, params)
        except ReproError as exc:
            payload = {"error": str(exc)}
        out_stream.write(json.dumps(payload, sort_keys=True) + "\n")
        out_stream.flush()
