"""Measurement tooling: the crawlers the paper used, re-implemented.

The package provides the three collectors behind the paper's datasets:

* :class:`~repro.crawler.monitor.InstanceMonitor` — the mnm.social-style
  poller producing five-minute instance snapshots;
* :class:`~repro.crawler.toot_crawler.TootCrawler` — the multi-threaded
  federated-timeline crawler producing the toots dataset;
* :class:`~repro.crawler.graph_crawler.FollowerGraphCrawler` — the
  follower-page scraper producing the follower/federation graphs.

All of them speak to instances exclusively through
:class:`~repro.crawler.http.SimulatedTransport`, which exposes the same
URL surface a real deployment would.
"""

from repro.crawler.http import HTTPResponse, SimulatedTransport, toot_to_payload
from repro.crawler.monitor import InstanceMonitor, InstanceSnapshot, MonitoringLog
from repro.crawler.scheduler import CrawlScheduler, RateLimiter
from repro.crawler.toot_crawler import TootCrawler, TootRecord
from repro.crawler.graph_crawler import FollowerGraphCrawler, FollowEdgeRecord

__all__ = [
    "CrawlScheduler",
    "FollowEdgeRecord",
    "FollowerGraphCrawler",
    "HTTPResponse",
    "InstanceMonitor",
    "InstanceSnapshot",
    "MonitoringLog",
    "RateLimiter",
    "SimulatedTransport",
    "TootCrawler",
    "TootRecord",
    "toot_to_payload",
]
