"""Fig. 5 — top-5 hosting countries and ASes.

Paper shape: Japan leads (25.5% of instances, 41% of users), followed by
the US and France; the top ASes (Amazon, Cloudflare, Sakura, OVH,
DigitalOcean) host a disproportionate share of users — the top three hold
almost two thirds.

Thin timing wrapper over the ``fig5`` registry runner.
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_fig05_hosting(benchmark, ctx):
    result = benchmark(lambda: get_experiment("fig5").run(ctx))
    emit("Fig. 5 — top countries and ASes", result.render_text())

    assert result.scalar("top_country") == "JP"
    # Japan attracts proportionally more users than instances (paper: 25.5% vs 41%)
    assert result.scalar("top_country_user_share") > result.scalar("top_country_instance_share")
    # the top AS hosts a much larger share of users than of instances
    assert result.scalar("top_as_user_share") > result.scalar("top_as_instance_share")
    assert result.scalar("top3_as_user_share") > 0.4
