"""The experiment registry: every table and figure the paper reports.

Each entry records what the paper shows, which modules implement the
pieces, and which benchmark regenerates it — the machine-readable version
of the per-experiment index in DESIGN.md.  Entries are *executable*:
:meth:`Experiment.run` dispatches to the runner registered in
:mod:`repro.experiments` and returns a structured
:class:`~repro.experiments.results.ExperimentResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext
    from repro.experiments.results import ExperimentResult


@dataclass(frozen=True, slots=True)
class Experiment:
    """One reproducible table or figure from the paper's evaluation."""

    experiment_id: str
    title: str
    paper_claim: str
    modules: tuple[str, ...]
    benchmark: str

    def run(self, ctx: "ExperimentContext") -> "ExperimentResult":
        """Execute this experiment's registered runner against ``ctx``.

        Imported lazily: the reporting layer stays importable without
        pulling the runner modules (and their analysis imports) in.
        """
        from repro.experiments import run_experiment

        return run_experiment(self.experiment_id, ctx)


EXPERIMENTS: dict[str, Experiment] = {
    experiment.experiment_id: experiment
    for experiment in (
        Experiment(
            "fig1",
            "Instances, users and toots over time",
            "Mastodon keeps growing; instances plateau mid-2017 then grow again in 2018.",
            ("repro.core.growth", "repro.crawler.monitor", "repro.datasets.instances"),
            "benchmarks/bench_fig01_growth.py",
        ),
        Experiment(
            "fig2",
            "Open vs closed registrations",
            "Top 5% of instances hold ~90% of users; closed instances are more active per capita.",
            ("repro.core.centralisation",),
            "benchmarks/bench_fig02_open_closed.py",
        ),
        Experiment(
            "fig3",
            "Instance categories",
            "Tech/games dominate instances; adult instances are few but hold most users.",
            ("repro.core.categories",),
            "benchmarks/bench_fig03_categories.py",
        ),
        Experiment(
            "fig4",
            "Prohibited and allowed activities",
            "Spam, pornography and nudity are the most commonly prohibited activities.",
            ("repro.core.categories",),
            "benchmarks/bench_fig04_activities.py",
        ),
        Experiment(
            "fig5",
            "Hosting countries and ASes",
            "Japan, the US and France dominate; three ASes host almost two thirds of users.",
            ("repro.core.hosting",),
            "benchmarks/bench_fig05_hosting.py",
        ),
        Experiment(
            "fig6",
            "Cross-country federation flows",
            "Federated links are homophilous and concentrate on the top five countries.",
            ("repro.core.hosting",),
            "benchmarks/bench_fig06_country_federation.py",
        ),
        Experiment(
            "fig7",
            "Instance downtime CDF",
            "Half of instances have <5% downtime; 11% are down more than half the time.",
            ("repro.core.availability",),
            "benchmarks/bench_fig07_downtime.py",
        ),
        Experiment(
            "fig8",
            "Per-day downtime by instance popularity vs Twitter",
            "Popularity does not predict availability; Twitter 2007 was still more available.",
            ("repro.core.availability", "repro.datasets.twitter"),
            "benchmarks/bench_fig08_downtime_bins.py",
        ),
        Experiment(
            "fig9",
            "Certificate authorities and expiry outages",
            "Let's Encrypt serves >85% of instances; expiries cause correlated outages.",
            ("repro.core.availability", "repro.fediverse.certificates"),
            "benchmarks/bench_fig09_certificates.py",
        ),
        Experiment(
            "fig10",
            "Continuous outage durations",
            "A quarter of instances disappear for at least a day; some for over a month.",
            ("repro.core.availability",),
            "benchmarks/bench_fig10_outage_durations.py",
        ),
        Experiment(
            "fig11",
            "Degree distributions",
            "Follower, federation and Twitter graphs all exhibit power-law degrees.",
            ("repro.core.resilience", "repro.datasets.graphs", "repro.datasets.twitter"),
            "benchmarks/bench_fig11_degree.py",
        ),
        Experiment(
            "fig12",
            "Removing top user accounts",
            "Removing the top 1% of accounts collapses the LCC from ~100% to ~26% of users.",
            ("repro.core.resilience", "repro.engine.resilience"),
            "benchmarks/bench_fig12_user_removal.py",
        ),
        Experiment(
            "fig13",
            "Removing top instances and ASes from the federation graph",
            "Instance removal degrades GF linearly; removing 5 ASes halves the LCC.",
            ("repro.core.resilience", "repro.engine.resilience"),
            "benchmarks/bench_fig13_instance_as_removal.py",
        ),
        Experiment(
            "fig14",
            "Home vs remote toots",
            "78% of instances generate under 10% of the toots on their federated timeline.",
            ("repro.core.federation_analysis",),
            "benchmarks/bench_fig14_home_remote.py",
        ),
        Experiment(
            "fig15",
            "Toot availability without and with subscription replication",
            "Without replication, removing 10 instances erases ~63% of toots; replication helps.",
            ("repro.core.replication", "repro.engine.sweep", "repro.engine.kernels"),
            "benchmarks/bench_fig15_replication.py",
        ),
        Experiment(
            "fig16",
            "Random replication",
            "Random replication outperforms subscription replication for the same budget.",
            ("repro.core.replication", "repro.engine.sweep", "repro.engine.kernels"),
            "benchmarks/bench_fig16_random_replication.py",
        ),
        Experiment(
            "table1",
            "AS-wide failures",
            "Six ASes suffered correlated outages, removing millions of toots temporarily.",
            ("repro.core.availability",),
            "benchmarks/bench_table1_as_failures.py",
        ),
        Experiment(
            "table2",
            "Top-10 instances",
            "The largest instances by home toots, their degrees, operators and hosting.",
            ("repro.core.federation_analysis",),
            "benchmarks/bench_table2_top_instances.py",
        ),
        Experiment(
            "correlated",
            "Correlated hoster and country outages",
            "A handful of hosting providers and countries sit behind most instances "
            "(Figs. 5/13, Tables 1-2); one provider outage removes a correlated set.",
            ("repro.engine.failures", "repro.engine.sweep", "repro.core.hosting"),
            "benchmarks/bench_failure_models.py",
        ),
        Experiment(
            "churn",
            "Availability under temporal churn",
            "Instances go down and come back on the empirical outage distributions "
            "(Figs. 7-10); replication must survive churn, not just monotone removal.",
            ("repro.engine.failures", "repro.engine.sweep", "repro.fediverse.uptime"),
            "benchmarks/bench_temporal_churn.py",
        ),
        Experiment(
            "headline",
            "Section 4.1 concentration headlines",
            "Top 5% of instances hold ~90% of users and ~95% of toots.",
            ("repro.core.centralisation",),
            "benchmarks/bench_headline_centralisation.py",
        ),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look an experiment up by its id (e.g. ``"fig12"`` or ``"table1"``)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise AnalysisError(f"unknown experiment: {experiment_id!r}") from exc
