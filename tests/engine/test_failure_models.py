"""The failure-model verification layer: contract, differential, statistical.

Three lines of defence around :mod:`repro.engine.failures`:

* a **conformance suite** over every model — old and new — holding the
  :class:`FailureModel` contract (1-based indices, ``effective_steps``
  bounds, known domains only, seeded determinism);
* a **differential suite** proving degenerate configurations of the new
  models are *bit-identical* to the existing ``InstanceRemoval`` /
  ``ASRemoval`` curves on both the monolithic and sharded paths — new
  semantics may extend the engine, never drift it;
* a **statistical suite** holding :class:`TemporalChurn`'s bootstrap
  sampler to the empirical outage distributions of
  :mod:`repro.fediverse.uptime` with two-sample KS tests.

Statistical tolerances are documented inline: the KS tests must not
reject at the 1% level (the sampler draws with replacement from the very
sample it is compared against, so rejection means a sampler bug, not bad
luck), and realised downtime lands within a ×[0.5, 2.5] band of the
target (overshoot from the final bootstrap draw and undershoot from
overlap merging are both expected and bounded).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core import replication
from repro.engine import (
    ASRemoval,
    CountryRemoval,
    HosterRemoval,
    InstanceRemoval,
    ScheduledDowntime,
    TemporalChurn,
    TootIncidence,
    availability_curves,
)
from repro.errors import AnalysisError
from repro.fediverse.geo import HOSTER_OF_ASN, hoster_of_asn
from repro.simtime import MINUTES_PER_DAY

from tests.engine.test_placement import flat_toots

DOMAINS = tuple(f"d{i}.example" for i in range(17))
N_TOOTS = 97
SHARD_SIZES = (1, 13, N_TOOTS, N_TOOTS + 7)

#: KS rejection level for the sampler checks (see module docstring).
KS_ALPHA = 0.01

ASN_OF = {domain: (9370, 16509, 16276, 64512)[i % 4] for i, domain in enumerate(DOMAINS)}
COUNTRY_OF = {domain: ("JP", "US", "FR")[i % 3] for i, domain in enumerate(DOMAINS)}
DOWNTIME = {domain: 0.1 + 0.03 * i for i, domain in enumerate(DOMAINS)}
EMPIRICAL_DAYS = (0.25, 0.5, 1.0, 2.0, 5.0)


def make_models() -> dict[str, object]:
    """Every registered failure model, freshly built from fixed inputs."""
    return {
        "instance": InstanceRemoval(DOMAINS, steps=10, name="instance"),
        "as": ASRemoval(ASN_OF, sorted(set(ASN_OF.values())), steps=4, name="as"),
        "hoster": HosterRemoval(
            {d: hoster_of_asn(a) for d, a in ASN_OF.items()},
            sorted({hoster_of_asn(a) for a in ASN_OF.values()}),
            steps=4,
            name="hoster",
        ),
        "country": CountryRemoval(
            COUNTRY_OF, sorted(set(COUNTRY_OF.values())), steps=3, name="country"
        ),
        "scheduled": ScheduledDowntime(
            {DOMAINS[0]: [(2, 5)], DOMAINS[3]: [(1, 3), (6, 8)]}, steps=8, name="sched"
        ),
        "churn": TemporalChurn(
            DOMAINS, EMPIRICAL_DAYS, DOWNTIME, steps=12, horizon_days=20.0, seed=7,
            name="churn",
        ),
    }


@pytest.fixture(scope="module")
def placements():
    toots = flat_toots(N_TOOTS, list(DOMAINS), seed=5)
    return replication.random_replication(toots, list(DOMAINS), 3, seed=2)


def curve_array(curves, name):
    return np.asarray([p.availability for p in curves[name]], dtype=np.float64)


# -- satellite: duplicate rankings are a hard error -------------------------------


class TestDuplicateRankings:
    def test_instance_removal_rejects_duplicate_domains(self):
        with pytest.raises(AnalysisError, match="duplicate domains"):
            InstanceRemoval(["a.example", "b.example", "a.example"], steps=5)

    def test_as_removal_rejects_duplicate_asns(self):
        with pytest.raises(AnalysisError, match="duplicate ASNs"):
            ASRemoval({"a.example": 1}, [1, 2, 1], steps=5)

    def test_grouped_models_reject_duplicate_groups(self):
        with pytest.raises(AnalysisError, match="duplicate hosters"):
            HosterRemoval({"a.example": "x"}, ["x", "y", "x"], steps=5)
        with pytest.raises(AnalysisError, match="duplicate countries"):
            CountryRemoval({"a.example": "JP"}, ["JP", "US", "JP"], steps=5)

    def test_error_names_the_duplicates(self):
        with pytest.raises(AnalysisError, match="dup.example"):
            InstanceRemoval(["dup.example", "other.example", "dup.example"], steps=5)

    def test_duplicates_beyond_the_step_cutoff_still_rejected(self):
        # the ranking is validated in full: a duplicate past `steps` is
        # just as much a data error as one inside the window
        with pytest.raises(AnalysisError, match="duplicate domains"):
            InstanceRemoval(["a.example", "b.example", "a.example"], steps=1)


# -- the FailureModel contract, every model ---------------------------------------


@pytest.mark.parametrize("key", list(make_models()))
class TestContract:
    def test_effective_steps_bounded_by_steps(self, key):
        model = make_models()[key]
        assert 1 <= model.effective_steps() <= model.steps

    def test_indices_one_based_and_bounded(self, key):
        model = make_models()[key]
        if model.temporal:
            intervals = model.down_intervals()
            for windows in intervals.values():
                for start, stop in windows:
                    assert 1 <= start < stop <= model.effective_steps() + 1
        else:
            index = model.removal_index()
            assert index, "cumulative models must remove something"
            for step in index.values():
                assert isinstance(step, int)
                assert 1 <= step <= model.effective_steps()

    def test_only_known_domains(self, key):
        model = make_models()[key]
        affected = (
            set(model.down_intervals()) if model.temporal else set(model.removal_index())
        )
        assert affected <= set(DOMAINS)

    def test_deterministic_under_fixed_inputs(self, key):
        first, second = make_models()[key], make_models()[key]
        if first.temporal:
            assert first.down_intervals() == second.down_intervals()
        else:
            assert first.removal_index() == second.removal_index()

    def test_repr_names_the_model(self, key):
        model = make_models()[key]
        assert model.name in repr(model) and str(model.steps) in repr(model)


class TestTemporalContract:
    def test_temporal_flag_partitions_the_models(self):
        models = make_models()
        assert {k for k, m in models.items() if m.temporal} == {"scheduled", "churn"}

    def test_removal_index_raises_on_temporal_models(self):
        for model in (m for m in make_models().values() if m.temporal):
            with pytest.raises(AnalysisError, match="temporal"):
                model.removal_index()

    def test_down_matrix_alignment(self, placements):
        model = make_models()["scheduled"]
        lookup = TootIncidence.from_placements(placements).lookup
        down = model.down_matrix(lookup)
        assert down.shape == (lookup.n_domains, model.effective_steps())
        code = lookup.codes([DOMAINS[0]])[0]
        assert list(np.flatnonzero(down[code]) + 1) == [2, 3, 4]

    def test_unknown_domains_ignored_by_down_matrix(self, placements):
        model = ScheduledDowntime({"ghost.example": [(1, 3)]}, steps=4)
        lookup = TootIncidence.from_placements(placements).lookup
        assert not model.down_matrix(lookup).any()

    def test_interval_validation(self):
        for bad in ([(0, 2)], [(3, 3)], [(2, 10)]):
            with pytest.raises(AnalysisError, match="outside ticks"):
                ScheduledDowntime({DOMAINS[0]: bad}, steps=8)

    def test_recovery_is_visible_in_the_curve(self, placements):
        # one domain down for ticks 2..3 only: the curve must dip and
        # then return exactly to the baseline — monotone sweeps cannot
        # express this
        model = ScheduledDowntime({DOMAINS[0]: [(2, 4)]}, steps=6, name="blip")
        no_rep = replication.no_replication(
            flat_toots(N_TOOTS, list(DOMAINS), seed=5)
        )
        curve = curve_array(availability_curves(no_rep, [model], shard_size=0), "blip")
        assert curve[0] == 1.0
        assert curve[2] == curve[3] < 1.0
        assert curve[1] == curve[4] == curve[5] == curve[6] == 1.0


# -- differential: degenerate configs are bit-identical ---------------------------


class TestDifferential:
    @pytest.mark.parametrize("shard_size", (0,) + SHARD_SIZES)
    def test_degenerate_downtime_matches_instance_removal(self, placements, shard_size):
        """One new domain down per tick, zero recoveries == InstanceRemoval."""
        steps = 10
        inst = InstanceRemoval(DOMAINS, steps=steps, name="inst")
        sched = ScheduledDowntime(
            {d: [(i + 1, steps + 1)] for i, d in enumerate(DOMAINS[:steps])},
            steps=steps,
            name="sched",
        )
        curves = availability_curves(placements, [inst, sched], shard_size=shard_size)
        assert np.array_equal(curve_array(curves, "inst"), curve_array(curves, "sched"))

    @pytest.mark.parametrize("shard_size", (0,) + SHARD_SIZES)
    def test_identity_hoster_grouping_matches_instance_removal(
        self, placements, shard_size
    ):
        """Every instance its own hoster == plain instance removal."""
        steps = 10
        inst = InstanceRemoval(DOMAINS, steps=steps, name="inst")
        hoster = HosterRemoval({d: d for d in DOMAINS}, DOMAINS, steps=steps, name="host")
        curves = availability_curves(placements, [inst, hoster], shard_size=shard_size)
        assert np.array_equal(curve_array(curves, "inst"), curve_array(curves, "host"))

    @pytest.mark.parametrize("shard_size", (0,) + SHARD_SIZES)
    def test_as_label_grouping_matches_as_removal(self, placements, shard_size):
        """Hoster groups that are exactly the ASNs == plain AS removal."""
        ranking = sorted(set(ASN_OF.values()))
        as_model = ASRemoval(ASN_OF, ranking, steps=4, name="as")
        grouped = HosterRemoval(
            {d: f"AS{a}" for d, a in ASN_OF.items()},
            [f"AS{a}" for a in ranking],
            steps=4,
            name="grouped",
        )
        curves = availability_curves(placements, [as_model, grouped], shard_size=shard_size)
        assert np.array_equal(curve_array(curves, "as"), curve_array(curves, "grouped"))

    def test_country_grouping_is_the_same_machinery(self, placements):
        """CountryRemoval with country==domain labels == InstanceRemoval."""
        steps = 8
        inst = InstanceRemoval(DOMAINS[:steps], steps=steps, name="inst")
        country = CountryRemoval(
            {d: d for d in DOMAINS[:steps]}, DOMAINS[:steps], steps=steps, name="country"
        )
        curves = availability_curves(placements, [inst, country], shard_size=0)
        assert np.array_equal(curve_array(curves, "inst"), curve_array(curves, "country"))

    def test_mixed_cumulative_and_temporal_batch(self, placements):
        """A mixed batch reproduces each model's solo curve exactly."""
        models = [
            InstanceRemoval(DOMAINS, steps=10, name="inst"),
            make_models()["churn"],
            ASRemoval(ASN_OF, sorted(set(ASN_OF.values())), steps=4, name="as"),
        ]
        together = availability_curves(placements, models, shard_size=0)
        for model in models:
            solo = availability_curves(placements, [model], shard_size=0)
            assert np.array_equal(
                curve_array(together, model.name), curve_array(solo, model.name)
            ), model.name

    def test_sakura_siblings_collapse_into_one_hoster(self):
        assert hoster_of_asn(9370) == hoster_of_asn(9371) == "Sakura Internet"
        assert len(set(HOSTER_OF_ASN.values())) == len(HOSTER_OF_ASN) - 1

    def test_unknown_asn_falls_back_to_name_then_label(self):
        assert hoster_of_asn(64512, "Example Net") == "Example Net"
        assert hoster_of_asn(64512) == "AS64512"
        assert hoster_of_asn(None) == "unknown"


# -- statistical: the churn sampler matches the empirics --------------------------


class TestChurnStatistics:
    def test_sampled_durations_match_source_distribution(self):
        """Two-sample KS vs the empirical sample (tolerance: alpha=0.01).

        The sampler bootstraps *with replacement from this very sample*,
        so KS must not reject: a rejection at the 1% level indicates a
        sampler bug (biased draws, truncation), not sampling noise.
        """
        rng = np.random.default_rng(99)
        source = rng.lognormal(mean=-1.0, sigma=1.2, size=400)
        domains = [f"x{i}.example" for i in range(150)]
        churn = TemporalChurn(
            domains,
            source,
            {d: 0.2 for d in domains},
            steps=48,
            horizon_days=30.0,
            seed=17,
        )
        sampled = churn.sampled_outage_days()
        assert sampled.size > 100  # enough draws for the test to have power
        result = stats.ks_2samp(sampled, source)
        assert result.pvalue > KS_ALPHA, (result.statistic, result.pvalue)

    def test_schedule_sampler_matches_fig10_empirics(self, tiny_network):
        """from_schedule draws reproduce the recovered-outage distribution.

        Source: pooled ``continuous_outage_days`` of every *recovered*
        merged outage in the tiny scenario's ground-truth schedule
        (Fig. 10's came-back rule).  Tolerance as above: KS at alpha=0.01.
        """
        schedule = tiny_network.availability
        domains = sorted(schedule.domains())
        source = [
            window.duration / MINUTES_PER_DAY
            for domain in domains
            for window in schedule.merged_outage_windows(domain)
            if window.end < schedule.window_minutes
        ]
        churn = TemporalChurn.from_schedule(schedule, domains, steps=48, seed=11)
        sampled = churn.sampled_outage_days()
        assert sampled.size > 50
        result = stats.ks_2samp(sampled, np.asarray(source))
        assert result.pvalue > KS_ALPHA, (result.statistic, result.pvalue)

    def test_realised_downtime_tracks_targets(self):
        """Mean realised downtime lands in a ×[0.5, 2.5] band of the target.

        Documented tolerance: the last bootstrap draw may overshoot the
        per-domain budget (bounded by one maximal draw) and overlapping
        windows merge, so per-domain fractions scatter around the target;
        the band holds the *mean* across many domains.
        """
        domains = [f"x{i}.example" for i in range(200)]
        target = 0.25
        churn = TemporalChurn(
            domains,
            (0.5, 1.0, 1.5),
            {d: target for d in domains},
            steps=24,
            horizon_days=30.0,
            seed=3,
        )
        realised = churn.realised_downtime_fractions()
        assert len(realised) == len(domains)
        mean_realised = float(np.mean(list(realised.values())))
        assert 0.5 * target <= mean_realised <= 2.5 * target, mean_realised

    def test_zero_downtime_domains_never_fail(self):
        churn = TemporalChurn(
            ["up.example", "down.example"],
            (1.0,),
            {"up.example": 0.0, "down.example": 0.5},
            steps=8,
            horizon_days=10.0,
            seed=1,
        )
        intervals = churn.down_intervals()
        assert "up.example" not in intervals
        assert "down.example" in intervals

    def test_seeds_are_independent_processes(self):
        domains = [f"x{i}.example" for i in range(40)]
        build = lambda seed: TemporalChurn(
            domains, (0.5, 1.0, 2.0), {d: 0.3 for d in domains},
            steps=24, horizon_days=20.0, seed=seed,
        )
        assert build(0).down_intervals() == build(0).down_intervals()
        assert build(0).down_intervals() != build(1).down_intervals()

    def test_validation_errors(self):
        with pytest.raises(AnalysisError, match="non-empty empirical"):
            TemporalChurn(DOMAINS, (), DOWNTIME, steps=4)
        with pytest.raises(AnalysisError, match="positive"):
            TemporalChurn(DOMAINS, (0.0, 1.0), DOWNTIME, steps=4)
        with pytest.raises(AnalysisError, match="horizon"):
            TemporalChurn(DOMAINS, (1.0,), DOWNTIME, steps=4, horizon_days=0.0)
        with pytest.raises(AnalysisError, match=r"\[0, 1\]"):
            TemporalChurn(DOMAINS, (1.0,), {DOMAINS[0]: 1.5}, steps=4)
