"""Rendering for engine sweep results (Figs. 15-16 style tables)."""

from __future__ import annotations

from typing import Sequence

from repro.reporting.tables import format_percentage, format_table


def format_sweep_table(
    result: "SweepResult",
    failure: str,
    removals: Sequence[int],
    *,
    strategy_header: str = "strategy",
    removed_label: str = "removed",
) -> str:
    """One row per strategy, one availability column per removal count.

    ``result`` is a :class:`repro.engine.sweep.SweepResult`; availabilities
    are rendered as percentages, matching the paper's figures.
    """
    headers = [strategy_header] + [f"top {r} {removed_label}" for r in removals]
    rows = [
        [row[0]] + [format_percentage(value) for value in row[1:]]
        for row in result.availability_rows(failure, removals)
    ]
    return format_table(headers, rows)
