"""Fig. 2 — open vs closed registrations.

Paper shape: open instances hold most users (mean 613 vs 87), but closed
instances are more active per capita (186.7 vs 94.8 toots per user) and
have more engaged users (median activity 75% vs 50%).
"""

from __future__ import annotations

from repro.core import centralisation
from repro.reporting import format_percentage, format_table

from benchmarks.conftest import emit


def test_fig02a_per_instance_cdfs(benchmark, data):
    cdfs = benchmark(lambda: centralisation.per_instance_count_cdfs(data.instances))
    rows = [
        [name, len(cdf), round(cdf.quantile(0.5), 1), round(cdf.quantile(0.95), 1)]
        for name, cdf in sorted(cdfs.items())
    ]
    emit(
        "Fig. 2(a) — users/toots per instance by registration policy",
        format_table(["series", "instances", "median", "p95"], rows),
    )
    assert cdfs["users_open"].quantile(0.5) >= cdfs["users_closed"].quantile(0.5)


def test_fig02b_registration_split(benchmark, data):
    split = benchmark(lambda: centralisation.registration_split(data.instances))
    emit(
        "Fig. 2(b) — share of instances/users/toots by registration policy",
        format_table(
            ["registration", "instances", "users", "toots", "toots per user"],
            [
                ["open", split.open_instances, split.open_users, split.open_toots,
                 round(split.toots_per_user_open, 1)],
                ["closed", split.closed_instances, split.closed_users, split.closed_toots,
                 round(split.toots_per_user_closed, 1)],
            ],
        )
        + f"\nopen instances hold {format_percentage(split.open_user_share)} of users "
        f"(paper: the large majority)",
    )
    assert split.open_user_share > 0.5
    assert split.mean_users_open > split.mean_users_closed
    assert split.toots_per_user_closed > split.toots_per_user_open


def test_fig02c_activity_levels(benchmark, data):
    cdfs = benchmark(lambda: centralisation.activity_level_cdfs(data.instances))
    rows = [
        [name, round(cdf.quantile(0.5), 2), round(cdf.quantile(0.9), 2)]
        for name, cdf in sorted(cdfs.items())
    ]
    emit(
        "Fig. 2(c) — per-instance activity levels (max weekly active share)",
        format_table(["group", "median", "p90"], rows),
    )
    # closed instances have more engaged users than open ones (paper: 75% vs 50%)
    assert cdfs["closed"].quantile(0.5) >= cdfs["open"].quantile(0.5)
