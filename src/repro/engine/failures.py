"""Failure models: who disappears, and at which removal step.

A failure model reduces to one thing the kernels understand: a mapping
``domain -> 1-based removal step`` plus the schedule length.  The two
models from the paper are instance removal (Figs. 15b/d, 16) and AS
removal (Figs. 15a/c), but anything that can name a per-domain removal
step — correlated datacentre outages, country-level blocks, certificate
expiries — plugs in the same way:

1. subclass :class:`FailureModel`;
2. implement :meth:`FailureModel.removal_index` (and, if the realised
   schedule can be shorter than requested, :meth:`effective_steps`);
3. hand it to :func:`repro.engine.sweep.availability_curve` or a sweep.

Nothing else in the engine needs to change.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import AnalysisError


class FailureModel:
    """Base class: a named, fixed-length removal schedule."""

    def __init__(self, name: str, steps: int) -> None:
        if steps < 1:
            raise AnalysisError("steps must be positive")
        self.name = name
        self.steps = steps

    def removal_index(self) -> dict[str, int]:
        """Map each failing domain to its 1-based removal step."""
        raise NotImplementedError

    def effective_steps(self) -> int:
        """The realised schedule length (rankings may be shorter)."""
        return self.steps

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, steps={self.steps})"


class InstanceRemoval(FailureModel):
    """Remove the top-``steps`` instances of ``ranking``, one per step."""

    def __init__(
        self, ranking: Sequence[str], steps: int = 100, name: str = "instance-removal"
    ) -> None:
        super().__init__(name=name, steps=steps)
        self.ranking = tuple(ranking)

    def removal_index(self) -> dict[str, int]:
        return {domain: i + 1 for i, domain in enumerate(self.ranking[: self.steps])}

    def effective_steps(self) -> int:
        return min(self.steps, len(self.ranking))


class ASRemoval(FailureModel):
    """Remove the top-``steps`` ASes of ``ranking`` with every instance they host."""

    def __init__(
        self,
        asn_of_instance: Mapping[str, int],
        ranking: Sequence[int],
        steps: int = 25,
        name: str = "as-removal",
    ) -> None:
        super().__init__(name=name, steps=steps)
        self.ranking = tuple(ranking)
        self.asn_of_instance = dict(asn_of_instance)

    def removal_index(self) -> dict[str, int]:
        as_index = {asn: i + 1 for i, asn in enumerate(self.ranking[: self.steps])}
        return {
            domain: as_index[asn]
            for domain, asn in self.asn_of_instance.items()
            if asn in as_index
        }

    def effective_steps(self) -> int:
        return min(self.steps, len(self.ranking))
