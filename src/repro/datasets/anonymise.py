"""Anonymisation of user-identifying fields.

The paper anonymised all data before usage and only released
infrastructure information plus anonymised toot metadata.  The
:class:`Anonymiser` applies a salted one-way hash to account handles (and
to toot URLs, which embed the handle) while keeping instance domains
intact — instance-level analysis needs domains, user-level analysis only
needs stable pseudonyms.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import replace
from typing import Iterable

from repro.crawler.graph_crawler import FollowEdgeRecord
from repro.crawler.toot_crawler import TootRecord


class Anonymiser:
    """Salted, deterministic pseudonymisation of account handles."""

    def __init__(self, salt: str | None = None, digest_size: int = 12) -> None:
        self._salt = salt if salt is not None else secrets.token_hex(16)
        self._digest_size = digest_size

    @property
    def salt(self) -> str:
        """The salt in use (persist it to keep pseudonyms stable across runs)."""
        return self._salt

    def pseudonym(self, handle: str) -> str:
        """Return the pseudonym for an ``account@domain`` handle.

        The instance domain is preserved so that instance-level joins keep
        working on anonymised data.
        """
        username, sep, domain = handle.partition("@")
        digest = hashlib.sha256(f"{self._salt}:{username}@{domain}".encode("utf-8")).hexdigest()
        token = digest[: self._digest_size]
        if not sep:
            return token
        return f"{token}@{domain}"

    def anonymise_toot(self, record: TootRecord) -> TootRecord:
        """Return a copy of a toot record with pseudonymised author fields."""
        pseudonym = self.pseudonym(record.account)
        username = pseudonym.split("@", 1)[0]
        return replace(
            record,
            account=pseudonym,
            url=f"https://{record.author_domain}/@{username}/{record.toot_id}",
        )

    def anonymise_toots(self, records: Iterable[TootRecord]) -> list[TootRecord]:
        """Anonymise a collection of toot records."""
        return [self.anonymise_toot(record) for record in records]

    def anonymise_edge(self, edge: FollowEdgeRecord) -> FollowEdgeRecord:
        """Return a copy of a follow edge with pseudonymised endpoints."""
        return FollowEdgeRecord(
            follower=self.pseudonym(edge.follower),
            followed=self.pseudonym(edge.followed),
        )

    def anonymise_edges(self, edges: Iterable[FollowEdgeRecord]) -> list[FollowEdgeRecord]:
        """Anonymise a collection of follow edges."""
        return [self.anonymise_edge(edge) for edge in edges]
