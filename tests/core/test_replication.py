"""Tests for toot replication strategies and availability curves (Figs. 15-16)."""

from __future__ import annotations

import pytest

from repro.core import replication
from repro.crawler.toot_crawler import TootRecord
from repro.datasets.graphs import GraphDataset
from repro.datasets.toots import TootsDataset
from repro.errors import AnalysisError


def record(toot_id: int, author: str, home: str) -> TootRecord:
    return TootRecord(
        toot_id=toot_id,
        url=f"https://{home}/@{author}/{toot_id}",
        account=f"{author}@{home}",
        author_domain=home,
        collected_from=home,
        created_at=toot_id,
    )


DOMAINS = ["big.example", "mid.example", "small.example", "spare.example"]


def make_toots() -> TootsDataset:
    records = (
        [record(i, "star", "big.example") for i in range(1, 11)]
        + [record(i, "mid", "mid.example") for i in range(11, 16)]
        + [record(16, "tiny", "small.example")]
    )
    return TootsDataset(records=records)


def make_graphs() -> GraphDataset:
    edges = [
        # star has followers on mid and small
        ("mid@mid.example", "star@big.example"),
        ("tiny@small.example", "star@big.example"),
        # mid has one follower on big
        ("star@big.example", "mid@mid.example"),
        # tiny has no followers at all
        ("tiny@small.example", "mid@mid.example"),
    ]
    return GraphDataset.from_edges(edges)


class TestPlacementStrategies:
    def test_no_replication_places_only_on_home(self):
        placements = replication.no_replication(make_toots())
        assert len(placements) == 16
        assert all(len(holders) == 1 for holders in placements.placements.values())
        summary = placements.replication_summary()
        assert summary["share_without_replica"] == 1.0
        assert summary["mean_replicas"] == 0.0

    def test_subscription_replication_uses_follower_domains(self):
        placements = replication.subscription_replication(make_toots(), make_graphs())
        star_toot = placements.placements["https://big.example/@star/1"]
        assert star_toot == {"big.example", "mid.example", "small.example"}
        tiny_toot = placements.placements["https://small.example/@tiny/16"]
        assert tiny_toot == {"small.example"}
        summary = placements.replication_summary()
        assert summary["share_without_replica"] == pytest.approx(1 / 16)

    def test_random_replication_counts(self):
        placements = replication.random_replication(make_toots(), DOMAINS, n_replicas=2, seed=3)
        for holders in placements.placements.values():
            # home + 2 replicas, minus any overlap with the home instance
            assert 2 <= len(holders) <= 3

    def test_random_replication_zero_replicas(self):
        placements = replication.random_replication(make_toots(), DOMAINS, n_replicas=0, seed=3)
        assert all(len(holders) == 1 for holders in placements.placements.values())

    def test_random_replication_reproducible(self):
        first = replication.random_replication(make_toots(), DOMAINS, 2, seed=5)
        second = replication.random_replication(make_toots(), DOMAINS, 2, seed=5)
        assert first.placements == second.placements

    def test_weighted_replication_prefers_heavy_domains(self):
        weights = {"spare.example": 100.0, "mid.example": 0.01, "small.example": 0.01, "big.example": 0.01}
        placements = replication.random_replication(
            make_toots(), DOMAINS, n_replicas=1, seed=7, weights=weights
        )
        spare_hits = sum(
            1 for holders in placements.placements.values() if "spare.example" in holders
        )
        assert spare_hits >= len(placements) * 0.8

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            replication.random_replication(make_toots(), [], 1)
        with pytest.raises(AnalysisError):
            replication.random_replication(make_toots(), DOMAINS, -1)
        with pytest.raises(AnalysisError):
            replication.random_replication(
                make_toots(), DOMAINS, 1, weights={d: 0.0 for d in DOMAINS}
            )


class TestAvailabilityCurves:
    def test_no_replication_loses_toots_with_home_instance(self):
        placements = replication.no_replication(make_toots())
        curve = replication.availability_under_instance_removal(
            placements, ["big.example", "mid.example"], steps=2
        )
        assert curve[0].availability == 1.0
        assert curve[1].availability == pytest.approx(6 / 16)
        assert curve[2].availability == pytest.approx(1 / 16)

    def test_subscription_replication_survives_home_failure(self):
        placements = replication.subscription_replication(make_toots(), make_graphs())
        curve = replication.availability_under_instance_removal(
            placements, ["big.example"], steps=1
        )
        # star's toots survive on mid and small
        assert curve[1].availability == 1.0

    def test_as_removal_curve(self):
        placements = replication.no_replication(make_toots())
        asn_of = {
            "big.example": 1,
            "mid.example": 1,
            "small.example": 2,
            "spare.example": 3,
        }
        curve = replication.availability_under_as_removal(placements, asn_of, [1, 2], steps=2)
        assert curve[1].availability == pytest.approx(1 / 16)
        assert curve[2].availability == 0.0

    def test_availability_at_and_compare(self):
        placements = replication.no_replication(make_toots())
        curve = replication.availability_under_instance_removal(
            placements, ["big.example"], steps=1
        )
        assert replication.availability_at(curve, 0) == 1.0
        assert replication.availability_at(curve, 5) == curve[-1].availability
        comparison = replication.compare_strategies({"no-rep": curve}, removed=1)
        assert comparison["no-rep"] == curve[1].availability
        with pytest.raises(AnalysisError):
            replication.availability_at([], 1)

    def test_validation(self):
        placements = replication.no_replication(make_toots())
        with pytest.raises(AnalysisError):
            replication.availability_under_instance_removal(placements, ["x"], steps=0)
        with pytest.raises(AnalysisError):
            replication.availability_under_as_removal(placements, {}, [1], steps=0)

    def test_random_replication_beats_no_replication(self):
        toots = make_toots()
        ranking = ["big.example", "mid.example"]
        no_rep = replication.availability_under_instance_removal(
            replication.no_replication(toots), ranking, steps=2
        )
        random_rep = replication.availability_under_instance_removal(
            replication.random_replication(toots, DOMAINS, 2, seed=11), ranking, steps=2
        )
        assert random_rep[-1].availability >= no_rep[-1].availability

    def test_pipeline_replication_ordering(self, datasets):
        """On the generated fediverse: random-rep >= subscription-rep >= no-rep."""
        from repro.core import resilience

        toots = datasets.toots
        graphs = datasets.graphs
        ranking = resilience.rank_instances(
            graphs.federation_graph,
            toots_per_instance=toots.toots_per_instance(),
            by="toots",
        )
        steps = min(10, len(ranking))
        curves = {
            "none": replication.availability_under_instance_removal(
                replication.no_replication(toots), ranking, steps=steps
            ),
            "subscription": replication.availability_under_instance_removal(
                replication.subscription_replication(toots, graphs), ranking, steps=steps
            ),
            "random3": replication.availability_under_instance_removal(
                replication.random_replication(
                    toots, datasets.instances.domains(), 3, seed=1
                ),
                ranking,
                steps=steps,
            ),
        }
        comparison = replication.compare_strategies(curves, removed=steps)
        assert comparison["subscription"] >= comparison["none"]
        assert comparison["random3"] >= comparison["subscription"] - 0.05
