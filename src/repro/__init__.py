"""repro — a reproduction toolkit for "Challenges in the Decentralised Web:
The Mastodon Case" (Raman et al., IMC 2019).

The package is organised in layers:

* :mod:`repro.fediverse` — a self-contained Mastodon/Pleroma simulator
  (instances, users, toots, federation, hosting, certificates, outages)
  standing in for the live network the paper measured;
* :mod:`repro.crawler` — the measurement tooling (instance monitor, toot
  crawler, follower-graph crawler) speaking to instances over a simulated
  HTTP transport;
* :mod:`repro.datasets` — the paper's three datasets plus the Twitter
  baselines, built from crawler output;
* :mod:`repro.core` — the analyses behind every figure and table;
* :mod:`repro.engine` — the sparse-matrix failure-simulation engine the
  resilience/replication hot paths (Figs. 11-16) dispatch through;
* :mod:`repro.reporting` — table/figure rendering and the experiment index.

Quick start::

    from repro import build_scenario, collect_datasets

    network = build_scenario("small", seed=7)
    datasets = collect_datasets(network)
    print(datasets.instances.total_users(), "users on", len(datasets.instances), "instances")
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.fediverse import FediverseNetwork, ScenarioConfig, ScenarioGenerator, build_scenario
from repro.crawler import (
    FollowerGraphCrawler,
    InstanceMonitor,
    SimulatedTransport,
    TootCrawler,
)
from repro.datasets import GraphDataset, InstancesDataset, TootsDataset, TwitterBaselines

__version__ = "1.0.0"

__all__ = [
    "CollectedDatasets",
    "FediverseNetwork",
    "GraphDataset",
    "InstancesDataset",
    "ReproError",
    "ScenarioConfig",
    "ScenarioGenerator",
    "TootsDataset",
    "TwitterBaselines",
    "__version__",
    "build_scenario",
    "collect_datasets",
]


@dataclass
class CollectedDatasets:
    """The three paper datasets collected from one simulated fediverse."""

    instances: InstancesDataset
    toots: TootsDataset
    graphs: GraphDataset
    network: FediverseNetwork


def collect_datasets(
    network: FediverseNetwork,
    monitor_interval_minutes: int = 24 * 60,
    crawl_threads: int = 8,
) -> CollectedDatasets:
    """Run the full measurement pipeline against a simulated fediverse.

    This is the one-call equivalent of the paper's data collection: poll
    every instance's API across the observation window, crawl every
    federated timeline, scrape every follower list, and assemble the
    datasets the analyses consume.

    ``monitor_interval_minutes`` defaults to daily probes (the paper used
    five minutes over fifteen months; the analyses only need the relative
    resolution, and daily probing keeps the default pipeline fast).
    """
    transport = SimulatedTransport(network)
    monitor = InstanceMonitor(transport, network.domains(), monitor_interval_minutes)
    log = monitor.run()
    instances = InstancesDataset.build(network, log)

    toot_crawler = TootCrawler(transport, threads=crawl_threads)
    toots = TootsDataset.from_crawl(toot_crawler.crawl())

    graph_crawler = FollowerGraphCrawler(transport, threads=crawl_threads)
    graphs = GraphDataset.from_crawl(graph_crawler.crawl())

    return CollectedDatasets(instances=instances, toots=toots, graphs=graphs, network=network)
