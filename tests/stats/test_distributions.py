"""Tests for ECDFs, heavy-tailed samplers and concentration measures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.stats.distributions import (
    ECDF,
    fit_power_law_exponent,
    lorenz_curve,
    pareto_share,
    sample_lognormal,
    sample_power_law,
    sample_zipf_shares,
)


class TestECDF:
    def test_basic_evaluation(self):
        cdf = ECDF([1, 2, 3, 4])
        assert cdf.evaluate(0) == 0.0
        assert cdf.evaluate(2) == 0.5
        assert cdf.evaluate(4) == 1.0
        assert cdf.survival(2) == 0.5

    def test_quantile(self):
        cdf = ECDF(range(101))
        assert cdf.quantile(0.5) == pytest.approx(50)
        with pytest.raises(AnalysisError):
            cdf.quantile(1.5)

    def test_series_monotone(self):
        xs, ys = ECDF([3, 1, 2]).series()
        assert xs == [1, 2, 3]
        assert ys == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            ECDF([])

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200))
    def test_evaluate_bounded_and_monotone(self, sample):
        cdf = ECDF(sample)
        points = sorted(sample)
        values = [cdf.evaluate(x) for x in points]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert all(a <= b for a, b in zip(values, values[1:]))


class TestPowerLawSampling:
    def test_respects_bounds(self):
        rng = np.random.default_rng(1)
        sample = sample_power_law(rng, 5000, exponent=2.0, minimum=2.0, maximum=50.0)
        assert sample.min() >= 2.0
        assert sample.max() <= 50.0

    def test_unbounded_minimum(self):
        rng = np.random.default_rng(1)
        sample = sample_power_law(rng, 1000, exponent=2.5, minimum=1.0)
        assert sample.min() >= 1.0

    def test_zero_size(self):
        rng = np.random.default_rng(1)
        assert sample_power_law(rng, 0).size == 0

    def test_invalid_parameters(self):
        rng = np.random.default_rng(1)
        with pytest.raises(AnalysisError):
            sample_power_law(rng, 10, exponent=1.0)
        with pytest.raises(AnalysisError):
            sample_power_law(rng, 10, minimum=0)
        with pytest.raises(AnalysisError):
            sample_power_law(rng, 10, minimum=5, maximum=4)
        with pytest.raises(AnalysisError):
            sample_power_law(rng, -1)

    def test_fit_recovers_exponent(self):
        rng = np.random.default_rng(7)
        sample = sample_power_law(rng, 20000, exponent=2.5, minimum=1.0)
        fitted = fit_power_law_exponent(sample, minimum=1.0)
        assert 2.3 < fitted < 2.7

    def test_fit_rejects_empty(self):
        with pytest.raises(AnalysisError):
            fit_power_law_exponent([])
        with pytest.raises(AnalysisError):
            fit_power_law_exponent([1.0], minimum=5.0)


class TestLognormal:
    def test_median_close_to_target(self):
        rng = np.random.default_rng(3)
        sample = sample_lognormal(rng, 20000, median=10.0, sigma=1.0)
        assert 9.0 < float(np.median(sample)) < 11.0

    def test_invalid_parameters(self):
        rng = np.random.default_rng(3)
        with pytest.raises(AnalysisError):
            sample_lognormal(rng, 10, median=0, sigma=1)
        with pytest.raises(AnalysisError):
            sample_lognormal(rng, 10, median=1, sigma=0)


class TestZipfShares:
    def test_shares_sum_to_one_and_decrease(self):
        shares = sample_zipf_shares(50, exponent=1.2)
        assert shares.sum() == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(shares, shares[1:]))

    def test_invalid_size(self):
        with pytest.raises(AnalysisError):
            sample_zipf_shares(0)


class TestConcentration:
    def test_pareto_share_uniform(self):
        assert pareto_share([1] * 100, 0.10) == pytest.approx(0.10)

    def test_pareto_share_extreme(self):
        sample = [1000] + [1] * 99
        assert pareto_share(sample, 0.01) == pytest.approx(1000 / 1099)

    def test_pareto_share_invalid(self):
        with pytest.raises(AnalysisError):
            pareto_share([1, 2], 0.0)
        with pytest.raises(AnalysisError):
            pareto_share([], 0.5)

    def test_lorenz_curve_shape(self):
        xs, ys = lorenz_curve([1, 1, 1, 1])
        assert xs[0] == 0.0 and xs[-1] == 1.0
        assert ys == pytest.approx(xs)

    def test_lorenz_rejects_negative(self):
        with pytest.raises(AnalysisError):
            lorenz_curve([-1, 2])

    @settings(max_examples=50)
    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=100))
    def test_pareto_share_monotone_in_fraction(self, sample):
        small = pareto_share(sample, 0.1)
        large = pareto_share(sample, 0.5)
        assert 0.0 <= small <= large <= 1.0
