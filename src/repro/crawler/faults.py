"""Deterministic fault injection: the chaos harness behind the crawlers.

The paper's crawlers ran against a live fediverse where instances time
out, reset connections, rate-limit, serve truncated pages, and die
mid-crawl.  :class:`FaultyTransport` reproduces those failure modes as a
decorator over :class:`~repro.crawler.http.SimulatedTransport`: before a
request reaches the simulated instance, a seeded :class:`FaultInjector`
may raise one of the transient errors a real HTTP client would surface
(timeouts, connection resets, 5xx, 429-with-Retry-After, truncated or
malformed bodies, multi-request instance death).

Determinism is the whole point — the injector keeps one RNG stream *per
instance domain*, seeded from ``(seed, domain)``, so the fault sequence
an instance experiences depends only on the seed and on how many
requests that instance has served, never on thread interleaving.  The
same seed therefore produces the same chaos whether the crawl runs on
one thread or ten, which is what lets the differential suite assert that
a fault-injected crawl with retries enabled produces a byte-identical
corpus to the fault-free crawl.

Truncated/malformed pages are raised at the transport boundary rather
than returned as corrupt payloads: they model the client-side parse
(``json.JSONDecodeError`` on a half-closed socket) failing, which is the
point where a real crawler detects them.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence
from urllib.parse import urlparse

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    ConnectionLostError,
    CrawlBlockedError,
    HTTPError,
    InstanceUnavailableError,
    MalformedPageError,
    RateLimitError,
    RequestTimeoutError,
    ServerError,
    TruncatedPageError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crawler.http import HTTPResponse
    from repro.fediverse.uptime import AvailabilitySchedule

#: The failure-taxonomy labels :func:`classify_error` can return.
FAILURE_CLASSES = (
    "offline",
    "blocked",
    "not_found",
    "rate_limited",
    "timeout",
    "connection_reset",
    "server_error",
    "truncated_page",
    "malformed_page",
    "circuit_open",
    "http_error",
    "other",
)


def classify_error(error: BaseException) -> str:
    """Map a crawl failure onto the coverage report's failure taxonomy.

    Subclass checks run most-specific first, so e.g. an injected 429
    classifies as ``rate_limited`` rather than the generic
    ``http_error``; anything outside the crawl hierarchy is ``other``.
    """
    if isinstance(error, CircuitOpenError):
        return "circuit_open"
    if isinstance(error, InstanceUnavailableError):
        return "offline"
    if isinstance(error, CrawlBlockedError):
        return "blocked"
    if isinstance(error, RateLimitError):
        return "rate_limited"
    if isinstance(error, ServerError):
        return "server_error"
    if isinstance(error, RequestTimeoutError):
        return "timeout"
    if isinstance(error, ConnectionLostError):
        return "connection_reset"
    if isinstance(error, TruncatedPageError):
        return "truncated_page"
    if isinstance(error, MalformedPageError):
        return "malformed_page"
    if isinstance(error, HTTPError):
        return "not_found" if error.status == 404 else "http_error"
    return "other"


@dataclass(frozen=True, slots=True)
class FaultRates:
    """Per-request probabilities of each injected failure mode.

    The six rates are independent draws from one uniform variate per
    request (cumulative thresholds), so their sum must stay at or below
    one.  ``retry_after`` is the Retry-After an injected 429 carries and
    ``death_requests`` bounds how many subsequent requests a mid-crawl
    instance death swallows (when no empirical outage durations are
    supplied to the injector).
    """

    timeout: float = 0.0
    connection_reset: float = 0.0
    server_error: float = 0.0
    rate_limit: float = 0.0
    truncated_page: float = 0.0
    malformed_page: float = 0.0
    instance_death: float = 0.0
    retry_after: float = 0.01
    death_requests: tuple[int, int] = (2, 6)

    _FAULT_FIELDS = (
        "timeout",
        "connection_reset",
        "server_error",
        "rate_limit",
        "truncated_page",
        "malformed_page",
        "instance_death",
    )

    def __post_init__(self) -> None:
        for name in self._FAULT_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"fault rate {name!r} must be in [0, 1]")
        if self.total > 1.0:
            raise ConfigurationError(
                f"fault rates sum to {self.total:.3f}; at most one fault per request"
            )
        if self.retry_after < 0:
            raise ConfigurationError("retry_after cannot be negative")
        lo, hi = self.death_requests
        if lo < 1 or hi < lo:
            raise ConfigurationError("death_requests must be a (min>=1, max>=min) pair")

    @property
    def total(self) -> float:
        """The per-request probability of *any* injected fault."""
        return float(sum(getattr(self, name) for name in self._FAULT_FIELDS))

    @classmethod
    def uniform(cls, rate: float, **overrides: object) -> "FaultRates":
        """Spread a total fault rate evenly across all seven failure modes."""
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("total fault rate must be in [0, 1]")
        share = rate / len(cls._FAULT_FIELDS)
        values: dict[str, object] = {name: share for name in cls._FAULT_FIELDS}
        values.update(overrides)
        return cls(**values)  # type: ignore[arg-type]


class _DomainFaults:
    """The per-domain fault stream: one RNG, one request counter."""

    __slots__ = ("rng", "requests", "dead_for")

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.requests = 0
        self.dead_for = 0


class FaultInjector:
    """Draws seeded, per-domain fault decisions for a chaotic transport.

    Each domain owns an independent ``random.Random`` stream seeded from
    ``sha256(seed, domain)``, so injections are a pure function of
    ``(seed, domain, request index)`` — thread scheduling cannot change
    them.  ``counts`` tallies every injected fault by taxonomy label.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: FaultRates | None = None,
        death_durations: Sequence[int] | None = None,
    ) -> None:
        self.seed = int(seed)
        self.rates = rates if rates is not None else FaultRates()
        if death_durations is not None:
            pool = [int(d) for d in death_durations]
            if not pool or any(d < 1 for d in pool):
                raise ConfigurationError(
                    "death_durations must be a non-empty sequence of positive request counts"
                )
            self.death_durations: tuple[int, ...] | None = tuple(pool)
        else:
            self.death_durations = None
        self._lock = threading.Lock()
        self._domains: dict[str, _DomainFaults] = {}
        self.counts: dict[str, int] = {}

    @classmethod
    def from_schedule(
        cls,
        schedule: "AvailabilitySchedule",
        seed: int = 0,
        rates: FaultRates | None = None,
        requests_per_minute: float = 0.01,
        max_death_requests: int = 25,
    ) -> "FaultInjector":
        """Bootstrap death durations from a scenario's outage empirics.

        Every merged outage interval in the ground-truth
        :class:`~repro.fediverse.uptime.AvailabilitySchedule` becomes one
        candidate death duration, converted from minutes to "requests the
        instance stays dead" via ``requests_per_minute`` and clipped to
        ``max_death_requests`` so a 15-month abandonment does not stall a
        retried crawl forever.  Falls back to the configured
        ``death_requests`` range when the schedule has no outages.
        """
        durations = [
            min(max_death_requests, max(1, round(window.duration * requests_per_minute)))
            for domain in schedule.domains()
            for window in schedule.merged_outage_windows(domain)
        ]
        return cls(seed=seed, rates=rates, death_durations=durations or None)

    def _state(self, domain: str) -> _DomainFaults:
        state = self._domains.get(domain)
        if state is None:
            digest = hashlib.sha256(f"{self.seed}:{domain}".encode("utf-8")).digest()
            state = self._domains[domain] = _DomainFaults(
                random.Random(int.from_bytes(digest[:8], "big"))
            )
        return state

    def _count(self, label: str) -> None:
        self.counts[label] = self.counts.get(label, 0) + 1

    def inject(self, domain: str, url: str) -> None:
        """Raise the injected fault for this request, if the dice say so."""
        rates = self.rates
        with self._lock:
            state = self._state(domain)
            state.requests += 1
            if state.dead_for > 0:
                state.dead_for -= 1
                self._count("connection_reset")
                raise ConnectionLostError(url)
            if rates.total <= 0.0:
                return
            draw = state.rng.random()
            for name in FaultRates._FAULT_FIELDS:
                rate = getattr(rates, name)
                if draw < rate:
                    self._raise_fault(name, state, url)
                draw -= rate

    def _raise_fault(self, name: str, state: _DomainFaults, url: str) -> None:
        if name == "timeout":
            self._count("timeout")
            raise RequestTimeoutError(url)
        if name == "connection_reset":
            self._count("connection_reset")
            raise ConnectionLostError(url)
        if name == "server_error":
            self._count("server_error")
            raise ServerError(url, status=state.rng.choice((500, 502, 503)))
        if name == "rate_limit":
            self._count("rate_limited")
            raise RateLimitError(url, retry_after=self.rates.retry_after)
        if name == "truncated_page":
            self._count("truncated_page")
            raise TruncatedPageError(url)
        if name == "malformed_page":
            self._count("malformed_page")
            raise MalformedPageError(url)
        # instance death: unreachable for the next N requests as well
        if self.death_durations is not None:
            duration = state.rng.choice(self.death_durations)
        else:
            duration = state.rng.randint(*self.rates.death_requests)
        state.dead_for = duration - 1
        self._count("connection_reset")
        raise ConnectionLostError(url)

    def injected_total(self) -> int:
        """How many requests were failed by injection so far."""
        return sum(self.counts.values())


class FaultyTransport:
    """A chaos decorator over a transport: same GET surface, injected faults.

    Wraps any object with the :class:`~repro.crawler.http.SimulatedTransport`
    interface; requests that survive injection pass straight through, so
    payloads (and therefore everything built from them) are identical to
    the fault-free transport's.
    """

    def __init__(self, inner, injector: FaultInjector) -> None:
        self._inner = inner
        self.injector = injector

    @property
    def network(self):
        """The simulated fediverse behind the wrapped transport."""
        return self._inner.network

    @property
    def stats(self):
        """The wrapped transport's request counters (injected faults excluded)."""
        return self._inner.stats

    def known_domains(self) -> list[str]:
        """Every instance domain the wrapped transport can route to."""
        return self._inner.known_domains()

    def reset_budget(self, domain: str | None = None) -> None:
        """Reset the wrapped transport's per-domain request budget."""
        self._inner.reset_budget(domain)

    def get(self, url: str, at_minute: int | None = None) -> "HTTPResponse":
        """Perform a GET, first giving the injector a chance to fail it."""
        self.injector.inject(urlparse(url).netloc, url)
        return self._inner.get(url, at_minute=at_minute)
