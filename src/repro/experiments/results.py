"""Structured experiment results: tables, series, scalars and metadata.

Every registered experiment runner returns an :class:`ExperimentResult` —
the machine-readable form of one reproduced figure or table.  The result
renders to the same fixed-width text the benchmarks print
(:func:`repro.reporting.tables.format_table`) and round-trips through a
plain-JSON dictionary, so the CLI's ``--json`` export can be parsed back
into the exact same object.
"""

from __future__ import annotations

import json
import numbers
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import AnalysisError
from repro.reporting.tables import format_table

#: The JSON schema identifier stamped into every exported result.
RESULT_SCHEMA = "repro.experiment_result/v1"

Scalar = bool | int | float | str | None


def coerce_scalar(value: Any) -> Scalar:
    """Coerce a cell/scalar to a JSON-safe plain-Python value.

    Numpy integers/floats (and any other :mod:`numbers` registrants) are
    converted to native ``int``/``float``; booleans stay booleans;
    everything else must already be a string or ``None``.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    raise AnalysisError(
        f"cell value {value!r} of type {type(value).__name__} is not JSON-representable"
    )


@dataclass(frozen=True)
class ResultTable:
    """One rendered table of an experiment result (headers + rows)."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[Scalar, ...], ...]

    @classmethod
    def build(
        cls,
        title: str,
        headers: Sequence[str],
        rows: Iterable[Sequence[Any]],
    ) -> "ResultTable":
        """Validate and normalise ``rows`` into an immutable table."""
        header_tuple = tuple(str(h) for h in headers)
        if not header_tuple:
            raise AnalysisError("a result table needs at least one column")
        normalised: list[tuple[Scalar, ...]] = []
        for row in rows:
            if len(row) != len(header_tuple):
                raise AnalysisError(
                    f"table {title!r}: row width {len(row)} does not match "
                    f"header width {len(header_tuple)}"
                )
            normalised.append(tuple(coerce_scalar(cell) for cell in row))
        return cls(title=title, headers=header_tuple, rows=tuple(normalised))

    def render_text(self) -> str:
        """The fixed-width text form (what the benchmarks print)."""
        return format_table(self.headers, [list(row) for row in self.rows], title=self.title)

    def to_dict(self) -> dict[str, Any]:
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResultTable":
        return cls.build(payload["title"], payload["headers"], payload["rows"])


@dataclass(frozen=True)
class ResultSeries:
    """One named (x, y) data series of an experiment result."""

    name: str
    x: tuple[float, ...]
    y: tuple[float, ...]
    x_label: str = "x"
    y_label: str = "y"

    @classmethod
    def build(
        cls,
        name: str,
        x: Sequence[float],
        y: Sequence[float],
        x_label: str = "x",
        y_label: str = "y",
    ) -> "ResultSeries":
        xs = tuple(float(value) for value in x)
        ys = tuple(float(value) for value in y)
        if len(xs) != len(ys):
            raise AnalysisError(f"series {name!r}: x and y lengths differ")
        return cls(name=name, x=xs, y=ys, x_label=x_label, y_label=y_label)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "x": list(self.x),
            "y": list(self.y),
            "x_label": self.x_label,
            "y_label": self.y_label,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResultSeries":
        return cls.build(
            payload["name"],
            payload["x"],
            payload["y"],
            x_label=payload.get("x_label", "x"),
            y_label=payload.get("y_label", "y"),
        )


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one experiment run produced, in structured form."""

    experiment_id: str
    title: str
    tables: tuple[ResultTable, ...] = ()
    series: tuple[ResultSeries, ...] = ()
    scalars: Mapping[str, Scalar] = field(default_factory=dict)
    metadata: Mapping[str, Scalar] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        experiment_id: str,
        title: str,
        *,
        tables: Sequence[ResultTable] = (),
        series: Sequence[ResultSeries] = (),
        scalars: Mapping[str, Any] | None = None,
        metadata: Mapping[str, Any] | None = None,
    ) -> "ExperimentResult":
        return cls(
            experiment_id=experiment_id,
            title=title,
            tables=tuple(tables),
            series=tuple(series),
            scalars={key: coerce_scalar(value) for key, value in (scalars or {}).items()},
            metadata={key: coerce_scalar(value) for key, value in (metadata or {}).items()},
        )

    def scalar(self, name: str) -> Scalar:
        """Look a headline scalar up by name."""
        try:
            return self.scalars[name]
        except KeyError as exc:
            raise AnalysisError(
                f"experiment {self.experiment_id!r} has no scalar {name!r} "
                f"(available: {', '.join(sorted(self.scalars)) or 'none'})"
            ) from exc

    def get_series(self, name: str) -> ResultSeries:
        """Look a data series up by name."""
        for entry in self.series:
            if entry.name == name:
                return entry
        raise AnalysisError(f"experiment {self.experiment_id!r} has no series {name!r}")

    def with_metadata(self, extra: Mapping[str, Any]) -> "ExperimentResult":
        """A copy with ``extra`` merged under the existing metadata."""
        merged = {key: coerce_scalar(value) for key, value in extra.items()}
        merged.update(self.metadata)
        return replace(self, metadata=merged)

    def render_text(self) -> str:
        """Human-readable form: every table, series summary and scalar."""
        blocks = [f"[{self.experiment_id}] {self.title}"]
        blocks.extend(table.render_text() for table in self.tables)
        if self.series:
            blocks.append(
                format_table(
                    ["series", "points", "x", "y"],
                    [[s.name, len(s.x), s.x_label, s.y_label] for s in self.series],
                    title=f"{self.experiment_id} — data series",
                )
            )
        if self.scalars:
            blocks.append(
                format_table(
                    ["scalar", "value"],
                    [[key, value] for key, value in self.scalars.items()],
                    title=f"{self.experiment_id} — headline scalars",
                )
            )
        return "\n\n".join(blocks)

    def to_json_dict(self) -> dict[str, Any]:
        """The plain-dictionary form written by the CLI's ``--json`` export."""
        return {
            "schema": RESULT_SCHEMA,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "tables": [table.to_dict() for table in self.tables],
            "series": [entry.to_dict() for entry in self.series],
            "scalars": dict(self.scalars),
            "metadata": dict(self.metadata),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent)

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        schema = payload.get("schema")
        if schema != RESULT_SCHEMA:
            raise AnalysisError(f"unsupported result schema: {schema!r}")
        return cls.build(
            payload["experiment_id"],
            payload["title"],
            tables=[ResultTable.from_dict(entry) for entry in payload.get("tables", ())],
            series=[ResultSeries.from_dict(entry) for entry in payload.get("series", ())],
            scalars=payload.get("scalars"),
            metadata=payload.get("metadata"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_json_dict(json.loads(text))
