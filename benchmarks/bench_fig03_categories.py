"""Fig. 3 — distribution of instances, toots and users across categories.

Paper shape: tech/games/art dominate by number of instances; adult
instances are few (12.3%) but attract the most users (61%).

Thin timing wrapper over the ``fig3`` registry runner.
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_fig03_categories(benchmark, ctx):
    result = benchmark(lambda: get_experiment("fig3").run(ctx))
    emit("Fig. 3 — category shares", result.render_text())

    if "adult_instance_share" in result.scalars and "tech_instance_share" in result.scalars:
        # the paper's outlier: few adult instances, disproportionate users
        assert result.scalar("adult_instance_share") < result.scalar("tech_instance_share")
        assert result.scalar("adult_user_share") > result.scalar("adult_instance_share")
    assert result.scalar("largest_instance_share") >= result.scalar("smallest_instance_share")
    # only a minority of instances self-declare categories (paper: 697/4328)
    assert result.scalar("instance_coverage") < 0.5
