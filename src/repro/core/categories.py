"""Instance categories and activity policies (Section 4.2, Figs. 3-4).

Only a minority of instances self-declare a category, but those tags
reveal how administrator interest (many tech/journalism instances) and
user interest (adult/anime instances attract disproportionate users)
diverge.  Activity policies show which behaviours federated communities
allow or prohibit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.datasets.instances import InstancesDataset


@dataclass(frozen=True, slots=True)
class CategoryShare:
    """Share of tagged instances/users/toots associated with one category."""

    category: str
    instances: int
    users: int
    toots: int
    instance_share: float
    user_share: float
    toot_share: float


@dataclass(frozen=True, slots=True)
class ActivityShare:
    """Instances/users/toots that prohibit or allow one activity type."""

    activity: str
    prohibiting_instances: int
    prohibiting_users: int
    prohibiting_toots: int
    allowing_instances: int
    allowing_users: int
    allowing_toots: int
    prohibit_instance_share: float
    allow_instance_share: float
    allow_user_share: float
    allow_toot_share: float


def tagged_domains(dataset: InstancesDataset) -> list[str]:
    """Domains that self-declare at least one category."""
    return [d for d in dataset.domains() if dataset.metadata_for(d).is_tagged]


def tagging_coverage(dataset: InstancesDataset) -> dict[str, float]:
    """Fraction of instances, users and toots covered by category tags.

    The paper reports 697/4,328 instances tagged, covering 13.6% of users
    and 14.4% of toots.
    """
    users = dataset.users_per_instance()
    toots = dataset.toots_per_instance()
    tagged = set(tagged_domains(dataset))
    total_users = sum(users.values())
    total_toots = sum(toots.values())
    total_instances = len(dataset.domains())
    if total_instances == 0:
        raise AnalysisError("the dataset contains no instances")
    return {
        "tagged_instances": len(tagged),
        "instance_coverage": len(tagged) / total_instances,
        "user_coverage": (
            sum(users[d] for d in tagged) / total_users if total_users else 0.0
        ),
        "toot_coverage": (
            sum(toots[d] for d in tagged) / total_toots if total_toots else 0.0
        ),
    }


def category_breakdown(dataset: InstancesDataset) -> list[CategoryShare]:
    """Per-category shares of tagged instances, users and toots (Fig. 3).

    Shares are relative to the tagged subset (as in the paper) and do not
    sum to one because instances may declare several categories.
    """
    users = dataset.users_per_instance()
    toots = dataset.toots_per_instance()
    tagged = tagged_domains(dataset)
    if not tagged:
        raise AnalysisError("no tagged instances in the dataset")
    tagged_users = sum(users[d] for d in tagged)
    tagged_toots = sum(toots[d] for d in tagged)

    per_category: dict[str, dict[str, int]] = {}
    for domain in tagged:
        metadata = dataset.metadata_for(domain)
        for category in metadata.categories:
            bucket = per_category.setdefault(
                category, {"instances": 0, "users": 0, "toots": 0}
            )
            bucket["instances"] += 1
            bucket["users"] += users[domain]
            bucket["toots"] += toots[domain]

    shares = [
        CategoryShare(
            category=category,
            instances=bucket["instances"],
            users=bucket["users"],
            toots=bucket["toots"],
            instance_share=bucket["instances"] / len(tagged),
            user_share=bucket["users"] / tagged_users if tagged_users else 0.0,
            toot_share=bucket["toots"] / tagged_toots if tagged_toots else 0.0,
        )
        for category, bucket in per_category.items()
    ]
    shares.sort(key=lambda share: share.instance_share, reverse=True)
    return shares


def activity_breakdown(dataset: InstancesDataset) -> list[ActivityShare]:
    """Per-activity prohibited/allowed shares (Fig. 4)."""
    users = dataset.users_per_instance()
    toots = dataset.toots_per_instance()
    tagged = [
        d
        for d in tagged_domains(dataset)
        if dataset.metadata_for(d).allowed_activities
        or dataset.metadata_for(d).prohibited_activities
        or dataset.metadata_for(d).allows_all_activities
    ]
    if not tagged:
        raise AnalysisError("no instances with activity policies in the dataset")
    tagged_users = sum(users[d] for d in tagged)
    tagged_toots = sum(toots[d] for d in tagged)

    activities: set[str] = set()
    for domain in tagged:
        metadata = dataset.metadata_for(domain)
        activities.update(metadata.allowed_activities)
        activities.update(metadata.prohibited_activities)

    shares: list[ActivityShare] = []
    for activity in sorted(activities):
        prohibiting = []
        allowing = []
        for domain in tagged:
            metadata = dataset.metadata_for(domain)
            if metadata.allows_all_activities:
                allowing.append(domain)
            elif activity in metadata.prohibited_activities:
                prohibiting.append(domain)
            elif activity in metadata.allowed_activities:
                allowing.append(domain)
        shares.append(
            ActivityShare(
                activity=activity,
                prohibiting_instances=len(prohibiting),
                prohibiting_users=sum(users[d] for d in prohibiting),
                prohibiting_toots=sum(toots[d] for d in prohibiting),
                allowing_instances=len(allowing),
                allowing_users=sum(users[d] for d in allowing),
                allowing_toots=sum(toots[d] for d in allowing),
                prohibit_instance_share=len(prohibiting) / len(tagged),
                allow_instance_share=len(allowing) / len(tagged),
                allow_user_share=(
                    sum(users[d] for d in allowing) / tagged_users if tagged_users else 0.0
                ),
                allow_toot_share=(
                    sum(toots[d] for d in allowing) / tagged_toots if tagged_toots else 0.0
                ),
            )
        )
    shares.sort(key=lambda share: share.prohibit_instance_share, reverse=True)
    return shares


def policy_coverage(dataset: InstancesDataset) -> dict[str, float]:
    """How many tagged instances allow everything / list prohibitions (Section 4.2)."""
    tagged = tagged_domains(dataset)
    if not tagged:
        raise AnalysisError("no tagged instances in the dataset")
    allow_all = sum(1 for d in tagged if dataset.metadata_for(d).allows_all_activities)
    with_prohibition = sum(
        1 for d in tagged if dataset.metadata_for(d).prohibited_activities
    )
    with_allowance = sum(1 for d in tagged if dataset.metadata_for(d).allowed_activities)
    return {
        "tagged": len(tagged),
        "allow_all_share": allow_all / len(tagged),
        "with_prohibition_share": with_prohibition / len(tagged),
        "with_allowance_share": with_allowance / len(tagged),
    }
