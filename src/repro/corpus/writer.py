"""The streaming write path: crawl pages → column spools → corpus shards.

:class:`CorpusWriter` is the page sink behind
:class:`~repro.crawler.toot_crawler.TootCrawler`: each crawled page is
encoded into per-instance column buffers the moment it arrives (no
``TootRecord`` objects), each instance's buffers seal to a spool on
disk when its crawl completes, and :meth:`CorpusWriter.finalise` merges
the spools — instances in sorted-domain order, pages in crawl order,
first-seen URL wins — into fixed-size ``.npz`` shards plus intern
tables and a JSON manifest.  That merge order reproduces the legacy
``TootCrawlResult.unique_toots()`` ordering exactly, so everything built
from the corpus (placements, curves) is bit-identical to the
record-list path.

Memory model: while crawling, only the pages of in-flight instances are
buffered (sealed spools live on disk); the merge streams each spool in
bounded row chunks, so at any moment it holds one chunk of decoded
strings, the URL intern table, and at most one pending shard of
columns — the full corpus never exists in memory, as Python objects or
otherwise.  Spools are a private format tuned for that: string columns
are stored as newline-joined UTF-8 bytes plus an ``int64`` offset
array (one ``.npy`` pair per column, written and freed one column at a
time), which is ~4× smaller than numpy's fixed-width unicode arrays
and sliceable by row range without decoding the rest.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from repro import obs
from repro.errors import DatasetError
from repro.corpus.columns import COLUMN_NAMES, CORPUS_SCHEMA
from repro.corpus.journal import JOURNAL_NAME, CrawlJournal

_log = logging.getLogger("repro.corpus.writer")

#: Default toots per shard: aligned with the engine's streaming default
#: (:data:`repro.engine.sharding.DEFAULT_SHARD_SIZE`) so corpus shard
#: boundaries flow straight through to sweep evaluation.
DEFAULT_CORPUS_SHARD_SIZE = 250_000

#: Rows per merge chunk: bounds the decoded-string working set while
#: keeping the per-chunk numpy/dict overhead amortised.
_MERGE_CHUNK_ROWS = 200_000

#: Spool/shard file names.
_MANIFEST = "manifest.json"
_TABLES = "tables.npz"
_SPOOL_DIR = "spool"
_QUARANTINE_DIR = "quarantine"

#: Suffix of in-flight writes (spool seals, shards, manifests); anything
#: carrying it after a crash is, by construction, a partial write.
_PARTIAL_SUFFIX = ".part"


def _atomic_savez(target: Path, **arrays: np.ndarray) -> None:
    """Write an ``.npz`` so it exists either completely or not at all.

    ``np.savez`` writes to an open file object (passing a path would
    append its own ``.npz`` suffix to the temp name); the final
    ``os.replace`` is atomic on POSIX, so a crash leaves only a
    ``*.part`` file that recovery quarantines.
    """
    tmp = target.with_name(target.name + _PARTIAL_SUFFIX)
    with open(tmp, "wb") as handle:
        np.savez(handle, **arrays)
    os.replace(tmp, target)


def _atomic_write_text(target: Path, text: str) -> None:
    """Write a text file via temp + atomic rename."""
    tmp = target.with_name(target.name + _PARTIAL_SUFFIX)
    tmp.write_text(text)
    os.replace(tmp, target)


def _quarantine(entry: Path, quarantine_dir: Path) -> None:
    """Move a partial write out of the way, never overwriting evidence."""
    quarantine_dir.mkdir(exist_ok=True)
    target = quarantine_dir / entry.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = quarantine_dir / f"{entry.name}.{suffix}"
    shutil.move(str(entry), str(target))

_SPOOL_VALUE_COLUMNS = (
    "toot_id",
    "created_minute",
    "is_boost",
    "sensitive",
    "media_attachments",
    "favourites",
)


def _string_array(values: list[str]) -> np.ndarray:
    return np.asarray(values, dtype=np.str_) if values else np.empty(0, dtype=np.str_)


def _write_strings(directory: Path, name: str, values: list[str]) -> None:
    """Persist a string column as newline-joined UTF-8 bytes + offsets.

    ``offsets`` has ``len(values) + 1`` entries; row ``i`` occupies
    ``data[offsets[i] : offsets[i + 1] - 1]`` (the trailing byte is the
    separator), so any row range decodes with one slice + split.
    """
    if not values:
        np.save(directory / f"{name}_bytes.npy", np.empty(0, dtype=np.uint8))
        np.save(directory / f"{name}_offsets.npy", np.zeros(1, dtype=np.int64))
        return
    data = np.frombuffer("\n".join(values).encode("utf-8"), dtype=np.uint8)
    separators = np.flatnonzero(data == ord("\n"))
    if separators.size != len(values) - 1:
        raise DatasetError(f"corpus {name} values must not contain newlines")
    offsets = np.empty(len(values) + 1, dtype=np.int64)
    offsets[0] = 0
    offsets[1:-1] = separators + 1
    offsets[-1] = data.size + 1
    np.save(directory / f"{name}_bytes.npy", data)
    np.save(directory / f"{name}_offsets.npy", offsets)


class _SpoolReader:
    """Row-range access to one sealed spool without loading it whole.

    ``length_column`` names the string column whose offset table defines
    the spool's row count (``url`` for toot spools, ``follower`` for the
    graph spools in :mod:`repro.corpus.graph`).
    """

    def __init__(self, directory: Path, length_column: str = "url") -> None:
        self._dir = directory
        self._bytes: dict[str, np.ndarray] = {}
        self._offsets: dict[str, np.ndarray] = {}
        self.n_rows = int(self._offset_table(length_column).size - 1)

    def _offset_table(self, name: str) -> np.ndarray:
        if name not in self._offsets:
            self._offsets[name] = np.load(self._dir / f"{name}_offsets.npy")
        return self._offsets[name]

    def strings(self, name: str, start: int, stop: int) -> list[str]:
        """Decode rows ``[start, stop)`` of a string column."""
        if stop <= start:
            return []
        offsets = self._offset_table(name)
        if name not in self._bytes:
            self._bytes[name] = np.load(self._dir / f"{name}_bytes.npy", mmap_mode="r")
        blob = self._bytes[name][int(offsets[start]) : int(offsets[stop]) - 1]
        parts = np.asarray(blob).tobytes().decode("utf-8").split("\n")
        if len(parts) != stop - start:
            raise DatasetError(f"corrupt spool string column {name!r} in {self._dir}")
        return parts

    def values(self, name: str) -> np.ndarray:
        return np.load(self._dir / f"{name}.npy")


class _Growable:
    """An amortised-append int64 vector (replication / home-toot counts)."""

    def __init__(self) -> None:
        self._data = np.zeros(1024, dtype=np.int64)
        self.size = 0

    def ensure(self, size: int) -> None:
        if size > self._data.size:
            capacity = max(size, 2 * self._data.size)
            grown = np.zeros(capacity, dtype=np.int64)
            grown[: self.size] = self._data[: self.size]
            self._data = grown
        self.size = max(self.size, size)

    def add_at(self, indices: np.ndarray) -> None:
        np.add.at(self._data, indices, 1)

    def values(self) -> np.ndarray:
        return self._data[: self.size].copy()


class _Interner:
    """First-seen string interning."""

    def __init__(self) -> None:
        self.code: dict[str, int] = {}
        self.values: list[str] = []

    def __len__(self) -> int:
        return len(self.values)

    def intern_one(self, value: str) -> int:
        known = self.code.get(value)
        if known is None:
            known = self.code[value] = len(self.values)
            self.values.append(value)
        return known


_SPOOL_DTYPES = dict(
    toot_id=np.int64,
    created_minute=np.int64,
    is_boost=np.bool_,
    sensitive=np.bool_,
    media_attachments=np.int32,
    favourites=np.int32,
)


class _InstanceSpool:
    """Column buffers for one instance's federated-timeline crawl.

    Two ingestion styles share the buffers: row-at-a-time (``add_page``
    / ``add_records``, the crawler path) appends scalars, while the
    vectorised path (``add_columns``, the scenario-to-corpus stream)
    appends whole numpy chunks for the value columns so no per-toot
    Python object is ever built.  Value rows are ordered scalar rows
    first, then chunk rows, so mixing the two styles within one instance
    is rejected to keep row order well-defined.
    """

    def __init__(self, domain: str) -> None:
        self.domain = domain
        self.url: list[str] = []
        self.account: list[str] = []
        self.author_domain: list[str] = []
        self.toot_id: list[int] = []
        self.created_minute: list[int] = []
        self.is_boost: list[bool] = []
        self.sensitive: list[bool] = []
        self.media_attachments: list[int] = []
        self.favourites: list[int] = []
        self.hashtag_flat: list[str] = []
        self.hashtag_lengths: list[int] = []
        self._value_chunks: dict[str, list[np.ndarray]] = {
            name: [] for name in _SPOOL_VALUE_COLUMNS
        }
        self._length_chunks: list[np.ndarray] = []
        self._mode: str | None = None

    def _enter_mode(self, mode: str) -> None:
        if self._mode is None:
            self._mode = mode
        elif self._mode != mode:
            raise DatasetError(
                f"instance {self.domain!r} mixes row and column spool ingestion"
            )

    def add_page(self, payload: Iterable[Mapping[str, Any]]) -> int:
        """Encode one timeline-API page (the raw payload dicts)."""
        self._enter_mode("rows")
        added = 0
        for item in payload:
            self.url.append(str(item["url"]))
            self.account.append(str(item["account"]))
            self.author_domain.append(str(item["account_domain"]))
            self.toot_id.append(int(item["id"]))
            self.created_minute.append(int(item["created_at"]))
            self.is_boost.append(item.get("reblog_of_id") is not None)
            self.sensitive.append(bool(item.get("sensitive", False)))
            self.media_attachments.append(int(item.get("media_attachments", 0)))
            self.favourites.append(int(item.get("favourites_count", 0)))
            tags = item.get("tags", ())
            self.hashtag_flat.extend(str(tag) for tag in tags)
            self.hashtag_lengths.append(len(tags))
            added += 1
        return added

    def add_records(self, records: Iterable["TootRecord"]) -> int:
        """Encode already-built :class:`TootRecord` objects (export paths)."""
        self._enter_mode("rows")
        added = 0
        for record in records:
            self.url.append(record.url)
            self.account.append(record.account)
            self.author_domain.append(record.author_domain)
            self.toot_id.append(record.toot_id)
            self.created_minute.append(record.created_at)
            self.is_boost.append(record.is_boost)
            self.sensitive.append(record.sensitive)
            self.media_attachments.append(record.media_attachments)
            self.favourites.append(record.favourites)
            self.hashtag_flat.extend(record.hashtags)
            self.hashtag_lengths.append(len(record.hashtags))
            added += 1
        return added

    def add_columns(
        self,
        *,
        urls: list[str],
        accounts: list[str],
        author_domains: list[str],
        toot_id: np.ndarray,
        created_minute: np.ndarray,
        is_boost: np.ndarray,
        sensitive: np.ndarray,
        media_attachments: np.ndarray,
        favourites: np.ndarray,
        hashtag_flat: list[str],
        hashtag_lengths: np.ndarray,
    ) -> int:
        """Append whole columns (the vectorised scenario-to-corpus path).

        String columns arrive as Python lists (the spool's string format
        joins them once at seal time); value columns arrive as numpy
        arrays and are buffered as chunks — no per-toot scalars.
        """
        self._enter_mode("columns")
        rows = len(urls)
        values = dict(
            toot_id=toot_id,
            created_minute=created_minute,
            is_boost=is_boost,
            sensitive=sensitive,
            media_attachments=media_attachments,
            favourites=favourites,
        )
        for name, column in values.items():
            array = np.asarray(column)
            if array.shape != (rows,):
                raise DatasetError(
                    f"column {name!r} has {array.shape[0] if array.ndim else 0} rows, "
                    f"expected {rows}"
                )
            self._value_chunks[name].append(array.astype(_SPOOL_DTYPES[name], copy=False))
        lengths = np.asarray(hashtag_lengths)
        if lengths.shape != (rows,):
            raise DatasetError("hashtag_lengths must have one entry per row")
        if int(lengths.sum()) != len(hashtag_flat):
            raise DatasetError("hashtag_lengths do not sum to len(hashtag_flat)")
        if len(accounts) != rows or len(author_domains) != rows:
            raise DatasetError("string columns must have one entry per row")
        self._length_chunks.append(lengths.astype(np.int64, copy=False))
        self.url.extend(urls)
        self.account.extend(accounts)
        self.author_domain.extend(author_domains)
        self.hashtag_flat.extend(hashtag_flat)
        return rows

    def seal(self, directory: Path) -> None:
        """Write the buffers to a spool directory, one column at a time.

        Each column's buffer is dropped as soon as it is on disk, so the
        seal never holds more than one encoded column beyond the raw
        page buffers.
        """
        directory.mkdir(parents=True, exist_ok=True)
        for name in _SPOOL_VALUE_COLUMNS:
            parts = [np.asarray(getattr(self, name), _SPOOL_DTYPES[name])]
            parts += self._value_chunks[name]
            column = parts[0] if len(parts) == 1 else np.concatenate(parts)
            np.save(directory / f"{name}.npy", column)
            setattr(self, name, [])
            self._value_chunks[name] = []
        length_parts = [np.asarray(self.hashtag_lengths, np.int64)] + self._length_chunks
        lengths = (
            length_parts[0] if len(length_parts) == 1 else np.concatenate(length_parts)
        )
        indptr = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        np.save(directory / "hashtag_indptr.npy", indptr)
        self.hashtag_lengths = []
        self._length_chunks = []
        for name in ("url", "account", "author_domain", "hashtag_flat"):
            _write_strings(directory, name, getattr(self, name))
            setattr(self, name, [])


class CorpusWriter:
    """Streams a toot crawl into an integer-coded columnar corpus.

    Use as the ``sink`` argument of :meth:`TootCrawler.crawl`; or feed it
    directly via :meth:`add_page` / :meth:`add_records` +
    :meth:`end_instance`, then :meth:`finalise` once every instance is
    in.  Page/record ingestion is thread-safe at instance granularity
    (each instance is crawled by exactly one worker).

    Crash safety: every page appends to an on-disk crawl journal, spools
    seal via temp + atomic rename, and shards/tables/manifest are
    written atomically.  ``resume=True`` replays the journal of an
    interrupted run — journal-sealed spools are trusted and reported via
    :meth:`sealed_domains` (crawlers skip them), while partial writes
    (unsealed spools, ``*.part`` files, orphaned shards) are moved to a
    ``quarantine/`` subdirectory rather than silently merged.
    """

    def __init__(
        self,
        path: str | Path,
        shard_size: int = DEFAULT_CORPUS_SHARD_SIZE,
        resume: bool = False,
    ) -> None:
        if shard_size < 1:
            raise DatasetError("corpus shard_size must be a positive number of toots")
        self.path = Path(path)
        self.shard_size = shard_size
        self.path.mkdir(parents=True, exist_ok=True)
        self._spool_dir = self.path / _SPOOL_DIR
        self._lock = threading.Lock()
        self._spools: dict[str, _InstanceSpool] = {}
        self._sealed: dict[str, Path] = {}
        self._resumed: set[str] = set()
        self._resumed_rows: dict[str, int] = {}
        self._finalised = False
        self._journal = CrawlJournal(self.path / JOURNAL_NAME)
        if resume:
            self._recover()
        elif self._journal.path.exists():
            raise DatasetError(
                f"{self.path} holds an interrupted crawl journal; "
                f"open the writer with resume=True or clear the directory"
            )
        self._spool_dir.mkdir(exist_ok=True)

    # -- crash recovery --------------------------------------------------------

    def _recover(self) -> None:
        """Trust journal-sealed spools; quarantine every partial write."""
        replay = CrawlJournal.replay(self._journal.path)
        trusted = replay.sealed_domains()
        quarantine = self.path / _QUARANTINE_DIR
        if self._spool_dir.exists():
            for entry in sorted(self._spool_dir.iterdir()):
                if entry.is_dir() and entry.name in trusted:
                    self._sealed[entry.name] = entry
                    self._resumed.add(entry.name)
                    progress = replay.progress.get(entry.name)
                    self._resumed_rows[entry.name] = progress.rows if progress else 0
                else:
                    _quarantine(entry, quarantine)
        # an interrupted finalise leaves orphaned output files behind
        if not (self.path / _MANIFEST).exists():
            for pattern in ("shard-*.npz", _TABLES, f"*{_PARTIAL_SUFFIX}"):
                for entry in sorted(self.path.glob(pattern)):
                    _quarantine(entry, quarantine)
        if self._resumed:
            self._journal.note("resumed", trusted=sorted(self._resumed))

    # -- streaming ingestion ---------------------------------------------------

    def _spool(self, domain: str) -> _InstanceSpool:
        if self._finalised:
            raise DatasetError("the corpus writer has already been finalised")
        with self._lock:
            spool = self._spools.get(domain)
            if spool is None:
                if domain in self._sealed:
                    raise DatasetError(f"instance {domain!r} was already sealed")
                spool = self._spools[domain] = _InstanceSpool(domain)
            return spool

    def sealed_domains(self) -> set[str]:
        """Instances whose spools are sealed on disk (resumed ones included)."""
        with self._lock:
            return set(self._sealed)

    def resumed_domains(self) -> set[str]:
        """Sealed instances recovered from a previous run's journal."""
        with self._lock:
            return set(self._resumed)

    def resumed_rows(self) -> dict[str, int]:
        """Journal-recorded row counts of the resumed instances."""
        with self._lock:
            return dict(self._resumed_rows)

    def add_page(self, domain: str, payload: Iterable[Mapping[str, Any]]) -> int:
        """Encode one timeline page for ``domain``; returns toots added."""
        spool = self._spool(domain)
        added = spool.add_page(payload)
        max_id = min(spool.toot_id[-added:]) if added else None
        self._journal.page(domain, added, max_id=max_id)
        obs.count("repro_corpus_rows_total", added)
        return added

    def add_records(self, domain: str, records: Iterable["TootRecord"]) -> int:
        """Encode records observed on ``domain`` (non-crawler ingestion)."""
        return self._spool(domain).add_records(records)

    def add_columns(self, domain: str, **columns: Any) -> int:
        """Append whole columns observed on ``domain`` (vectorised ingestion).

        Accepts the keyword columns of :meth:`_InstanceSpool.add_columns`
        — string columns as Python lists, value columns as numpy arrays
        — and is how :meth:`ColumnarScenario.write_corpus
        <repro.fediverse.columnar.ColumnarScenario.write_corpus>` streams
        generated timelines without building payload dicts.
        """
        return self._spool(domain).add_columns(**columns)

    def end_instance(self, domain: str) -> None:
        """Seal ``domain``'s spool to disk (its crawl completed cleanly).

        An instance whose crawl completed without a single toot (an
        empty federated timeline) is sealed as an empty spool, so it
        still appears in the corpus observations with ``(0, 0)`` counts
        — exactly like the record path's empty list.
        """
        if self._finalised:
            raise DatasetError("the corpus writer has already been finalised")
        with self._lock:
            spool = self._spools.pop(domain, None)
            if spool is None:
                if domain in self._sealed:
                    return
                spool = _InstanceSpool(domain)
            target = self._spool_dir / domain
            self._sealed[domain] = target
        staging = target.with_name(target.name + _PARTIAL_SUFFIX)
        timed = obs.active()
        started = time.perf_counter() if timed else 0.0
        spool.seal(staging)
        os.replace(staging, target)
        if timed:
            obs.observe(
                "repro_corpus_seal_seconds", time.perf_counter() - started
            )
            obs.count("repro_corpus_spools_sealed_total")
        self._journal.sealed(domain)
        _log.debug("sealed spool for %s", domain)

    def discard_instance(self, domain: str) -> None:
        """Drop everything buffered for ``domain`` (its crawl failed)."""
        with self._lock:
            self._spools.pop(domain, None)
            sealed = self._sealed.pop(domain, None)
            self._resumed.discard(domain)
        if sealed is not None:
            shutil.rmtree(sealed, ignore_errors=True)
        self._journal.discarded(domain)

    # -- the merge -------------------------------------------------------------

    def finalise(
        self,
        crawl_minute: int = 0,
        coverage: Mapping[str, Any] | None = None,
    ) -> "CorpusStore":
        """Merge every sealed spool into shards + tables + manifest.

        Instances merge in sorted-domain order with first-seen-URL
        dedup, reproducing ``unique_toots()`` exactly; duplicates only
        bump the replication counters.  ``coverage`` (a JSON-ready
        mapping, see :meth:`CrawlCoverage.as_dict
        <repro.crawler.toot_crawler.CrawlCoverage.as_dict>`) is stamped
        into the manifest so a partial corpus says so.  Spools are only
        deleted after the manifest lands — a crash mid-merge stays fully
        resumable.  Returns the opened
        :class:`~repro.corpus.store.CorpusStore`.
        """
        if self._finalised:
            raise DatasetError("the corpus writer has already been finalised")
        with self._lock:
            if self._spools:
                unsealed = ", ".join(sorted(self._spools))
                raise DatasetError(
                    f"cannot finalise with open instance spools: {unsealed}"
                )
            self._finalised = True
        self._journal.note("finalise_started")
        with obs.span("corpus/merge", instances=len(self._sealed)) as merge_span:
            store = self._merge(crawl_minute, coverage, merge_span)
        return store

    def _merge(self, crawl_minute, coverage, merge_span) -> "CorpusStore":
        merge_started = time.perf_counter() if obs.active() else 0.0

        url_code: dict[str, int] = {}
        domains = _Interner()
        authors = _Interner()
        hashtags = _Interner()
        replication = _Growable()
        home_toots = _Growable()
        observations: dict[str, tuple[int, int]] = {}
        boosts = 0
        observed_rows = 0

        pending: dict[str, list[np.ndarray]] = {name: [] for name in COLUMN_NAMES}
        pending_rows = 0
        shards: list[dict[str, object]] = []
        flushed_rows = 0

        def flush(everything: bool = False) -> None:
            nonlocal pending_rows, flushed_rows
            while pending_rows >= self.shard_size or (everything and pending_rows):
                take = min(self.shard_size, pending_rows)
                shard_arrays = _take_shard(pending, take)
                file_name = f"shard-{len(shards):05d}.npz"
                _atomic_savez(self.path / file_name, **shard_arrays)
                shards.append(
                    {"file": file_name, "start": flushed_rows, "stop": flushed_rows + take}
                )
                flushed_rows += take
                pending_rows -= take

        for domain in sorted(self._sealed):
            spool = _SpoolReader(self._sealed[domain])
            n_rows = spool.n_rows
            observed_rows += n_rows
            if n_rows == 0:
                observations[domain] = (0, 0)
                continue
            collected = domains.intern_one(domain)
            value_columns = {name: spool.values(name) for name in _SPOOL_VALUE_COLUMNS}
            tag_indptr = spool.values("hashtag_indptr")
            home_observed = 0

            for start in range(0, n_rows, _MERGE_CHUNK_ROWS):
                stop = min(start + _MERGE_CHUNK_ROWS, n_rows)
                rows = stop - start
                urls = spool.strings("url", start, stop)
                author_domains = spool.strings("author_domain", start, stop)
                home_mask = np.fromiter(
                    (value == domain for value in author_domains), np.bool_, rows
                )
                home_observed += int(home_mask.sum())

                # URL dedup: the intern table replaces unique_toots()
                codes = np.empty(rows, dtype=np.int64)
                new_mask = np.empty(rows, dtype=np.bool_)
                next_code = len(url_code)
                for i, url in enumerate(urls):
                    known = url_code.get(url)
                    if known is None:
                        url_code[url] = known = next_code
                        next_code += 1
                        new_mask[i] = True
                    else:
                        new_mask[i] = False
                    codes[i] = known
                replication.ensure(next_code)
                remote = ~home_mask
                if remote.any():
                    replication.add_at(codes[remote])
                new_rows = np.flatnonzero(new_mask)
                if not new_rows.size:
                    continue
                new_count = int(new_rows.size)

                home_codes = np.fromiter(
                    (domains.intern_one(author_domains[i]) for i in new_rows),
                    np.int64,
                    new_count,
                )
                accounts = spool.strings("account", start, stop)
                author_codes = np.fromiter(
                    (authors.intern_one(accounts[i]) for i in new_rows),
                    np.int64,
                    new_count,
                )
                del accounts, author_domains

                # hashtags: decode the chunk's tag range, keep the new rows
                chunk_ptr = tag_indptr[start : stop + 1]
                tag_lo, tag_hi = int(chunk_ptr[0]), int(chunk_ptr[-1])
                tags = spool.strings("hashtag_flat", tag_lo, tag_hi)
                lengths = np.diff(chunk_ptr)[new_mask]
                tag_starts = (chunk_ptr[:-1] - tag_lo)[new_mask]
                flat_codes = np.fromiter(
                    (
                        hashtags.intern_one(tags[position])
                        for row_start, row_length in zip(
                            tag_starts.tolist(), lengths.tolist()
                        )
                        for position in range(row_start, row_start + row_length)
                    ),
                    np.int32,
                    int(lengths.sum()),
                )
                del tags
                local_indptr = np.zeros(new_count + 1, dtype=np.int64)
                np.cumsum(lengths, out=local_indptr[1:])

                home_toots.ensure(len(domains))
                home_toots.add_at(home_codes)
                is_boost = value_columns["is_boost"][start:stop][new_mask]
                boosts += int(is_boost.sum())

                pending["url"].append(_string_array([urls[i] for i in new_rows]))
                pending["home_code"].append(home_codes.astype(np.int32))
                pending["author_code"].append(author_codes.astype(np.int32))
                pending["collected_code"].append(
                    np.full(new_count, collected, dtype=np.int32)
                )
                pending["is_boost"].append(is_boost)
                pending["hashtag_codes"].append(flat_codes)
                pending["hashtag_indptr"].append(local_indptr)
                for name in _SPOOL_VALUE_COLUMNS:
                    if name != "is_boost":
                        pending[name].append(value_columns[name][start:stop][new_mask])
                pending_rows += new_count
                del urls
                flush()
            observations[domain] = (home_observed, n_rows - home_observed)
        flush(everything=True)

        n_toots = flushed_rows
        replication.ensure(n_toots)
        _atomic_savez(
            self.path / _TABLES,
            domains=_string_array(domains.values),
            authors=_string_array(authors.values),
            hashtags=_string_array(hashtags.values),
            replication_counts=replication.values(),
        )
        manifest = {
            "schema": CORPUS_SCHEMA,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "shard_size": self.shard_size,
            "n_toots": n_toots,
            "n_observations": observed_rows,
            "n_boosts": boosts,
            "crawl_minute": crawl_minute,
            "columns": list(COLUMN_NAMES),
            "tables": _TABLES,
            "shards": shards,
            "home_toot_counts": {
                domain: int(count)
                for domain, count in zip(domains.values, home_toots.values())
                if count
            },
            "observations": {
                domain: list(counts) for domain, counts in sorted(observations.items())
            },
        }
        if coverage is not None:
            manifest["coverage"] = dict(coverage)
        _atomic_write_text(
            self.path / _MANIFEST, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        shutil.rmtree(self._spool_dir, ignore_errors=True)
        self._journal.remove()

        if obs.active():
            merge_seconds = time.perf_counter() - merge_started
            merge_span.set(rows=observed_rows, toots=n_toots, shards=len(shards))
            obs.count("repro_corpus_merge_seconds_total", merge_seconds)
            obs.count("repro_corpus_shards_written_total", len(shards))
            obs.count("repro_corpus_merged_rows_total", observed_rows)
            if merge_seconds > 0:
                obs.set_gauge(
                    "repro_corpus_merge_rows_per_second",
                    observed_rows / merge_seconds,
                )
        _log.info(
            "corpus finalised: %d observed rows -> %d unique toots in %d shards",
            observed_rows,
            n_toots,
            len(shards),
        )

        from repro.corpus.store import CorpusStore

        return CorpusStore(self.path)


def _take_shard(
    pending: dict[str, list[np.ndarray]], take: int
) -> dict[str, np.ndarray]:
    """Split ``take`` rows off the pending chunk lists as one shard.

    The hashtag CSR pair is re-based so every shard's ``hashtag_indptr``
    starts at zero; all other columns split by plain row count.
    """
    # merge chunk lists once, then slice (chunks rarely exceed a few spools)
    indptr_parts = pending["hashtag_indptr"]
    merged_indptr = indptr_parts[0]
    for part in indptr_parts[1:]:
        merged_indptr = np.concatenate([merged_indptr, merged_indptr[-1] + part[1:]])
    flat = (
        np.concatenate(pending["hashtag_codes"])
        if len(pending["hashtag_codes"]) > 1
        else pending["hashtag_codes"][0]
    )
    flat_take = int(merged_indptr[take])

    shard: dict[str, np.ndarray] = {}
    for name, chunks in pending.items():
        if name == "hashtag_indptr":
            shard[name] = merged_indptr[: take + 1].copy()
            pending[name] = [merged_indptr[take:] - merged_indptr[take]]
        elif name == "hashtag_codes":
            shard[name] = flat[:flat_take]
            pending[name] = [flat[flat_take:]]
        else:
            merged = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
            shard[name] = merged[:take]
            pending[name] = [merged[take:]]
    return shard
