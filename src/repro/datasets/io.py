"""Serialisation helpers: JSON-lines persistence for the datasets.

The paper released anonymised infrastructure and toot-metadata dumps; the
functions here let users of this library persist and re-load the same
artefacts (monitor snapshots, toot records, follower edges) without the
simulator, so analyses can be re-run from files alone.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, fields, is_dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence, Type, TypeVar

from repro.errors import DatasetError
from repro.crawler.graph_crawler import FollowEdgeRecord
from repro.crawler.monitor import InstanceSnapshot
from repro.crawler.toot_crawler import TootRecord

T = TypeVar("T")


def write_jsonl(path: str | Path, rows: Iterable[dict[str, Any]]) -> int:
    """Write dictionaries as JSON lines; returns the number of rows written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield dictionaries from a JSON-lines file."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such dataset file: {path}")
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetError(f"{path}:{line_number}: invalid JSON") from exc


def write_csv(path: str | Path, rows: Sequence[dict[str, Any]], fieldnames: Sequence[str] | None = None) -> int:
    """Write dictionaries to a CSV file; returns the number of rows written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = list(rows)
    if not rows:
        path.write_text("", encoding="utf-8")
        return 0
    if fieldnames is None:
        fieldnames = list(rows[0].keys())
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row_number, row in enumerate(rows, start=1):
            try:
                writer.writerow(row)
            except ValueError as exc:
                raise DatasetError(
                    f"{path}: row {row_number} does not match the CSV header "
                    f"{list(fieldnames)}: {exc}"
                ) from exc
    return len(rows)


def _dataclass_to_row(item: Any) -> dict[str, Any]:
    if not is_dataclass(item):
        raise DatasetError(f"expected a dataclass instance, got {type(item)!r}")
    row = asdict(item)
    for key, value in list(row.items()):
        if isinstance(value, tuple):
            row[key] = list(value)
    return row


def _row_to_dataclass(cls: Type[T], row: dict[str, Any]) -> T:
    names = {f.name for f in fields(cls)}  # type: ignore[arg-type]
    kwargs = {}
    for key, value in row.items():
        if key not in names:
            continue
        if isinstance(value, list):
            value = tuple(value)
        kwargs[key] = value
    return cls(**kwargs)  # type: ignore[call-arg]


def save_snapshots(path: str | Path, snapshots: Iterable[InstanceSnapshot]) -> int:
    """Persist monitor snapshots as JSON lines."""
    return write_jsonl(path, (_dataclass_to_row(s) for s in snapshots))


def load_snapshots(path: str | Path) -> list[InstanceSnapshot]:
    """Load monitor snapshots from JSON lines."""
    return [_row_to_dataclass(InstanceSnapshot, row) for row in read_jsonl(path)]


def save_toot_records(path: str | Path, records: Iterable[TootRecord]) -> int:
    """Persist toot records as JSON lines."""
    return write_jsonl(path, (_dataclass_to_row(r) for r in records))


def load_toot_records(path: str | Path) -> list[TootRecord]:
    """Load toot records from JSON lines."""
    return [_row_to_dataclass(TootRecord, row) for row in read_jsonl(path)]


def save_edges(path: str | Path, edges: Iterable[FollowEdgeRecord]) -> int:
    """Persist follower edges as JSON lines."""
    return write_jsonl(path, (_dataclass_to_row(e) for e in edges))


def load_edges(path: str | Path) -> list[FollowEdgeRecord]:
    """Load follower edges from JSON lines."""
    return [_row_to_dataclass(FollowEdgeRecord, row) for row in read_jsonl(path)]
