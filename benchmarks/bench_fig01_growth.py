"""Fig. 1 — instances, users and toots over the observation window.

Paper shape: all three curves grow; instances plateau mid-window and then
grow again, while users/toots keep growing throughout.

Thin timing wrapper over the ``fig1`` registry runner.
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_fig01_growth(benchmark, ctx):
    result = benchmark(lambda: get_experiment("fig1").run(ctx))
    emit("Fig. 1 — population growth", result.render_text())

    assert result.scalar("final_users") >= result.scalar("initial_users")
    assert result.scalar("final_instances") >= result.scalar("initial_instances")
    assert result.scalar("final_users") > 0
