"""Counters, gauges, and log-scale histograms with Prometheus export.

The registry is built for instrumented hot loops: counter increments and
histogram observations touch only a per-thread shard (a plain dict the
owning thread mutates without taking any lock — CPython dict operations
are atomic under the GIL), so threads never contend on the write path.
Shards are registered in a central list the first time a thread records
anything, and **merged on read**: after writer threads are joined, a
merge is exact to the last increment.  Gauges are last-write-wins and go
through a single lock (they are set rarely — once per batch, not once
per item).

Histograms use fixed log-scale buckets — powers of two spanning about a
microsecond to ~17 minutes (:data:`HISTOGRAM_BUCKETS`) — so latencies
from a sub-millisecond mmap query to a multi-minute crawl land in
meaningfully distinct buckets without per-metric configuration.

:meth:`MetricsRegistry.render_prometheus` renders the merged state in
the Prometheus text exposition format (``# TYPE`` comments, cumulative
``_bucket{le=...}`` series, ``_sum``/``_count``), which is what the
``serve`` layer's ``GET /metrics`` endpoint returns verbatim.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable

__all__ = ["HISTOGRAM_BUCKETS", "MetricsRegistry"]

#: Fixed histogram bucket upper bounds: 2**-20 s (~1 µs) .. 2**10 s.
HISTOGRAM_BUCKETS: tuple[float, ...] = tuple(2.0**e for e in range(-20, 11))

# a metric key is (name, ((label, value), ...)) with labels sorted
_Key = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, Any]) -> _Key:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class _Histogram:
    """Per-shard histogram state: bucket counts plus running sum."""

    __slots__ = ("counts", "total")

    def __init__(self, n_buckets: int) -> None:
        # one extra slot counts observations above the top bucket (+Inf)
        self.counts = [0] * (n_buckets + 1)
        self.total = 0.0


class _Shard:
    """One thread's private counters and histograms (no lock needed)."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: dict[_Key, float] = {}
        self.histograms: dict[_Key, _Histogram] = {}


class MetricsRegistry:
    """A process-wide set of counters, gauges, and histograms."""

    def __init__(self, buckets: Iterable[float] = HISTOGRAM_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram buckets cannot be empty")
        self._lock = threading.Lock()
        self._local = threading.local()
        self._shards: list[_Shard] = []
        self._gauges: dict[_Key, float] = {}
        self._help: dict[str, str] = {}

    # -- write path (lock-free per thread) --------------------------------

    def _shard(self) -> _Shard:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = _Shard()
            with self._lock:
                self._shards.append(shard)
            self._local.shard = shard
        return shard

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` to the counter ``name`` (monotonic by contract)."""
        counters = self._shard().counters
        key = _key(name, labels)
        counters[key] = counters.get(key, 0.0) + value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one sample into the histogram ``name``."""
        histograms = self._shard().histograms
        key = _key(name, labels)
        hist = histograms.get(key)
        if hist is None:
            hist = histograms[key] = _Histogram(len(self.buckets))
        hist.counts[bisect_left(self.buckets, value)] += 1
        hist.total += value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to ``name`` in the exposition."""
        with self._lock:
            self._help[name] = help_text

    def reset(self) -> None:
        """Drop every recorded value (shards re-register on next touch)."""
        with self._lock:
            for shard in self._shards:
                shard.counters = {}
                shard.histograms = {}
            self._gauges.clear()

    # -- read path (merges shards) ----------------------------------------

    @staticmethod
    def _stable_items(mapping: dict) -> list[tuple]:
        """Items of a dict other threads may be growing concurrently."""
        for _ in range(8):
            try:
                return list(mapping.items())
            except RuntimeError:  # pragma: no cover - racy resize window
                continue
        return list(mapping.items())  # pragma: no cover

    def _merged(self) -> tuple[dict[_Key, float], dict[_Key, tuple[list[int], float]]]:
        counters: dict[_Key, float] = {}
        histograms: dict[_Key, tuple[list[int], float]] = {}
        with self._lock:
            shards = list(self._shards)
        for shard in shards:
            for key, value in self._stable_items(shard.counters):
                counters[key] = counters.get(key, 0.0) + value
            for key, hist in self._stable_items(shard.histograms):
                merged = histograms.get(key)
                if merged is None:
                    histograms[key] = (list(hist.counts), hist.total)
                else:
                    counts, total = merged
                    for i, count in enumerate(hist.counts):
                        counts[i] += count
                    histograms[key] = (counts, total + hist.total)
        return counters, histograms

    def counter_value(self, name: str, **labels: Any) -> float:
        """The merged value of one counter (0.0 when never incremented)."""
        return self._merged()[0].get(_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels: Any) -> float | None:
        """The current gauge value, or ``None`` when never set."""
        with self._lock:
            return self._gauges.get(_key(name, labels))

    def histogram_stats(self, name: str, **labels: Any) -> tuple[int, float]:
        """``(count, sum)`` of one merged histogram (``(0, 0.0)`` if empty)."""
        hist = self._merged()[1].get(_key(name, labels))
        if hist is None:
            return 0, 0.0
        counts, total = hist
        return sum(counts), total

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """A JSON-ready view: flat ``name{label="v"}`` keys per family."""
        counters, histograms = self._merged()
        with self._lock:
            gauges = dict(self._gauges)
        return {
            "counters": {_flat(key): value for key, value in sorted(counters.items())},
            "gauges": {_flat(key): value for key, value in sorted(gauges.items())},
            "histograms": {
                _flat(key): {"count": sum(counts), "sum": total}
                for key, (counts, total) in sorted(histograms.items())
            },
        }

    def render_prometheus(self) -> str:
        """The merged state in Prometheus text exposition format."""
        counters, histograms = self._merged()
        with self._lock:
            gauges = dict(self._gauges)
            help_text = dict(self._help)
        lines: list[str] = []

        def header(name: str, kind: str) -> None:
            if name in help_text:
                lines.append(f"# HELP {name} {help_text[name]}")
            lines.append(f"# TYPE {name} {kind}")

        for kind, family in (("counter", counters), ("gauge", gauges)):
            by_name: dict[str, list] = {}
            for key, value in sorted(family.items()):
                by_name.setdefault(key[0], []).append((key[1], value))
            for name, series in by_name.items():
                header(name, kind)
                for labels, value in series:
                    lines.append(f"{name}{_label_str(labels)} {_fmt(value)}")

        hist_by_name: dict[str, list] = {}
        for key, merged in sorted(histograms.items()):
            hist_by_name.setdefault(key[0], []).append((key[1], merged))
        for name, series in hist_by_name.items():
            header(name, "histogram")
            for labels, (counts, total) in series:
                cumulative = 0
                for bound, count in zip(self.buckets, counts):
                    cumulative += count
                    le = (("le", _fmt_bound(bound)),)
                    lines.append(
                        f"{name}_bucket{_label_str(labels + le)} {cumulative}"
                    )
                cumulative += counts[-1]
                inf = (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_label_str(labels + inf)} {cumulative}")
                lines.append(f"{name}_sum{_label_str(labels)} {_fmt(total)}")
                lines.append(f"{name}_count{_label_str(labels)} {cumulative}")
        return "\n".join(lines) + "\n" if lines else ""


def _flat(key: _Key) -> str:
    return key[0] + _label_str(key[1])


def _label_str(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    parts = (f'{name}="{_escape(value)}"' for name, value in labels)
    return "{" + ",".join(parts) + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_bound(bound: float) -> str:
    # exact powers of two render compactly and round-trip exactly
    return repr(float(bound))
