"""Differential proof: the scenario-to-disk stream equals the crawl.

``ColumnarScenario.write_corpus`` / ``write_graph`` claim to produce
exactly what the real crawlers collect from the materialised network at
the same minute.  These tests materialise the *same* columns through
``to_network()`` and run the actual ``TootCrawler`` /
``FollowerGraphCrawler`` in sink mode over it, then compare the two
on-disk stores byte for byte — manifests, intern tables, every column of
every shard.  Anything the streaming path gets wrong (gating order,
timeline membership, follower ordering, chunk boundaries) shows up here
as a concrete column mismatch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import collect_datasets
from repro.corpus import CorpusWriter, GraphWriter
from repro.corpus.columns import COLUMN_NAMES
from repro.crawler import FollowerGraphCrawler, SimulatedTransport, TootCrawler
from repro.engine.sweep import StrategySpec
from repro.fediverse import build_columnar_scenario, build_scenario
from tests.conftest import TINY_SEED


@pytest.fixture(scope="module")
def scenario():
    return build_columnar_scenario("tiny", seed=TINY_SEED)


@pytest.fixture(scope="module")
def materialised(scenario):
    """The same columns replayed through a real FediverseNetwork."""
    return scenario.to_network()


def assert_same_corpus(streamed, crawled):
    streamed_manifest = {
        k: v for k, v in streamed.manifest.items() if k != "created_at"
    }
    crawled_manifest = {k: v for k, v in crawled.manifest.items() if k != "created_at"}
    assert streamed_manifest == crawled_manifest
    for table in ("domains", "authors", "hashtags", "replication_counts"):
        assert np.array_equal(streamed._table(table), crawled._table(table)), table
    assert list(streamed.urls()) == list(crawled.urls())
    for shard in range(streamed.n_shards):
        for name in COLUMN_NAMES:
            assert np.array_equal(
                streamed.shard_column(shard, name), crawled.shard_column(shard, name)
            ), f"shard {shard} column {name}"


def assert_same_graph(streamed, crawled):
    streamed_manifest = {
        k: v for k, v in streamed.manifest.items() if k != "created_at"
    }
    crawled_manifest = {k: v for k, v in crawled.manifest.items() if k != "created_at"}
    assert streamed_manifest == crawled_manifest
    assert np.array_equal(streamed.handles, crawled.handles)
    assert np.array_equal(streamed.node_domain_codes, crawled.node_domain_codes)
    assert np.array_equal(streamed.domains, crawled.domains)
    for shard in range(streamed.n_shards):
        for got, want in zip(streamed.shard_edges(shard), crawled.shard_edges(shard)):
            assert np.array_equal(got, want), f"shard {shard}"


class TestCorpusDifferential:
    def test_streamed_corpus_equals_the_crawled_one(
        self, scenario, materialised, tmp_path
    ):
        minute = scenario.config.window_minutes - 1
        streamer = CorpusWriter(tmp_path / "streamed", shard_size=700)
        scenario.write_corpus(streamer, at_minute=minute)
        streamed = streamer.finalise(crawl_minute=minute)

        sink = CorpusWriter(tmp_path / "crawled", shard_size=700)
        result = TootCrawler(SimulatedTransport(materialised), threads=4).crawl(
            at_minute=minute, sink=sink
        )
        crawled = sink.finalise(crawl_minute=result.crawl_minute)
        assert_same_corpus(streamed, crawled)

    def test_small_chunks_change_nothing(self, scenario, tmp_path):
        minute = scenario.config.window_minutes - 1
        coarse = CorpusWriter(tmp_path / "coarse", shard_size=700)
        scenario.write_corpus(coarse, at_minute=minute)
        fine = CorpusWriter(tmp_path / "fine", shard_size=700)
        scenario.write_corpus(fine, at_minute=minute, chunk_rows=97)
        assert_same_corpus(
            coarse.finalise(crawl_minute=minute), fine.finalise(crawl_minute=minute)
        )


class TestGraphDifferential:
    def test_streamed_graph_equals_the_crawled_one(
        self, scenario, materialised, tmp_path
    ):
        minute = scenario.config.window_minutes - 1
        streamer = GraphWriter(tmp_path / "streamed", shard_size=500)
        scenario.write_graph(streamer, at_minute=minute)
        streamed = streamer.finalise(crawl_minute=minute)

        sink = GraphWriter(tmp_path / "crawled", shard_size=500)
        result = FollowerGraphCrawler(SimulatedTransport(materialised), threads=4).crawl(
            at_minute=minute, sink=sink
        )
        crawled = sink.finalise(crawl_minute=result.crawl_minute)
        assert_same_graph(streamed, crawled)


class TestPlacementIdentity:
    """GraphStore-fed placements == GraphDataset-fed placements."""

    def test_subscription_placements_identical(self, tiny_network, tmp_path):
        data = collect_datasets(
            tiny_network,
            corpus_dir=tmp_path / "corpus",
            graph_dir=tmp_path / "graph",
        )
        assert data.graph_store is not None
        spec = StrategySpec.subscription()
        domains = data.instances.domains()
        from_store = spec.build_from_corpus(
            data.corpus, graphs=data.graph_store, candidate_domains=domains
        ).arrays
        from_nx = spec.build_from_corpus(
            data.corpus, graphs=data.graphs, candidate_domains=domains
        ).arrays
        assert from_store.domains == from_nx.domains
        assert np.array_equal(from_store.home, from_nx.home)
        assert np.array_equal(from_store.replica_indices, from_nx.replica_indices)
        assert np.array_equal(from_store.replica_indptr, from_nx.replica_indptr)

    def test_rebuilt_networkx_dataset_identical(self, tiny_network, tmp_path):
        data = collect_datasets(
            tiny_network,
            corpus_dir=tmp_path / "corpus",
            graph_dir=tmp_path / "graph",
        )
        reference = collect_datasets(build_scenario("tiny", seed=TINY_SEED))
        assert list(data.graphs.follower_graph.nodes()) == list(
            reference.graphs.follower_graph.nodes()
        )
        assert list(data.graphs.follower_graph.edges()) == list(
            reference.graphs.follower_graph.edges()
        )


@pytest.mark.slow
class TestSmallDifferential:
    """The same differential at the `small` preset (more instances, more
    boosts, multi-shard merges on both sides)."""

    def test_small_corpus_and_graph(self, tmp_path):
        scenario = build_columnar_scenario("small", seed=TINY_SEED)
        materialised = scenario.to_network()
        minute = scenario.config.window_minutes - 1

        streamer = CorpusWriter(tmp_path / "streamed", shard_size=5_000)
        scenario.write_corpus(streamer, at_minute=minute)
        streamed = streamer.finalise(crawl_minute=minute)
        sink = CorpusWriter(tmp_path / "crawled", shard_size=5_000)
        transport = SimulatedTransport(materialised)
        result = TootCrawler(transport, threads=4).crawl(at_minute=minute, sink=sink)
        assert_same_corpus(streamed, sink.finalise(crawl_minute=result.crawl_minute))

        graph_streamer = GraphWriter(tmp_path / "graph-streamed", shard_size=5_000)
        scenario.write_graph(graph_streamer, at_minute=minute)
        graph_streamed = graph_streamer.finalise(crawl_minute=minute)
        graph_sink = GraphWriter(tmp_path / "graph-crawled", shard_size=5_000)
        graph_result = FollowerGraphCrawler(transport, threads=4).crawl(
            at_minute=minute, sink=graph_sink
        )
        assert_same_graph(
            graph_streamed, graph_sink.finalise(crawl_minute=graph_result.crawl_minute)
        )
