"""Fig. 4 — prohibited and allowed activities across instances.

Paper shape: spam is the most commonly prohibited activity (76% of tagged
instances), followed by pornography and nudity without #NSFW; instances
allowing advertising hold a disproportionate share of users and toots.
"""

from __future__ import annotations

from repro.core import categories
from repro.reporting import format_percentage, format_table

from benchmarks.conftest import emit


def test_fig04_activity_breakdown(benchmark, data):
    shares = benchmark(lambda: categories.activity_breakdown(data.instances))
    rows = [
        [
            share.activity,
            format_percentage(share.prohibit_instance_share),
            format_percentage(share.allow_instance_share),
            format_percentage(share.allow_user_share),
            format_percentage(share.allow_toot_share),
        ]
        for share in shares
    ]
    emit(
        "Fig. 4 — prohibited/allowed activities",
        format_table(
            ["activity", "prohibited (instances)", "allowed (instances)",
             "allowed (users)", "allowed (toots)"],
            rows,
        ),
    )

    by_activity = {share.activity: share for share in shares}
    spam = by_activity.get("spam")
    assert spam is not None
    # spam is among the most prohibited activities
    top_prohibited = sorted(shares, key=lambda s: s.prohibit_instance_share, reverse=True)[:3]
    assert spam in top_prohibited


def test_fig04_policy_coverage(benchmark, data):
    coverage = benchmark(lambda: categories.policy_coverage(data.instances))
    emit(
        "Fig. 4 — activity-policy coverage",
        format_table(
            ["metric", "value"],
            [[key, round(value, 3)] for key, value in coverage.items()],
        ),
    )
    assert 0.0 < coverage["allow_all_share"] < 0.6
