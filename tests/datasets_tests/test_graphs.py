"""Tests for the follower / federation graph builders."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.crawler.graph_crawler import FollowEdgeRecord
from repro.datasets.graphs import (
    GraphDataset,
    build_federation_graph,
    build_follower_graph,
    connected_component_count,
    largest_connected_component_fraction,
    top_nodes_by,
)

EDGES = [
    ("a1@alpha.example", "a2@alpha.example"),
    ("a1@alpha.example", "b1@beta.example"),
    ("a2@alpha.example", "b1@beta.example"),
    ("b1@beta.example", "c1@gamma.example"),
    ("c1@gamma.example", "a1@alpha.example"),
    ("d1@delta.example", "d2@delta.example"),
]


class TestFollowerGraph:
    def test_nodes_edges_and_domains(self):
        graph = build_follower_graph(EDGES)
        assert graph.number_of_nodes() == 6
        assert graph.number_of_edges() == 6
        assert graph.nodes["a1@alpha.example"]["domain"] == "alpha.example"

    def test_self_loops_dropped(self):
        graph = build_follower_graph([("a@x.example", "a@x.example")])
        assert graph.number_of_edges() == 0

    def test_accepts_edge_records(self):
        graph = build_follower_graph(
            [FollowEdgeRecord(follower="a@x.example", followed="b@y.example")]
        )
        assert graph.has_edge("a@x.example", "b@y.example")

    def test_handle_without_domain_rejected(self):
        with pytest.raises(DatasetError):
            build_follower_graph([("nodomain", "b@y.example")])


class TestFederationGraph:
    def test_induced_edges_and_weights(self):
        follower = build_follower_graph(EDGES)
        federation = build_federation_graph(follower)
        assert set(federation.nodes()) == {
            "alpha.example",
            "beta.example",
            "gamma.example",
            "delta.example",
        }
        assert federation.has_edge("alpha.example", "beta.example")
        assert federation["alpha.example"]["beta.example"]["weight"] == 2
        # intra-instance follows do not create federation edges
        assert not federation.has_edge("alpha.example", "alpha.example")
        assert not federation.has_edge("delta.example", "delta.example")

    def test_node_user_counts(self):
        federation = build_federation_graph(build_follower_graph(EDGES))
        assert federation.nodes["alpha.example"]["users"] == 2
        assert federation.nodes["delta.example"]["users"] == 2


class TestGraphDataset:
    def test_from_edges(self):
        dataset = GraphDataset.from_edges(EDGES)
        assert dataset.user_count() == 6
        assert dataset.follow_edge_count() == 6
        assert dataset.instance_count() == 4
        assert dataset.federation_edge_count() == 3
        assert sorted(dataset.users_on_instance("delta.example")) == [
            "d1@delta.example",
            "d2@delta.example",
        ]
        assert dataset.users_per_instance()["alpha.example"] == 2

    def test_degree_views(self):
        dataset = GraphDataset.from_edges(EDGES)
        assert len(dataset.out_degrees()) == dataset.user_count()
        assert sum(dataset.out_degrees()) == dataset.follow_edge_count()
        assert sum(dataset.in_degrees()) == dataset.follow_edge_count()
        assert len(dataset.federation_out_degrees()) == dataset.instance_count()

    def test_instance_degree_table(self):
        dataset = GraphDataset.from_edges(EDGES)
        table = dataset.instance_degree_table()
        assert table["alpha.example"]["users"] == 2
        assert table["alpha.example"]["instance_out_degree"] == 1
        assert table["alpha.example"]["instance_in_degree"] == 1

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            GraphDataset.from_edges([])

    def test_from_crawl_pipeline(self, datasets):
        graphs = datasets.graphs
        assert graphs.user_count() > 0
        assert graphs.instance_count() > 1
        assert graphs.follow_edge_count() > graphs.user_count()


class TestGraphHelpers:
    def test_lcc_fraction(self):
        dataset = GraphDataset.from_edges(EDGES)
        fraction = largest_connected_component_fraction(dataset.follower_graph)
        assert fraction == pytest.approx(4 / 6)

    def test_component_count(self):
        dataset = GraphDataset.from_edges(EDGES)
        assert connected_component_count(dataset.follower_graph) == 2
        assert connected_component_count(dataset.follower_graph, strongly=True) >= 2

    def test_empty_graph_helpers(self):
        import networkx as nx

        empty = nx.DiGraph()
        assert largest_connected_component_fraction(empty) == 0.0
        assert connected_component_count(empty) == 0

    def test_top_nodes_by_degree_and_attribute(self):
        dataset = GraphDataset.from_edges(EDGES)
        by_degree = top_nodes_by(dataset.follower_graph, "degree", limit=2)
        assert len(by_degree) == 2
        by_users = top_nodes_by(dataset.federation_graph, "users", limit=1)
        assert by_users[0] in {"alpha.example", "delta.example"}
        by_out = top_nodes_by(dataset.federation_graph, "out_degree", limit=1)
        assert by_out[0] in {"alpha.example", "beta.example", "gamma.example"}
