"""The availability query service: build once, answer forever.

:class:`AvailabilityService` splits the batch pipeline's cost cleanly in
two.  The **one-time build** (per strategy: integer-coded placements
from the corpus columns, a :class:`~repro.engine.sharding.ShardedIncidence`
over the crawl's own shard bounds; per (strategy × failure): the dense
removal column and the full-corpus loss table via
:func:`~repro.engine.sharding.streaming_losses`) runs exactly once, on
first use or eagerly via :meth:`AvailabilityService.warm`.  **Per-query
cost** is then O(answer): full-corpus availability is a table lookup,
and per-user / per-instance queries assemble only the subset's CSR rows
(:meth:`~repro.engine.placement.PlacementArrays.rows_incidence`) before
one batched reduction over them.

Every number the service returns is bit-identical to the equivalent
batch sweep: the removal vectors come from the same
:class:`~repro.engine.incidence.DomainLookup` over the same per-strategy
domain universe, the loss fold is the same additive integer reduction,
and the curves are the same ``1 - cumsum(losses) / total``.  The
differential suite in ``tests/serve/`` holds the service to exact
equality against :func:`~repro.engine.sweep.availability_curves`.

Failure rankings are derived from the stores alone, mirroring the batch
pipeline's :func:`~repro.core.resilience.rank_instances` over the
federation graph:

* ``instances/by_toots`` — graph-store domains (federation node order)
  ranked by the corpus' home-toot counts: exactly the batch ranking.
* ``instances/by_connections`` — ranked by distinct cross-instance
  federation partners: exactly the batch federation-graph degree.
* ``instances/by_users`` — ranked by accounts observed in the follower
  graph.  The batch pipeline ranks by the *monitor's* registered-user
  counts, which no store records, so this ranking is the store-derivable
  analogue rather than an exact twin; exact-match claims are restricted
  to the other two.

AS-level schedules need the monitor's per-instance AS metadata (not in
any store) — register such models explicitly via :meth:`add_failure`.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro import obs
from repro.corpus import CorpusStore, GraphStore
from repro.engine.failures import FailureModel, InstanceRemoval
from repro.engine.incidence import DomainLookup
from repro.engine.kernels import availability_from_losses, losses_per_step_batch
from repro.engine.placement import PlacementArrays
from repro.engine.sharding import DEFAULT_SHARD_SIZE, ShardedIncidence, streaming_losses
from repro.engine.sweep import StrategySpec
from repro.errors import AnalysisError

#: Default removal-schedule length, matching the batch experiments'
#: ``INSTANCE_REMOVAL_STEPS`` (fig13/15/16 family).
DEFAULT_REMOVAL_STEPS = 50


def parse_strategy(text: str) -> StrategySpec:
    """A :class:`StrategySpec` from the query grammar.

    ``no-rep`` (aliases ``none``, ``no_rep``) and ``s-rep`` (aliases
    ``subscription``, ``s_rep``) name the deterministic strategies;
    ``n=K`` and ``n=K/seed=S`` name random replication.  The produced
    spec names round-trip: the batch sweeps' default names parse back to
    equivalent specs.
    """
    name = text.strip()
    if name in ("no-rep", "none", "no_rep"):
        return StrategySpec.none()
    if name in ("s-rep", "subscription", "s_rep"):
        return StrategySpec.subscription()
    if name.startswith("n="):
        body, _, seed_part = name.partition("/")
        try:
            n_replicas = int(body[2:])
            seed = 0
            if seed_part:
                if not seed_part.startswith("seed="):
                    raise ValueError(seed_part)
                seed = int(seed_part[5:])
        except ValueError:
            raise AnalysisError(f"unknown placement strategy: {text!r}") from None
        return StrategySpec.random(n_replicas, seed=seed)
    raise AnalysisError(f"unknown placement strategy: {text!r}")


class _StrategyState:
    """Everything built once per placement strategy."""

    def __init__(
        self, spec: StrategySpec, arrays: PlacementArrays, sharded: ShardedIncidence
    ) -> None:
        self.spec = spec
        self.arrays = arrays
        self.sharded = sharded
        #: failure name -> (failure object, dense removal column, steps).
        self.removals: dict[str, tuple[FailureModel, np.ndarray, int]] = {}
        #: failure name -> (failure object, full-corpus availability curve).
        self.curves: dict[str, tuple[FailureModel, np.ndarray]] = {}
        #: instance domain -> rows holding a copy (one corpus pass each).
        self.holder_rows: dict[str, np.ndarray] = {}


class AvailabilityService:
    """Interactive availability queries over mmap'd corpus/graph stores.

    Thread-safe: the one-time builds are serialised behind one lock
    (double-checked, so they run exactly once no matter how many threads
    race), and everything a query touches afterwards is read-only numpy
    — concurrent mixed queries are bit-identical to serial execution
    (``tests/serve/test_concurrency.py``).
    """

    def __init__(
        self,
        corpus_dir: str | Path,
        graph_dir: str | Path | None = None,
        *,
        mmap: bool = True,
        removal_steps: int = DEFAULT_REMOVAL_STEPS,
        workers: int | None = None,
        candidates: Sequence[str] | None = None,
    ) -> None:
        self.corpus = CorpusStore(corpus_dir, mmap=mmap)
        self.graph = GraphStore(graph_dir, mmap=mmap) if graph_dir is not None else None
        self.mmap = bool(mmap)
        self.removal_steps = removal_steps
        self.workers = workers
        #: Candidate targets for random replication.  The batch pipeline
        #: uses the monitor's instance list, which no store records; the
        #: default here is the corpus' full domain universe.  Pass the
        #: batch candidate set explicitly to reproduce seeded draws.
        self.candidates = (
            sorted(str(d) for d in self.corpus.domains.tolist())
            if candidates is None
            else list(candidates)
        )
        #: How many times each one-time build actually ran — the
        #: build-once guarantee, observable.
        self.build_counters: dict[str, int] = {
            "strategies_built": 0,
            "loss_tables_built": 0,
            "row_indexes_built": 0,
        }
        self._started = time.monotonic()
        self._lock = threading.RLock()
        self._failures: dict[str, FailureModel] | None = None
        self._states: dict[str, _StrategyState] = {}
        self._author_lookup: DomainLookup | None = None
        self._author_rows: tuple[np.ndarray, np.ndarray] | None = None
        self._home_lookup: DomainLookup | None = None
        self._home_rows: tuple[np.ndarray, np.ndarray] | None = None
        self._follow_index: tuple[np.ndarray, np.ndarray] | None = None

    # -- the failure registry --------------------------------------------------

    def _ranked_nodes(self) -> list[str]:
        """The instance universe in the batch pipeline's ranking order.

        With a graph store: the store's domain intern order, which equals
        the federation graph's node order (both are first-appearance over
        the same edge stream), so ``sorted(..., reverse=True)`` ties
        break identically to the batch ranking.  Without one: the
        corpus' authoring instances in manifest (sorted-domain) order.
        """
        if self.graph is not None:
            return [str(d) for d in self.graph.domains.tolist()]
        return list(self.corpus.home_toot_counts)

    def failures(self) -> dict[str, FailureModel]:
        """The registered failure models, keyed by name (built once)."""
        with self._lock:
            if self._failures is None:
                self._failures = self._build_failures()
            return self._failures

    def _build_failures(self) -> dict[str, FailureModel]:
        nodes = self._ranked_nodes()
        toots = self.corpus.home_toot_counts
        models = [
            InstanceRemoval(
                sorted(nodes, key=lambda d: toots.get(d, 0), reverse=True),
                steps=self.removal_steps,
                name="instances/by_toots",
            )
        ]
        if self.graph is not None:
            users = self.graph.users_per_instance()
            models.append(
                InstanceRemoval(
                    sorted(nodes, key=lambda d: users.get(d, 0), reverse=True),
                    steps=self.removal_steps,
                    name="instances/by_users",
                )
            )
            degree: dict[str, int] = {}
            for source, target in self.graph.federation_edge_counts():
                degree[source] = degree.get(source, 0) + 1
                degree[target] = degree.get(target, 0) + 1
            models.append(
                InstanceRemoval(
                    sorted(nodes, key=lambda d: degree.get(d, 0), reverse=True),
                    steps=self.removal_steps,
                    name="instances/by_connections",
                )
            )
        return {model.name: model for model in models}

    def add_failure(self, model: FailureModel) -> None:
        """Register an extra cumulative failure model under its name.

        Temporal models answer a different question (a time series, not
        a removal curve) and are rejected; replacing a name drops any
        loss tables cached for it.
        """
        if getattr(model, "temporal", False):
            raise AnalysisError(
                "temporal failure models have no per-k availability curve"
            )
        with self._lock:
            self.failures()[model.name] = model

    def failure(self, name: str) -> FailureModel:
        registry = self.failures()
        model = registry.get(name)
        if model is None:
            known = ", ".join(sorted(registry))
            raise AnalysisError(f"unknown failure model {name!r} (known: {known})")
        return model

    # -- one-time builds -------------------------------------------------------

    def state_for(self, strategy: str | StrategySpec) -> _StrategyState:
        """The built (arrays + sharded incidence) state of one strategy."""
        spec = parse_strategy(strategy) if isinstance(strategy, str) else strategy
        with self._lock:
            state = self._states.get(spec.name)
            if state is None:
                build_started = time.perf_counter()
                arrays = PlacementArrays.from_corpus(
                    self.corpus,
                    spec.kind,
                    graphs=self.graph,
                    candidate_domains=self.candidates,
                    n_replicas=spec.n_replicas,
                    seed=spec.seed,
                    weights=dict(spec.weights) if spec.weights is not None else None,
                )
                if arrays.source_bounds:
                    sharded = ShardedIncidence.from_arrays(
                        arrays, bounds=arrays.source_bounds
                    )
                else:
                    sharded = ShardedIncidence.from_arrays(arrays, DEFAULT_SHARD_SIZE)
                state = _StrategyState(spec, arrays, sharded)
                self._states[spec.name] = state
                self.build_counters["strategies_built"] += 1
                obs.metrics().observe(
                    "repro_serve_build_seconds",
                    time.perf_counter() - build_started,
                    kind="strategy",
                )
            return state

    def _removal_for(
        self, state: _StrategyState, failure: FailureModel
    ) -> tuple[np.ndarray, int]:
        """The dense ``(n_domains, 1)`` removal column of one failure.

        Cached per (strategy, failure *object*) — the domain universe is
        per-strategy, so the same schedule maps to different columns
        under different strategies.
        """
        with self._lock:
            entry = state.removals.get(failure.name)
            if entry is None or entry[0] is not failure:
                steps = failure.effective_steps()
                column = state.sharded.lookup.removal_vector(
                    failure.removal_index(), steps
                )[:, None]
                entry = (failure, column, steps)
                state.removals[failure.name] = entry
            return entry[1], entry[2]

    def curve(self, strategy: str | StrategySpec, failure_name: str) -> np.ndarray:
        """The full-corpus availability curve (built once per pair).

        Index ``k`` is the availability after ``k`` removals — the same
        floats :func:`~repro.engine.sweep.availability_curves` returns as
        :class:`AvailabilityPoint` lists, computed by the same streaming
        loss fold.
        """
        state = self.state_for(strategy)
        failure = self.failure(failure_name)
        with self._lock:
            entry = state.curves.get(failure.name)
            if entry is None or entry[0] is not failure:
                build_started = time.perf_counter()
                column, steps = self._removal_for(state, failure)
                losses = streaming_losses(
                    state.sharded,
                    column,
                    np.asarray([steps], dtype=np.int64),
                    workers=self.workers,
                )
                curve = availability_from_losses(
                    losses[0, : steps + 1], state.sharded.n_toots
                )
                entry = (failure, curve)
                state.curves[failure.name] = entry
                self.build_counters["loss_tables_built"] += 1
                obs.metrics().observe(
                    "repro_serve_build_seconds",
                    time.perf_counter() - build_started,
                    kind="loss_table",
                )
            return entry[1]

    def warm(self, strategies: Sequence[str] | None = None) -> None:
        """Run every one-time build eagerly (default: all no-arg strategies)."""
        if strategies is None:
            strategies = ["no-rep", "s-rep"] if self.graph is not None else ["no-rep"]
        for strategy in strategies:
            for failure_name in list(self.failures()):
                self.curve(strategy, failure_name)
        self._rows_by_author()
        self._rows_by_home()
        if self.graph is not None:
            self._followed_index()

    # -- row indexes (who authored / is homed where) ---------------------------

    def _grouped_rows(self, column: str, n_groups: int) -> tuple[np.ndarray, np.ndarray]:
        """``(order, indptr)`` grouping corpus rows by an integer column.

        ``order[indptr[g] : indptr[g + 1]]`` are the rows of group ``g``
        in ascending row order (the argsort is stable).
        """
        codes = self.corpus.column(column).astype(np.int64)
        order = np.argsort(codes, kind="stable").astype(np.int64)
        counts = np.bincount(codes, minlength=n_groups)
        indptr = np.zeros(n_groups + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return order, indptr

    def _rows_by_author(self) -> tuple[np.ndarray, np.ndarray]:
        with self._lock:
            if self._author_rows is None:
                self._author_lookup = DomainLookup(
                    [str(a) for a in self.corpus.authors.tolist()]
                )
                self._author_rows = self._grouped_rows(
                    "author_code", self._author_lookup.n_domains
                )
                self.build_counters["row_indexes_built"] += 1
            return self._author_rows

    def _rows_by_home(self) -> tuple[np.ndarray, np.ndarray]:
        with self._lock:
            if self._home_rows is None:
                self._home_lookup = DomainLookup(
                    [str(d) for d in self.corpus.domains.tolist()]
                )
                self._home_rows = self._grouped_rows(
                    "home_code", self._home_lookup.n_domains
                )
                self.build_counters["row_indexes_built"] += 1
            return self._home_rows

    def _followed_index(self) -> tuple[np.ndarray, np.ndarray]:
        """``(order-sorted followed codes, per-follower indptr)`` (built once)."""
        if self.graph is None:
            raise AnalysisError("timeline queries need a graph store (--graph)")
        with self._lock:
            if self._follow_index is None:
                followers: list[np.ndarray] = []
                followed: list[np.ndarray] = []
                for _, src, dst in self.graph.iter_edges():
                    followers.append(np.asarray(src, dtype=np.int64))
                    followed.append(np.asarray(dst, dtype=np.int64))
                if followers:
                    src_all = np.concatenate(followers)
                    dst_all = np.concatenate(followed)
                else:
                    src_all = np.empty(0, dtype=np.int64)
                    dst_all = np.empty(0, dtype=np.int64)
                order = np.argsort(src_all, kind="stable")
                counts = np.bincount(src_all, minlength=self.graph.n_nodes)
                indptr = np.zeros(self.graph.n_nodes + 1, dtype=np.int64)
                np.cumsum(counts, out=indptr[1:])
                self._follow_index = (dst_all[order], indptr)
                self.build_counters["row_indexes_built"] += 1
            return self._follow_index

    def rows_authored_by(self, user: str) -> np.ndarray:
        """Corpus rows of the toots ``user`` authored (ascending)."""
        order, indptr = self._rows_by_author()
        code = int(self._author_lookup.codes([user])[0])
        if code < 0:
            raise AnalysisError(f"unknown author {user!r}")
        return order[indptr[code] : indptr[code + 1]]

    def rows_homed_on(self, instance: str) -> np.ndarray:
        """Corpus rows of the toots homed on ``instance`` (ascending)."""
        order, indptr = self._rows_by_home()
        code = int(self._home_lookup.codes([instance])[0])
        if code < 0:
            raise AnalysisError(f"unknown instance {instance!r}")
        return order[indptr[code] : indptr[code + 1]]

    def rows_held_on(self, strategy: str | StrategySpec, instance: str) -> np.ndarray:
        """Rows with a copy on ``instance`` under ``strategy`` (cached)."""
        state = self.state_for(strategy)
        with self._lock:
            rows = state.holder_rows.get(instance)
            if rows is None:
                rows = state.sharded.rows_holding(instance)
                state.holder_rows[instance] = rows
            return rows

    def timeline_rows(self, user: str) -> np.ndarray:
        """Rows of ``user``'s timeline: own toots plus followed authors'."""
        if self.graph is None:
            raise AnalysisError("timeline queries need a graph store (--graph)")
        followed_codes, indptr = self._followed_index()
        node = self.graph.node_index().get(user)
        authors = [user]
        if node is not None:
            codes = np.unique(followed_codes[indptr[node] : indptr[node + 1]])
            if codes.size:
                authors.extend(str(h) for h in self.graph.handles[codes].tolist())
        order, author_indptr = self._rows_by_author()
        author_codes = self._author_lookup.codes(authors)
        parts = [
            order[author_indptr[code] : author_indptr[code + 1]]
            for code in author_codes.tolist()
            if code >= 0
        ]
        if not parts:
            raise AnalysisError(f"no toots in the timeline of {user!r}")
        rows = np.unique(np.concatenate(parts))
        return rows

    # -- queries ---------------------------------------------------------------

    @staticmethod
    def _at(curve: np.ndarray, k: int) -> float:
        """The curve value after ``k`` removals (clamped past the schedule)."""
        if k < 0:
            raise AnalysisError(
                f"the number of removed entities cannot be negative (got {k})"
            )
        return float(curve[min(k, curve.size - 1)])

    def _subset_curve(
        self, strategy: str | StrategySpec, rows: np.ndarray, failure_name: str
    ) -> np.ndarray:
        """The availability curve of a row subset (one batched reduction)."""
        state = self.state_for(strategy)
        failure = self.failure(failure_name)
        column, steps = self._removal_for(state, failure)
        subset = state.arrays.rows_incidence(rows)
        losses = losses_per_step_batch(
            subset, column, np.asarray([steps], dtype=np.int64)
        )
        return availability_from_losses(losses[0, : steps + 1], rows.size)

    def availability(
        self,
        *,
        user: str | None = None,
        instance: str | None = None,
        held_on: str | None = None,
        strategy: str | StrategySpec = "no-rep",
        failure: str = "instances/by_toots",
        k: int,
    ) -> dict[str, object]:
        """Availability after ``k`` removals, over a selectable toot subset.

        Exactly one of ``user`` (toots the user authored), ``instance``
        (toots homed there) or ``held_on`` (toots with a copy there,
        strategy-dependent) selects a subset; none of them selects the
        whole corpus — bit-identical to the batch sweep's curve at ``k``.
        """
        selectors = [s for s in (user, instance, held_on) if s is not None]
        if len(selectors) > 1:
            raise AnalysisError("pass at most one of user=, instance=, held_on=")
        spec = parse_strategy(strategy) if isinstance(strategy, str) else strategy
        if user is not None:
            rows = self.rows_authored_by(user)
            subject: dict[str, object] = {"user": user}
        elif instance is not None:
            rows = self.rows_homed_on(instance)
            subject = {"instance": instance}
        elif held_on is not None:
            rows = self.rows_held_on(spec, held_on)
            if rows.size == 0:
                raise AnalysisError(
                    f"no toot has a copy on {held_on!r} under {spec.name!r}"
                )
            subject = {"held_on": held_on}
        else:
            rows = None
            subject = {"scope": "corpus"}
        if rows is None:
            value = self._at(self.curve(spec, failure), k)
            n_toots = self.corpus.n_toots
        else:
            value = self._at(self._subset_curve(spec, rows, failure), k)
            n_toots = int(rows.size)
        return {
            **subject,
            "strategy": spec.name,
            "failure": failure,
            "k": int(k),
            "toots": n_toots,
            "availability": value,
        }

    def timeline_availability(
        self,
        user: str,
        *,
        strategy: str | StrategySpec = "no-rep",
        failure: str = "instances/by_toots",
        k: int,
    ) -> dict[str, object]:
        """Availability of ``user``'s home timeline after ``k`` removals."""
        spec = parse_strategy(strategy) if isinstance(strategy, str) else strategy
        rows = self.timeline_rows(user)
        value = self._at(self._subset_curve(spec, rows, failure), k)
        return {
            "user": user,
            "strategy": spec.name,
            "failure": failure,
            "k": int(k),
            "toots": int(rows.size),
            "availability": value,
        }

    def best_placement(
        self,
        *,
        home: str,
        n_replicas: int = 1,
        failure: str = "instances/by_toots",
    ) -> dict[str, object]:
        """The replica targets that keep a new toot alive the longest.

        Candidates are ranked survivors-first (domains the schedule never
        removes, name ascending), then latest-removed; the toot's kill
        step is ``None`` while any holder survives the whole schedule.
        """
        if n_replicas < 0:
            raise AnalysisError(
                f"the number of replicas cannot be negative (got {n_replicas})"
            )
        universe = sorted(str(d) for d in self.corpus.domains.tolist())
        if home not in set(universe):
            raise AnalysisError(f"unknown instance {home!r}")
        model = self.failure(failure)
        steps = model.effective_steps()
        removal = {
            domain: step
            for domain, step in model.removal_index().items()
            if step <= steps
        }

        def key(domain: str) -> tuple[int, int, str]:
            step = removal.get(domain)
            if step is None:
                return (0, 0, domain)
            return (1, -step, domain)

        replicas = sorted(
            (d for d in universe if d != home), key=key
        )[:n_replicas]
        holder_steps = [removal.get(d) for d in [home, *replicas]]
        if any(step is None for step in holder_steps):
            kill_step: int | None = None
        else:
            kill_step = max(holder_steps)
        return {
            "home": home,
            "failure": failure,
            "replicas": replicas,
            "kill_step": kill_step,
        }

    def uptime_seconds(self) -> float:
        """Seconds since the service object was constructed."""
        return round(time.monotonic() - self._started, 3)

    def meta(self) -> dict[str, object]:
        """Service shape: stores, sizes, warmed strategies, known failures.

        ``uptime_seconds`` is the one volatile key — strip it before
        comparing two meta answers for equality.
        """
        return {
            "corpus": str(self.corpus.path),
            "graph": str(self.graph.path) if self.graph is not None else None,
            "mmap": self.mmap,
            "n_toots": self.corpus.n_toots,
            "n_domains": int(self.corpus.domains.shape[0]),
            "strategies": sorted(self._states),
            "failures": sorted(self.failures()),
            "removal_steps": self.removal_steps,
            "build_counters": dict(self.build_counters),
            "uptime_seconds": self.uptime_seconds(),
        }

    def stats(self) -> dict[str, object]:
        """Observability snapshot: builds, uptime, and every live metric.

        The metric families come straight from the process-wide registry
        (:func:`repro.obs.metrics`), so per-endpoint HTTP latencies and
        build timings recorded by the transports show up here too.
        """
        return {
            "build_counters": dict(self.build_counters),
            "uptime_seconds": self.uptime_seconds(),
            "metrics": obs.metrics().snapshot(),
        }


#: Per-verb allowed query parameters (anything else is a typo).
_VERB_PARAMS: Mapping[str, frozenset[str]] = {
    "availability": frozenset({"user", "instance", "held_on", "strategy", "failure", "k"}),
    "timeline": frozenset({"user", "strategy", "failure", "k"}),
    "best_placement": frozenset({"home", "n_replicas", "failure"}),
    "meta": frozenset(),
    "stats": frozenset(),
}


def _int_param(params: Mapping[str, str], name: str) -> int:
    raw = params[name]
    try:
        return int(raw)
    except ValueError:
        raise AnalysisError(f"query parameter {name!r} must be an integer, got {raw!r}") from None


def handle_query(
    service: AvailabilityService, verb: str, params: Mapping[str, str]
) -> dict[str, object]:
    """Dispatch one (verb, string-parameters) query — the shared core of
    the HTTP and stdin transports.  Raises :class:`AnalysisError` /
    :class:`~repro.errors.DatasetError` on bad input; transports turn
    those into error payloads.
    """
    allowed = _VERB_PARAMS.get(verb)
    if allowed is None:
        known = ", ".join(sorted(_VERB_PARAMS))
        raise AnalysisError(f"unknown query verb {verb!r} (known: {known})")
    unknown = set(params) - allowed
    if unknown:
        raise AnalysisError(
            f"unknown parameters for {verb!r}: {', '.join(sorted(unknown))}"
        )
    if verb == "meta":
        return service.meta()
    if verb == "stats":
        return service.stats()
    if verb == "best_placement":
        if "home" not in params:
            raise AnalysisError("best_placement needs home=<instance>")
        return service.best_placement(
            home=params["home"],
            n_replicas=_int_param(params, "n_replicas") if "n_replicas" in params else 1,
            failure=params.get("failure", "instances/by_toots"),
        )
    if "k" not in params:
        raise AnalysisError(f"{verb} needs k=<removals>")
    common = {
        "strategy": params.get("strategy", "no-rep"),
        "failure": params.get("failure", "instances/by_toots"),
        "k": _int_param(params, "k"),
    }
    if verb == "timeline":
        if "user" not in params:
            raise AnalysisError("timeline needs user=<handle>")
        return service.timeline_availability(params["user"], **common)
    return service.availability(
        user=params.get("user"),
        instance=params.get("instance"),
        held_on=params.get("held_on"),
        **common,
    )
