"""Tests for category and activity-policy breakdowns (Figs. 3-4)."""

from __future__ import annotations

import pytest

from repro.core import categories
from repro.crawler.monitor import InstanceSnapshot, MonitoringLog
from repro.datasets.instances import InstanceMetadata, InstancesDataset
from repro.errors import AnalysisError


def make_dataset() -> InstancesDataset:
    """Five instances: three tagged (tech, adult, tech+games), two untagged."""
    spec = {
        "tech.example": ((u := 100), 1_000, ("tech",), (), ("spam",), False),
        "adult.example": (900, 5_000, ("adult",), ("pornography_with_nsfw",), ("spam",), False),
        "mixed.example": (50, 2_000, ("tech", "games"), (), (), True),
        "plain1.example": (500, 9_000, (), (), (), False),
        "plain2.example": (300, 3_000, (), (), (), False),
    }
    log = MonitoringLog(interval_minutes=60)
    metadata = {}
    for domain, (users, toots, cats, allowed, prohibited, allows_all) in spec.items():
        log.snapshots.append(
            InstanceSnapshot(
                domain=domain, minute=0, online=True, user_count=users, toot_count=toots
            )
        )
        metadata[domain] = InstanceMetadata(
            domain=domain,
            categories=cats,
            allowed_activities=allowed,
            prohibited_activities=prohibited,
            allows_all_activities=allows_all,
        )
    return InstancesDataset(log=log, metadata=metadata)


class TestTaggingCoverage:
    def test_coverage_fractions(self):
        coverage = categories.tagging_coverage(make_dataset())
        assert coverage["tagged_instances"] == 3
        assert coverage["instance_coverage"] == pytest.approx(3 / 5)
        assert coverage["user_coverage"] == pytest.approx(1050 / 1850)
        assert coverage["toot_coverage"] == pytest.approx(8000 / 20_000)

    def test_pipeline_tagging_minority(self, datasets):
        coverage = categories.tagging_coverage(datasets.instances)
        assert 0.0 < coverage["instance_coverage"] < 0.5


class TestCategoryBreakdown:
    def test_shares_relative_to_tagged_subset(self):
        breakdown = {share.category: share for share in categories.category_breakdown(make_dataset())}
        assert breakdown["tech"].instances == 2
        assert breakdown["tech"].instance_share == pytest.approx(2 / 3)
        assert breakdown["adult"].instance_share == pytest.approx(1 / 3)
        # adult: few instances, most users (the paper's outlier)
        assert breakdown["adult"].user_share > breakdown["tech"].user_share
        assert breakdown["games"].instances == 1

    def test_sorted_by_instance_share(self):
        shares = categories.category_breakdown(make_dataset())
        fractions = [share.instance_share for share in shares]
        assert fractions == sorted(fractions, reverse=True)

    def test_no_tagged_instances_raises(self):
        log = MonitoringLog(interval_minutes=60)
        log.snapshots.append(InstanceSnapshot(domain="a.example", minute=0, online=True))
        dataset = InstancesDataset(log=log)
        with pytest.raises(AnalysisError):
            categories.category_breakdown(dataset)

    def test_pipeline_breakdown_has_multiple_categories(self, datasets):
        shares = categories.category_breakdown(datasets.instances)
        assert len(shares) >= 3
        assert all(0.0 <= share.instance_share <= 1.0 for share in shares)


class TestActivityBreakdown:
    def test_prohibit_and_allow_shares(self):
        shares = {share.activity: share for share in categories.activity_breakdown(make_dataset())}
        spam = shares["spam"]
        assert spam.prohibiting_instances == 2
        assert spam.prohibit_instance_share == pytest.approx(2 / 3)
        # the allows-all instance counts as allowing spam
        assert spam.allowing_instances == 1
        porn = shares["pornography_with_nsfw"]
        assert porn.allowing_instances == 2  # explicit allow + allows-all
        assert porn.allow_user_share == pytest.approx((900 + 50) / 1050)

    def test_policy_coverage(self):
        coverage = categories.policy_coverage(make_dataset())
        assert coverage["tagged"] == 3
        assert coverage["allow_all_share"] == pytest.approx(1 / 3)
        assert coverage["with_prohibition_share"] == pytest.approx(2 / 3)

    def test_pipeline_spam_is_most_prohibited(self, datasets):
        shares = categories.activity_breakdown(datasets.instances)
        assert shares, "expected at least one activity share"
        most_prohibited = shares[0]
        assert most_prohibited.prohibit_instance_share >= shares[-1].prohibit_instance_share
