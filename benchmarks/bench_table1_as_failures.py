"""Table 1 — AS-wide failures detected from correlated instance outages.

Paper shape: six ASes suffer at least one outage during which every
hosted instance is simultaneously unreachable; the largest (Sakura) takes
out ~97 instances and millions of toots at once.

Thin timing wrapper over the ``table1`` registry runner (the runner uses
a min-instances threshold of 3; the paper uses 8 at full 4,328-instance
scale).
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_table1_as_failures(benchmark, ctx):
    result = benchmark(lambda: get_experiment("table1").run(ctx))
    emit("Table 1 — AS-wide failures", result.render_text())

    assert result.scalar("failure_report_count") >= 1, (
        "expected at least one AS-wide failure (the scenario injects several)"
    )
    assert result.scalar("min_report_instances") >= result.scalar("min_instances_threshold")
    assert result.scalar("min_report_failures") >= 1
    # the worst AS failure takes down many instances and their content at once
    assert result.scalar("max_report_toots") > 0
