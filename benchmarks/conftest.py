"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures against
the *same* "small" synthetic fediverse (a ~1/20th-scale population), so
the scenario and the measurement pipeline are built once per session.
The per-figure benches are thin timing wrappers over the experiment
registry (``get_experiment(id).run(ctx)``): the ``ctx`` fixture wraps
the session-scoped pipeline in an
:class:`~repro.experiments.context.ExperimentContext`, the library-level
equivalent of what these fixtures do inside pytest.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the regenerated
tables/series next to the timing numbers.
"""

from __future__ import annotations

import pytest

from repro import CollectedDatasets, build_scenario, collect_datasets
from repro.datasets import TwitterBaselines
from repro.experiments import ExperimentContext

BENCH_SEED = 42


@pytest.fixture(scope="session")
def network():
    """The small benchmark fediverse (150 instances, 6K users, ~60K toots)."""
    return build_scenario("small", seed=BENCH_SEED)


@pytest.fixture(scope="session")
def data(network) -> CollectedDatasets:
    """The full measurement pipeline over the benchmark fediverse.

    The monitor probes every two hours (the paper probed every five
    minutes; two-hourly probing keeps the same relative resolution for
    outage detection while staying fast at benchmark scale).
    """
    return collect_datasets(network, monitor_interval_minutes=2 * 60)


@pytest.fixture(scope="session")
def twitter() -> TwitterBaselines:
    """Twitter comparison baselines (2007 uptime, 2011 follower graph)."""
    return TwitterBaselines.generate(days=300, n_users=4_000, seed=2007)


@pytest.fixture(scope="session")
def ctx(network, data) -> ExperimentContext:
    """The session pipeline wrapped as a shared experiment context.

    Placement maps, rankings and incidence matrices memoise here, so the
    replication benches share artefacts exactly as ``run --all`` does.
    The Twitter baselines are *not* pre-seeded: the context generates
    them lazily (same parameters as the ``twitter`` fixture), so benches
    that never compare against Twitter never pay for them.
    """
    return ExperimentContext.from_datasets(
        data,
        network=network,
        preset="small",
        seed=BENCH_SEED,
        monitor_interval_minutes=2 * 60,
    )


def emit(title: str, body: str) -> None:
    """Print a regenerated table/series block (visible with ``-s``)."""
    print(f"\n=== {title} ===\n{body}\n")
