"""Fig. 9 — certificate authority footprint and expiry-driven outages.

Paper shape: Let's Encrypt serves >85% of instances; its 90-day expiry
policy causes correlated outages (worst day: 105 instances down at once);
certificate expiries explain ~6.3% of observed outages.

Thin timing wrapper over the ``fig9`` registry runner.
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_fig09_certificates(benchmark, ctx):
    result = benchmark(lambda: get_experiment("fig9").run(ctx))
    emit("Fig. 9 — certificate footprint and expiry outages", result.render_text())

    assert result.scalar("lets_encrypt_share") > 0.6
    assert result.scalar("max_footprint_share") == result.scalar("lets_encrypt_share")
    # a correlated expiry spike exists (paper: 105 instances on one day)
    assert result.scalar("worst_expiry_day_count") >= 2
    assert 0.0 < result.scalar("certificate_outage_share") < 0.5
