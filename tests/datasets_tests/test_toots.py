"""Tests for the toots dataset."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.crawler.toot_crawler import TootRecord
from repro.datasets.toots import TootsDataset


def record(
    toot_id: int,
    author: str,
    home: str,
    collected_from: str | None = None,
    is_boost: bool = False,
) -> TootRecord:
    return TootRecord(
        toot_id=toot_id,
        url=f"https://{home}/@{author}/{toot_id}",
        account=f"{author}@{home}",
        author_domain=home,
        collected_from=collected_from or home,
        created_at=toot_id,
        is_boost=is_boost,
    )


def make_dataset() -> TootsDataset:
    observations = {
        "alpha.example": [
            record(1, "alice", "alpha.example"),
            record(2, "alice", "alpha.example"),
            record(3, "bob", "beta.example", collected_from="alpha.example"),
        ],
        "beta.example": [
            record(3, "bob", "beta.example"),
            record(1, "alice", "alpha.example", collected_from="beta.example"),
            record(4, "bob", "beta.example", is_boost=True),
        ],
    }
    records = [r for observed in observations.values() for r in observed]
    return TootsDataset(records=records, observed_by_instance=observations, crawl_minute=99)


class TestCatalogue:
    def test_deduplication_by_url(self):
        dataset = make_dataset()
        assert len(dataset) == 4
        assert dataset.author_count() == 2
        assert set(dataset.authors()) == {"alice@alpha.example", "bob@beta.example"}

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            TootsDataset(records=[])

    def test_per_author_and_per_instance_counts(self):
        dataset = make_dataset()
        assert dataset.toots_per_author()["alice@alpha.example"] == 2
        assert dataset.toots_per_instance() == {"alpha.example": 2, "beta.example": 2}
        assert dataset.home_instances() == ["alpha.example", "beta.example"]
        assert len(dataset.toots_from_instance("alpha.example")) == 2
        assert len(dataset.toots_by_author("bob@beta.example")) == 2

    def test_boosts_and_originals(self):
        dataset = make_dataset()
        assert dataset.boost_count() == 1
        assert len(dataset.original_toots()) == 3

    def test_coverage(self):
        dataset = make_dataset()
        assert dataset.coverage(8) == pytest.approx(0.5)
        assert dataset.coverage(2) == 1.0
        with pytest.raises(DatasetError):
            dataset.coverage(0)


class TestTimelineComposition:
    def test_home_remote_split(self):
        dataset = make_dataset()
        alpha = dataset.timeline_composition("alpha.example")
        assert alpha.home_toots == 2
        assert alpha.remote_toots == 1
        assert alpha.home_fraction == pytest.approx(2 / 3)
        assert alpha.remote_fraction == pytest.approx(1 / 3)

    def test_unknown_instance(self):
        dataset = make_dataset()
        with pytest.raises(DatasetError):
            dataset.timeline_composition("ghost.example")

    def test_all_compositions(self):
        dataset = make_dataset()
        compositions = {c.domain: c for c in dataset.timeline_compositions()}
        assert set(compositions) == {"alpha.example", "beta.example"}
        assert compositions["beta.example"].home_toots == 2

    def test_empty_composition_fractions(self):
        dataset = TootsDataset(
            records=[record(1, "alice", "alpha.example")],
            observed_by_instance={"empty.example": []},
        )
        composition = dataset.timeline_composition("empty.example")
        assert composition.total == 0
        assert composition.home_fraction == 0.0
        assert composition.remote_fraction == 0.0

    def test_replication_counts(self):
        dataset = make_dataset()
        counts = dataset.replication_counts()
        assert counts["https://alpha.example/@alice/1"] == 1   # seen on beta too
        assert counts["https://alpha.example/@alice/2"] == 0
        assert counts["https://beta.example/@bob/3"] == 1      # seen on alpha too


class TestFromCrawl:
    def test_from_crawl_against_pipeline(self, datasets):
        toots = datasets.toots
        assert len(toots) > 0
        assert toots.author_count() > 0
        assert toots.crawl_minute > 0
        # every observed instance appears with a composition
        assert len(toots.timeline_compositions()) == len(toots.observed_instances())
