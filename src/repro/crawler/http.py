"""A simulated HTTP transport over the fediverse simulator.

The crawlers never touch :class:`~repro.fediverse.network.FediverseNetwork`
objects directly; they issue GET requests for the same URLs the paper's
crawlers fetched and receive JSON-like payloads back.  This keeps the
measurement code paths faithful to the original methodology (including
failure modes: offline instances, crawl-blocked instances, rate limits,
unknown endpoints).

Supported endpoints
-------------------

``/api/v1/instance``
    The instance metadata document polled by the monitor.
``/api/v1/timelines/public?local=&max_id=&limit=``
    The (federated or local) public timeline, paged with ``max_id``.
``/api/v1/directory?page=&per_page=``
    The public account directory, used to enumerate accounts.
``/users/<name>/followers?page=``
    Follower lists, paged like the HTML pages the paper scraped.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro import obs

from repro.errors import (
    CrawlBlockedError,
    HTTPError,
    InstanceUnavailableError,
    RateLimitError,
)
from repro.fediverse.entities import Toot
from repro.fediverse.instance import FOLLOWERS_PAGE_SIZE, InstanceServer
from repro.fediverse.network import FediverseNetwork
from repro.fediverse.timeline import DEFAULT_PAGE_SIZE


def toot_to_payload(toot: Toot, collected_from: str) -> dict[str, Any]:
    """Serialise a toot the way the public timeline API exposes it."""
    return {
        "id": toot.toot_id,
        "url": toot.url,
        "account": toot.author.handle,
        "account_domain": toot.author.domain,
        "created_at": toot.created_at,
        "visibility": toot.visibility.value,
        "sensitive": toot.content_warning,
        "tags": list(toot.hashtags),
        "media_attachments": toot.media_count,
        "favourites_count": toot.favourites,
        "reblog_of_id": toot.boost_of,
        "collected_from": collected_from,
    }


@dataclass(frozen=True, slots=True)
class HTTPResponse:
    """The outcome of a successful simulated GET request."""

    url: str
    status: int
    payload: Any


@dataclass
class TransportStats:
    """Counters describing crawler traffic, useful for tests and reports."""

    requests: int = 0
    errors: int = 0
    by_domain: dict[str, int] = field(default_factory=dict)


class SimulatedTransport:
    """Resolves crawler GET requests against the simulated fediverse."""

    def __init__(
        self,
        network: FediverseNetwork,
        rate_limit_per_domain: int | None = None,
    ) -> None:
        self._network = network
        self._rate_limit = rate_limit_per_domain
        self._lock = threading.Lock()
        self.stats = TransportStats()

    @property
    def network(self) -> FediverseNetwork:
        """The fediverse this transport resolves requests against."""
        return self._network

    def known_domains(self) -> list[str]:
        """Return every instance domain the transport can route to."""
        return self._network.domains()

    # -- request accounting ---------------------------------------------------

    def _account(self, url: str, domain: str) -> None:
        with self._lock:
            self.stats.requests += 1
            seen = self.stats.by_domain.get(domain, 0) + 1
            self.stats.by_domain[domain] = seen
            if self._rate_limit is not None and seen > self._rate_limit:
                self.stats.errors += 1
                raise RateLimitError(url, retry_after=30.0)

    def reset_budget(self, domain: str | None = None) -> None:
        """Reset the per-domain request budget (e.g. after a backoff window)."""
        with self._lock:
            if domain is None:
                self.stats.by_domain.clear()
            else:
                self.stats.by_domain.pop(domain, None)

    # -- request handling -------------------------------------------------------

    def get(self, url: str, at_minute: int | None = None) -> HTTPResponse:
        """Perform a GET request at simulation time ``at_minute``.

        Raises a subclass of :class:`~repro.errors.HTTPError` on failure,
        mirroring how a real crawler experiences the network.
        """
        # the whole-request observation lives in a wrapper so the
        # metrics-off path costs one module-global check and no clock reads
        if not obs.metrics_enabled():
            return self._get(url, at_minute)
        started = time.perf_counter()
        try:
            response = self._get(url, at_minute)
        except Exception as error:
            elapsed = time.perf_counter() - started
            domain = urlparse(url).netloc
            obs.observe("repro_crawl_request_seconds", elapsed, domain=domain)
            obs.count(
                "repro_crawl_requests_total",
                domain=domain,
                outcome=type(error).__name__,
            )
            raise
        elapsed = time.perf_counter() - started
        domain = urlparse(url).netloc
        obs.observe("repro_crawl_request_seconds", elapsed, domain=domain)
        obs.count("repro_crawl_requests_total", domain=domain, outcome="ok")
        return response

    def _get(self, url: str, at_minute: int | None = None) -> HTTPResponse:
        parsed = urlparse(url)
        domain = parsed.netloc
        minute = self._network.clock.now if at_minute is None else at_minute
        self._account(url, domain)

        if domain not in self._network:
            self._fail(url)
        instance = self._network.get_instance(domain)
        if instance.descriptor.created_at > minute:
            self._fail(url)
        if not self._network.is_online(domain, minute):
            with self._lock:
                self.stats.errors += 1
            raise InstanceUnavailableError(url)

        query = parse_qs(parsed.query)
        path = parsed.path.rstrip("/")
        if path == "/api/v1/instance":
            return HTTPResponse(url, 200, instance.instance_api_document(minute))
        if path == "/api/v1/timelines/public":
            return HTTPResponse(url, 200, self._timeline(instance, query, url))
        if path == "/api/v1/directory":
            return HTTPResponse(url, 200, self._directory(instance, query))
        if path.startswith("/users/") and path.endswith("/followers"):
            username = path.split("/")[2]
            return HTTPResponse(url, 200, self._followers(instance, username, query, url))
        self._fail(url)
        raise AssertionError("unreachable")  # pragma: no cover

    def _fail(self, url: str, status: int = 404, reason: str = "not found") -> None:
        with self._lock:
            self.stats.errors += 1
        raise HTTPError(url, status, reason)

    # -- endpoint implementations -----------------------------------------------

    @staticmethod
    def _int_param(query: dict[str, list[str]], name: str, default: int | None) -> int | None:
        values = query.get(name)
        if not values:
            return default
        return int(values[0])

    def _timeline(
        self, instance: InstanceServer, query: dict[str, list[str]], url: str
    ) -> list[dict[str, Any]]:
        if instance.descriptor.crawl_blocked:
            with self._lock:
                self.stats.errors += 1
            raise CrawlBlockedError(url)
        local_only = query.get("local", ["false"])[0].lower() in ("1", "true", "yes")
        max_id = self._int_param(query, "max_id", None)
        limit = self._int_param(query, "limit", DEFAULT_PAGE_SIZE) or DEFAULT_PAGE_SIZE
        timeline = instance.local_timeline if local_only else instance.federated_timeline
        toots = timeline.page(max_id=max_id, limit=limit, public_only=True)
        return [toot_to_payload(toot, collected_from=instance.domain) for toot in toots]

    def _directory(
        self, instance: InstanceServer, query: dict[str, list[str]]
    ) -> list[dict[str, Any]]:
        page = self._int_param(query, "page", 1) or 1
        per_page = self._int_param(query, "per_page", 80) or 80
        usernames = sorted(instance.users)
        start = (page - 1) * per_page
        selected = usernames[start : start + per_page]
        return [
            {
                "username": username,
                "domain": instance.domain,
                "created_at": instance.users[username].created_at,
                "statuses_count": sum(
                    1 for toot in instance.toots.values() if toot.author.username == username
                ),
            }
            for username in selected
        ]

    def _followers(
        self,
        instance: InstanceServer,
        username: str,
        query: dict[str, list[str]],
        url: str,
    ) -> dict[str, Any]:
        if not instance.has_user(username):
            self._fail(url, 404, f"unknown user {username!r}")
        page = self._int_param(query, "page", 1) or 1
        followers = instance.followers_page(username, page, FOLLOWERS_PAGE_SIZE)
        total = len(instance.followers_of(username))
        return {
            "account": f"{username}@{instance.domain}",
            "page": page,
            "total": total,
            "followers": [ref.handle for ref in followers],
            "has_more": page * FOLLOWERS_PAGE_SIZE < total,
        }
