"""Fig. 14 — ratio of home toots to remote toots on federated timelines.

Paper shape: 78% of instances generate under 10% of the toots on their
own federated timeline and 5% generate none at all; the more toots an
instance generates, the more often its content is replicated elsewhere
(correlation 0.97) — a few "feeder" instances supply the whole network.
"""

from __future__ import annotations

from repro.core import federation_analysis
from repro.reporting import format_percentage, format_table

from benchmarks.conftest import emit


def test_fig14_home_remote_series(benchmark, data):
    points = benchmark(lambda: federation_analysis.home_remote_series(data.toots))
    sampled = points[:: max(1, len(points) // 12)]
    rows = [
        [point.domain, format_percentage(point.home_share), format_percentage(point.remote_share), point.total_toots]
        for point in sampled
    ]
    emit(
        "Fig. 14 — home vs remote toots per federated timeline (ordered by home share)",
        format_table(["instance", "home", "remote", "timeline toots"], rows),
    )
    shares = [point.home_share for point in points]
    assert shares == sorted(shares)


def test_fig14_feeder_summary(benchmark, data):
    summary = benchmark(lambda: federation_analysis.feeder_summary(data.toots))
    emit(
        "Fig. 14 — feeder summary",
        format_table(
            ["metric", "measured", "paper"],
            [
                ["instances with <10% home toots", format_percentage(summary["share_under_10pct_home"]), "78%"],
                ["instances fully remote", format_percentage(summary["share_fully_remote"]), "5%"],
                ["toots vs replication correlation", round(summary["toots_vs_replication_correlation"], 2), "0.97"],
            ],
        ),
    )
    assert summary["share_under_10pct_home"] > 0.3
    assert summary["toots_vs_replication_correlation"] > 0.5
