"""Runners for the graph-resilience experiments (Figs. 11-14, Table 2).

Section 5.1's removal sweeps all dispatch through the engine
(:mod:`repro.engine.resilience`): the public ``repro.core.resilience``
sweep functions are thin wrappers over the CSR/`csgraph` kernels, so no
runner here touches the legacy ``_*_python`` loops.
"""

from __future__ import annotations

import numpy as np

from repro.core import federation_analysis, resilience
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import register_runner
from repro.experiments.results import ExperimentResult, ResultSeries, ResultTable
from repro.reporting import format_percentage
from repro.stats.distributions import fit_power_law_exponent

FIG12_ROUNDS = 10
FIG13_INSTANCE_STEPS = 30
FIG13_AS_STEPS = 15


@register_runner("fig11")
def run_fig11(ctx: ExperimentContext) -> ExperimentResult:
    follower_degrees = ctx.data.graphs.out_degrees()
    federation_degrees = ctx.data.graphs.federation_out_degrees()
    twitter_degrees = [degree for _, degree in ctx.twitter.follower_graph.out_degree()]
    cdfs = {
        "mastodon_users": resilience.degree_cdf([d for d in follower_degrees if d > 0]),
        "mastodon_instances": resilience.degree_cdf([d for d in federation_degrees if d > 0]),
        "twitter_users": resilience.degree_cdf([d for d in twitter_degrees if d > 0]),
    }
    rows = []
    scalars: dict[str, object] = {}
    series = []
    for name, cdf in cdfs.items():
        sample = list(cdf.values)
        median = float(np.median(sample))
        p99 = cdf.quantile(0.99)
        rows.append(
            [name, len(sample), round(median, 1), round(p99, 1),
             round(fit_power_law_exponent(sample), 2)]
        )
        scalars[f"{name}_nodes"] = len(sample)
        scalars[f"{name}_median_degree"] = median
        scalars[f"{name}_p99_degree"] = p99
        xs, ys = cdf.series()
        series.append(ResultSeries.build(name, xs, ys, x_label="out-degree", y_label="CDF"))
    return ExperimentResult.build(
        "fig11",
        "Degree distributions",
        tables=[
            ResultTable.build(
                "Fig. 11 — out-degree distributions",
                ["graph", "nodes", "median degree", "p99 degree", "power-law exponent"],
                rows,
            )
        ],
        series=series,
        scalars=scalars,
    )


@register_runner("fig12")
def run_fig12(ctx: ExperimentContext) -> ExperimentResult:
    mastodon_steps = resilience.user_removal_sweep(
        ctx.data.graphs.follower_graph, rounds=FIG12_ROUNDS, fraction_per_round=0.01
    )
    twitter_steps = resilience.user_removal_sweep(
        ctx.twitter.follower_graph, rounds=FIG12_ROUNDS, fraction_per_round=0.01
    )
    return ExperimentResult.build(
        "fig12",
        "Removing top user accounts",
        tables=[
            ResultTable.build(
                "Fig. 12 — removing the top 1% of accounts per round",
                ["removed", "Mastodon LCC", "Mastodon components",
                 "Twitter LCC", "Twitter components"],
                [
                    [format_percentage(m.removed_fraction), format_percentage(m.lcc_fraction),
                     m.components, format_percentage(t.lcc_fraction), t.components]
                    for m, t in zip(mastodon_steps, twitter_steps)
                ],
            )
        ],
        series=[
            ResultSeries.build(
                "mastodon_lcc",
                [step.removed_fraction for step in mastodon_steps],
                [step.lcc_fraction for step in mastodon_steps],
                x_label="removed fraction",
                y_label="LCC fraction",
            ),
            ResultSeries.build(
                "twitter_lcc",
                [step.removed_fraction for step in twitter_steps],
                [step.lcc_fraction for step in twitter_steps],
                x_label="removed fraction",
                y_label="LCC fraction",
            ),
        ],
        scalars={
            "mastodon_initial_lcc": mastodon_steps[0].lcc_fraction,
            "mastodon_final_lcc": mastodon_steps[-1].lcc_fraction,
            "mastodon_lcc_drop": mastodon_steps[0].lcc_fraction - mastodon_steps[-1].lcc_fraction,
            "twitter_lcc_drop": twitter_steps[0].lcc_fraction - twitter_steps[-1].lcc_fraction,
        },
    )


@register_runner("fig13")
def run_fig13(ctx: ExperimentContext) -> ExperimentResult:
    federation = ctx.data.graphs.federation_graph
    users = ctx.users_per_instance
    reported_toots = ctx.data.instances.toots_per_instance()

    instance_sweeps: dict[str, list[resilience.RemovalStep]] = {}
    for criterion in ("users", "toots", "connections"):
        ranking = resilience.rank_instances(federation, users, reported_toots, by=criterion)
        instance_sweeps[criterion] = resilience.instance_removal_sweep(
            federation, ranking, steps=FIG13_INSTANCE_STEPS, per_step=1
        )

    by_instances = resilience.as_removal_sweep(
        federation, ctx.asn_of, ctx.as_ranking("instances"), steps=FIG13_AS_STEPS
    )
    by_users = resilience.as_removal_sweep(
        federation, ctx.asn_of, ctx.as_ranking("users"), steps=FIG13_AS_STEPS
    )

    instance_rows = []
    for removed in (0, 5, 10, 20, 30):
        row: list[object] = [removed]
        for criterion in ("users", "toots", "connections"):
            steps = instance_sweeps[criterion]
            step = steps[min(removed, len(steps) - 1)]
            row.append(format_percentage(step.lcc_fraction))
        instance_rows.append(row)

    scalars: dict[str, object] = {
        "as_by_instances_initial_lcc": by_instances[0].lcc_fraction,
        "as_by_instances_lcc_after_5": by_instances[5].lcc_fraction,
        "as_by_instances_components_after_5": by_instances[5].components,
        "as_by_users_components_after_5": by_users[5].components,
    }
    for criterion, steps in instance_sweeps.items():
        fractions = [step.lcc_fraction for step in steps]
        scalars[f"instance_{criterion}_monotonic"] = all(
            a >= b - 1e-9 for a, b in zip(fractions, fractions[1:])
        )
        scalars[f"instance_{criterion}_initial_lcc"] = fractions[0]
        scalars[f"instance_{criterion}_lcc_after_5"] = fractions[5]

    return ExperimentResult.build(
        "fig13",
        "Removing top instances and ASes from the federation graph",
        tables=[
            ResultTable.build(
                "Fig. 13(a) — LCC of GF after removing top-N instances",
                ["instances removed", "by users", "by toots", "by connections"],
                instance_rows,
            ),
            ResultTable.build(
                "Fig. 13(b) — LCC/components of GF after removing top-N ASes",
                ["ASes removed", "LCC (rank by instances)", "components",
                 "LCC (rank by users)", "components"],
                [
                    [index, format_percentage(step_i.lcc_fraction), step_i.components,
                     format_percentage(step_u.lcc_fraction), step_u.components]
                    for index, (step_i, step_u) in enumerate(zip(by_instances, by_users))
                ],
            ),
        ],
        series=[
            ResultSeries.build(
                "as_removal_by_instances",
                list(range(len(by_instances))),
                [step.lcc_fraction for step in by_instances],
                x_label="ASes removed",
                y_label="LCC fraction",
            ),
            ResultSeries.build(
                "as_removal_by_users",
                list(range(len(by_users))),
                [step.lcc_fraction for step in by_users],
                x_label="ASes removed",
                y_label="LCC fraction",
            ),
        ],
        scalars=scalars,
    )


@register_runner("fig14")
def run_fig14(ctx: ExperimentContext) -> ExperimentResult:
    points = federation_analysis.home_remote_series(ctx.data.toots)
    summary = federation_analysis.feeder_summary(ctx.data.toots)
    sampled = points[:: max(1, len(points) // 12)]
    home_shares = [point.home_share for point in points]
    return ExperimentResult.build(
        "fig14",
        "Home vs remote toots",
        tables=[
            ResultTable.build(
                "Fig. 14 — home vs remote toots per federated timeline (ordered by home share)",
                ["instance", "home", "remote", "timeline toots"],
                [
                    [point.domain, format_percentage(point.home_share),
                     format_percentage(point.remote_share), point.total_toots]
                    for point in sampled
                ],
            ),
            ResultTable.build(
                "Fig. 14 — feeder summary",
                ["metric", "measured", "paper"],
                [
                    ["instances with <10% home toots",
                     format_percentage(summary["share_under_10pct_home"]), "78%"],
                    ["instances fully remote",
                     format_percentage(summary["share_fully_remote"]), "5%"],
                    ["toots vs replication correlation",
                     round(summary["toots_vs_replication_correlation"], 2), "0.97"],
                ],
            ),
        ],
        series=[
            ResultSeries.build(
                "home_share",
                list(range(len(points))),
                home_shares,
                x_label="instance rank",
                y_label="home toot share",
            )
        ],
        scalars={
            "instance_count": len(points),
            "home_shares_sorted": home_shares == sorted(home_shares),
            "share_under_10pct_home": summary["share_under_10pct_home"],
            "share_fully_remote": summary["share_fully_remote"],
            "toots_vs_replication_correlation": summary["toots_vs_replication_correlation"],
        },
    )


@register_runner("table2")
def run_table2(ctx: ExperimentContext) -> ExperimentResult:
    rows_data = federation_analysis.top_instances_report(
        ctx.data.toots, ctx.data.graphs, ctx.data.instances, top=10
    )
    home_toots = [row.home_toots for row in rows_data]
    return ExperimentResult.build(
        "table2",
        "Top-10 instances",
        tables=[
            ResultTable.build(
                "Table 2 — top 10 instances by home toots",
                ["Domain", "Home toots", "Users", "U-OD", "U-ID",
                 "T-OD", "T-ID", "I-OD", "I-ID", "Run by", "AS (country)"],
                [
                    [row.domain, row.home_toots, row.users,
                     row.user_out_degree, row.user_in_degree,
                     row.toot_out_degree, row.toot_in_degree,
                     row.instance_out_degree, row.instance_in_degree,
                     row.operator, f"{row.as_name} ({row.country})"]
                    for row in rows_data
                ],
            )
        ],
        scalars={
            "row_count": len(rows_data),
            "top_domain": rows_data[0].domain if rows_data else None,
            "home_toots_sorted_desc": home_toots == sorted(home_toots, reverse=True),
            "top_has_federation_degree": bool(
                rows_data
                and (rows_data[0].instance_out_degree > 0 or rows_data[0].instance_in_degree > 0)
            ),
            "all_as_names_present": all(bool(row.as_name) for row in rows_data),
        },
    )
