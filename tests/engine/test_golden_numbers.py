"""Golden-number regression pins for the replication headline stats.

The paper reports that under subscription replication ~9.7% of toots
have no replica while ~23% have more than ten (Section 5.2).  Our seeded
tiny scenario (``build_scenario("tiny", seed=11)`` via the session
``datasets`` fixture) reproduces the *shape* of those headlines at 1/400
of the paper's 67M-toot scale; the exact values below were measured once
and pinned so that refactors of the replication/engine stack cannot
silently drift the numbers.  If a change legitimately alters them (e.g.
a new scenario generator), re-measure and update the pins deliberately.

The switch to the vectorised placement builders (PR 2,
:mod:`repro.engine.placement`) deliberately left every pin unchanged:
the strategies pinned here (no replication, subscription replication)
are deterministic and the arrays-backed builders reproduce the legacy
holder sets exactly — only seeded *random* placements differ, because
the batched draw consumes the RNG stream in a different order, and no
pin depends on those.
"""

from __future__ import annotations

import pytest

from repro.core import replication, resilience

# Measured on the seeded tiny scenario; update only on deliberate changes.
GOLDEN_TOOTS = 5593
GOLDEN_WITHOUT_REPLICA = 1832
GOLDEN_MORE_THAN_10 = 637
GOLDEN_SHARE_WITHOUT = 0.32755229751475057  # paper headline: ~9.7%
GOLDEN_SHARE_GT10 = 0.11389236545682102  # paper headline: ~23%
GOLDEN_MEAN_REPLICAS = 3.3559806901484
GOLDEN_SUBSCRIPTION_AT_10 = 0.6622563919184695
GOLDEN_NO_REPLICATION_AT_10 = 0.16538530305739318

EXACT = dict(rel=1e-12, abs=0.0)


@pytest.fixture(scope="module")
def subscription_placements(datasets):
    return replication.subscription_replication(datasets.toots, datasets.graphs)


class TestReplicationHeadlines:
    def test_replica_counts_pinned(self, subscription_placements):
        counts = subscription_placements.replica_counts()
        assert len(counts) == GOLDEN_TOOTS
        assert sum(1 for c in counts if c == 0) == GOLDEN_WITHOUT_REPLICA
        assert sum(1 for c in counts if c > 10) == GOLDEN_MORE_THAN_10

    def test_replication_summary_pinned(self, subscription_placements):
        summary = subscription_placements.replication_summary()
        assert summary["share_without_replica"] == pytest.approx(
            GOLDEN_SHARE_WITHOUT, **EXACT
        )
        assert summary["share_with_more_than_10"] == pytest.approx(
            GOLDEN_SHARE_GT10, **EXACT
        )
        assert summary["mean_replicas"] == pytest.approx(GOLDEN_MEAN_REPLICAS, **EXACT)

    def test_summary_matches_paper_shape(self, subscription_placements):
        """The qualitative headline survives: some toots are un-replicated,
        a noticeable tail is heavily replicated (paper: 9.7% / 23%)."""
        summary = subscription_placements.replication_summary()
        assert 0.0 < summary["share_without_replica"] < 0.6
        assert 0.0 < summary["share_with_more_than_10"] < 0.5
        assert summary["mean_replicas"] > 1.0

    def test_availability_after_top10_removal_pinned(self, datasets, subscription_placements):
        ranking = resilience.rank_instances(
            datasets.graphs.federation_graph,
            toots_per_instance=datasets.toots.toots_per_instance(),
            by="toots",
        )
        sub_curve = replication.availability_under_instance_removal(
            subscription_placements, ranking, steps=10
        )
        none_curve = replication.availability_under_instance_removal(
            replication.no_replication(datasets.toots), ranking, steps=10
        )
        sub_at_10 = replication.availability_at(sub_curve, 10)
        none_at_10 = replication.availability_at(none_curve, 10)
        assert sub_at_10 == pytest.approx(GOLDEN_SUBSCRIPTION_AT_10, **EXACT)
        assert none_at_10 == pytest.approx(GOLDEN_NO_REPLICATION_AT_10, **EXACT)
        # the paper's direction: replication recovers most of the loss
        assert sub_at_10 > none_at_10 + 0.2
