"""Fig. 13 — removing top instances / ASes from the federation graph GF.

Paper shape: removing top instances degrades the LCC roughly linearly
(much gentler than the social graph's collapse); removing whole ASes is
far more damaging — five ASes take the LCC from 92% to roughly half, and
ranking ASes by hosted users shatters GF into more components than
ranking by hosted instances.

Thin timing wrapper over the ``fig13`` registry runner (the sweeps
dispatch through the engine's CSR/csgraph kernels).
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_fig13_instance_as_removal(benchmark, ctx):
    result = benchmark(lambda: get_experiment("fig13").run(ctx))
    emit("Fig. 13 — LCC of GF under instance/AS removal", result.render_text())

    for criterion in ("users", "toots", "connections"):
        assert result.scalar(f"instance_{criterion}_monotonic")
        # instance removal degrades GF gradually, not catastrophically
        assert result.scalar(f"instance_{criterion}_lcc_after_5") > 0.5 * result.scalar(
            f"instance_{criterion}_initial_lcc"
        )

    assert result.scalar("as_by_instances_initial_lcc") > 0.85
    # removing 5 ASes cuts the LCC drastically (paper: 92% -> ~46%)
    assert result.scalar("as_by_instances_lcc_after_5") < 0.75 * result.scalar(
        "as_by_instances_initial_lcc"
    )
    # ranking by users creates at least as many components as ranking by instances
    assert result.scalar("as_by_users_components_after_5") >= result.scalar(
        "as_by_instances_components_after_5"
    ) - 2
