"""End-to-end integration tests: scenario -> crawl -> datasets -> analyses.

These tests assert the *shape-level* reproduction targets on the shared
tiny scenario: who wins, which direction the skew points, and that the
paper's qualitative findings hold on the synthetic fediverse.
"""

from __future__ import annotations

import pytest

from repro import build_scenario, collect_datasets
from repro.core import availability, centralisation, hosting, replication, resilience
from repro.datasets import TwitterBaselines
from repro.datasets.graphs import largest_connected_component_fraction


class TestPipeline:
    def test_collect_datasets_produces_consistent_views(self, datasets, tiny_network):
        instances = datasets.instances
        assert len(instances) == len(tiny_network)
        # the crawler recovers the bulk of registered users (some instances
        # are unreachable at crawl time, some toots are private)
        assert datasets.graphs.user_count() <= tiny_network.total_users()
        assert datasets.graphs.user_count() > 0.5 * tiny_network.total_users()
        assert len(datasets.toots) <= tiny_network.total_toots()
        assert len(datasets.toots) > 0.4 * tiny_network.total_toots()

    def test_crawled_coverage_matches_paper_methodology(self, datasets, tiny_network):
        # the paper could only collect ~62% of toots (private + blocked);
        # the synthetic pipeline shows the same kind of partial coverage
        coverage = datasets.toots.coverage(tiny_network.total_toots())
        assert 0.3 < coverage < 1.0

    def test_federation_graph_smaller_than_follower_graph(self, datasets):
        assert datasets.graphs.instance_count() < datasets.graphs.user_count()
        assert datasets.graphs.federation_edge_count() < datasets.graphs.follow_edge_count()


class TestPaperFindings:
    """Finding-by-finding qualitative checks (abstract / Section 7)."""

    def test_finding2_user_driven_centralisation(self, datasets):
        metrics = centralisation.concentration_metrics(datasets.instances)
        # "10% of instances host almost half of the users"
        assert metrics["top10pct_user_share"] > 0.4

    def test_finding3_infrastructure_centralisation(self, datasets):
        # a handful of ASes host a large share of users
        assert hosting.top_as_user_share(datasets.instances, top=5) > 0.4

    def test_finding3_as_failures_fragment_the_federation(self, datasets):
        instances = datasets.instances
        users = instances.users_per_instance()
        asn_of = {d: instances.metadata_for(d).asn for d in instances.domains()}
        as_ranking = resilience.rank_ases(asn_of, users, by="users")
        steps = resilience.as_removal_sweep(
            datasets.graphs.federation_graph, asn_of, as_ranking, steps=5
        )
        assert steps[0].lcc_fraction > 0.85
        assert steps[-1].lcc_fraction < 0.7 * steps[0].lcc_fraction

    def test_finding4_content_centralisation_and_replication_fix(self, datasets):
        toots = datasets.toots
        ranking = resilience.rank_instances(
            datasets.graphs.federation_graph,
            toots_per_instance=toots.toots_per_instance(),
            by="toots",
        )
        steps = min(10, len(ranking))
        no_rep = replication.availability_under_instance_removal(
            replication.no_replication(toots), ranking, steps=steps
        )
        sub_rep = replication.availability_under_instance_removal(
            replication.subscription_replication(toots, datasets.graphs), ranking, steps=steps
        )
        # removing the top instances erases a large share of toots without
        # replication, and replication recovers most of the loss
        assert no_rep[-1].availability < 0.6
        assert sub_rep[-1].availability > no_rep[-1].availability + 0.2

    def test_mastodon_less_available_than_twitter(self, datasets):
        twitter = TwitterBaselines.generate(days=60, n_users=300, seed=5)
        comparison = availability.twitter_downtime_comparison(
            datasets.instances, twitter.daily_downtime
        )
        assert comparison["ratio"] > 1.0

    def test_follower_graph_more_fragile_than_twitter(self, datasets):
        twitter = TwitterBaselines.generate(days=30, n_users=datasets.graphs.user_count(), seed=9)
        mastodon_steps = resilience.user_removal_sweep(
            datasets.graphs.follower_graph, rounds=5, fraction_per_round=0.01
        )
        twitter_steps = resilience.user_removal_sweep(
            twitter.follower_graph, rounds=5, fraction_per_round=0.01
        )
        drop_mastodon = mastodon_steps[0].lcc_fraction - mastodon_steps[-1].lcc_fraction
        drop_twitter = twitter_steps[0].lcc_fraction - twitter_steps[-1].lcc_fraction
        assert drop_mastodon > 0
        # Mastodon's social graph degrades at least as fast as the Twitter baseline
        assert drop_mastodon >= drop_twitter - 0.05


class TestReproducibilityAcrossRuns:
    def test_same_seed_same_datasets(self):
        first = collect_datasets(build_scenario("tiny", seed=123), monitor_interval_minutes=24 * 60)
        second = collect_datasets(build_scenario("tiny", seed=123), monitor_interval_minutes=24 * 60)
        assert first.instances.users_per_instance() == second.instances.users_per_instance()
        assert len(first.toots) == len(second.toots)
        assert first.graphs.follow_edge_count() == second.graphs.follow_edge_count()

    def test_follower_graph_is_nearly_fully_connected(self, datasets):
        assert largest_connected_component_fraction(datasets.graphs.follower_graph) > 0.9
