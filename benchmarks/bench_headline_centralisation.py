"""Section 4.1 headline concentration numbers.

Paper shape: the top 5% of instances hold 90.6% of users and 94.8% of
toots; 10% of instances host almost half of the users.
"""

from __future__ import annotations

from repro.core import centralisation
from repro.reporting import format_percentage, format_table

from benchmarks.conftest import emit


def test_headline_concentration(benchmark, data):
    metrics = benchmark(lambda: centralisation.concentration_metrics(data.instances))
    half_fraction = centralisation.smallest_fraction_hosting_share(data.instances, share=0.5)
    emit(
        "Section 4.1 — concentration headlines",
        format_table(
            ["metric", "measured", "paper"],
            [
                ["top 5% instances: user share", format_percentage(metrics["top5pct_user_share"]), "90.6%"],
                ["top 5% instances: toot share", format_percentage(metrics["top5pct_toot_share"]), "94.8%"],
                ["top 10% instances: user share", format_percentage(metrics["top10pct_user_share"]), ">=50%"],
                ["instances needed for 50% of users", format_percentage(half_fraction), "<=10%"],
                ["user Gini coefficient", round(metrics["user_gini"], 2), "-"],
                ["toot Gini coefficient", round(metrics["toot_gini"], 2), "-"],
            ],
        ),
    )

    assert metrics["top5pct_user_share"] > 0.4
    assert metrics["top10pct_user_share"] >= 0.5
    assert half_fraction <= 0.10 + 0.05
    assert metrics["user_gini"] > 0.6
