"""Fig. 10 — continuous outage durations and the users/toots they affect.

Paper shape: almost every instance goes down at least once; a quarter of
instances disappear for at least a day, 7% for over a month; 14% of users
lose access to their instance for a whole day at least once.

Thin timing wrapper over the ``fig10`` registry runner.
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_fig10_outage_durations(benchmark, ctx):
    result = benchmark(lambda: get_experiment("fig10").run(ctx))
    emit("Fig. 10 — continuous outage durations", result.render_text())

    assert result.scalar("share_down_at_least_once") > 0.7
    assert 0.05 < result.scalar("share_down_at_least_one_day") < 0.8
    assert result.scalar("affected_users") > 0
