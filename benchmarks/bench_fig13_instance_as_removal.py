"""Fig. 13 — removing top instances / ASes from the federation graph GF.

Paper shape: removing top instances degrades the LCC roughly linearly
(much gentler than the social graph's collapse); removing whole ASes is
far more damaging — five ASes take the LCC from 92% to roughly half, and
ranking ASes by hosted users shatters GF into more components than
ranking by hosted instances.
"""

from __future__ import annotations

from repro.core import resilience
from repro.reporting import format_percentage, format_table

from benchmarks.conftest import emit


def test_fig13a_instance_removal(benchmark, data):
    federation = data.graphs.federation_graph
    users = data.instances.users_per_instance()
    toots = data.instances.toots_per_instance()

    def run():
        results = {}
        for criterion in ("users", "toots", "connections"):
            ranking = resilience.rank_instances(federation, users, toots, by=criterion)
            results[criterion] = resilience.instance_removal_sweep(
                federation, ranking, steps=30, per_step=1
            )
        return results

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for removed in (0, 5, 10, 20, 30):
        row = [removed]
        for criterion in ("users", "toots", "connections"):
            steps = sweeps[criterion]
            step = steps[min(removed, len(steps) - 1)]
            row.append(format_percentage(step.lcc_fraction))
        rows.append(row)
    emit(
        "Fig. 13(a) — LCC of GF after removing top-N instances",
        format_table(["instances removed", "by users", "by toots", "by connections"], rows),
    )

    for steps in sweeps.values():
        fractions = [s.lcc_fraction for s in steps]
        assert all(a >= b - 1e-9 for a, b in zip(fractions, fractions[1:]))
        # instance removal degrades GF gradually, not catastrophically
        assert fractions[5] > 0.5 * fractions[0]


def test_fig13b_as_removal(benchmark, data):
    federation = data.graphs.federation_graph
    instances = data.instances
    users = instances.users_per_instance()
    asn_of = {d: instances.metadata_for(d).asn for d in instances.domains()}

    def run():
        by_instances = resilience.as_removal_sweep(
            federation, asn_of, resilience.rank_ases(asn_of, by="instances"), steps=15
        )
        by_users = resilience.as_removal_sweep(
            federation, asn_of, resilience.rank_ases(asn_of, users, by="users"), steps=15
        )
        return by_instances, by_users

    by_instances, by_users = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            index,
            format_percentage(step_i.lcc_fraction),
            step_i.components,
            format_percentage(step_u.lcc_fraction),
            step_u.components,
        ]
        for index, (step_i, step_u) in enumerate(zip(by_instances, by_users))
    ]
    emit(
        "Fig. 13(b) — LCC/components of GF after removing top-N ASes",
        format_table(
            ["ASes removed", "LCC (rank by instances)", "components", "LCC (rank by users)", "components"],
            rows,
        ),
    )

    assert by_instances[0].lcc_fraction > 0.85
    # removing 5 ASes cuts the LCC drastically (paper: 92% -> ~46%)
    assert by_instances[5].lcc_fraction < 0.75 * by_instances[0].lcc_fraction
    # ranking by users creates at least as many components as ranking by instances
    assert by_users[5].components >= by_instances[5].components - 2
