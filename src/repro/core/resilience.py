"""Graph resilience under node removal (Section 5.1: Figs. 11-13).

The paper quantifies how the follower graph and the instance federation
graph degrade when the most important users, instances or hosting ASes
disappear, using two metrics throughout: the size of the largest
(weakly) connected component and the number of connected components.

The removal sweeps dispatch to the sparse-matrix engine
(:mod:`repro.engine.resilience`): the graph is converted once to a CSR
adjacency matrix and every round is a submatrix slice plus one
:func:`scipy.sparse.csgraph.connected_components` call, instead of a
:mod:`networkx` copy degraded in Python.  The original implementations
are kept as ``_*_python`` reference functions for the differential suite
in ``tests/engine/test_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import networkx as nx

from repro.errors import AnalysisError
from repro.stats.distributions import ECDF


@dataclass(frozen=True, slots=True)
class RemovalStep:
    """The state of a graph after one removal round."""

    removed_fraction: float
    removed_count: int
    lcc_fraction: float
    components: int


def degree_cdf(degrees: Sequence[int]) -> ECDF:
    """ECDF of a degree sequence (Fig. 11)."""
    if not degrees:
        raise AnalysisError("empty degree sequence")
    return ECDF(degrees)


def _lcc_fraction(graph: nx.Graph | nx.DiGraph, initial_nodes: int) -> float:
    if graph.number_of_nodes() == 0 or initial_nodes == 0:
        return 0.0
    if graph.is_directed():
        largest = max((len(c) for c in nx.weakly_connected_components(graph)), default=0)
    else:
        largest = max((len(c) for c in nx.connected_components(graph)), default=0)
    return largest / initial_nodes


def _component_count(graph: nx.Graph | nx.DiGraph) -> int:
    if graph.number_of_nodes() == 0:
        return 0
    if graph.is_directed():
        return nx.number_weakly_connected_components(graph)
    return nx.number_connected_components(graph)


def user_removal_sweep(
    follower_graph: nx.DiGraph,
    rounds: int = 20,
    fraction_per_round: float = 0.01,
) -> list[RemovalStep]:
    """Iteratively remove the top ``fraction_per_round`` of accounts (Fig. 12).

    Each round removes the remaining accounts with the highest total
    degree and records the LCC fraction (relative to the original account
    count) and the component count — the paper's methodology for testing
    the social graph's attack tolerance.
    """
    from repro.engine.resilience import user_removal_sweep_matrix

    return user_removal_sweep_matrix(
        follower_graph, rounds=rounds, fraction_per_round=fraction_per_round
    )


def _user_removal_sweep_python(
    follower_graph: nx.DiGraph,
    rounds: int = 20,
    fraction_per_round: float = 0.01,
) -> list[RemovalStep]:
    """The original networkx loop — the engine's reference implementation."""
    if rounds < 1:
        raise AnalysisError("need at least one removal round")
    if not 0.0 < fraction_per_round <= 1.0:
        raise AnalysisError("fraction_per_round must be in (0, 1]")
    graph = follower_graph.copy()
    initial_nodes = graph.number_of_nodes()
    if initial_nodes == 0:
        raise AnalysisError("the follower graph is empty")

    steps = [
        RemovalStep(
            removed_fraction=0.0,
            removed_count=0,
            lcc_fraction=_lcc_fraction(graph, initial_nodes),
            components=_component_count(graph),
        )
    ]
    removed_total = 0
    for _ in range(rounds):
        remaining = graph.number_of_nodes()
        if remaining == 0:
            break
        batch = max(1, int(round(fraction_per_round * remaining)))
        by_degree = sorted(graph.degree(), key=lambda kv: kv[1], reverse=True)
        to_remove = [node for node, _ in by_degree[:batch]]
        graph.remove_nodes_from(to_remove)
        removed_total += len(to_remove)
        steps.append(
            RemovalStep(
                removed_fraction=removed_total / initial_nodes,
                removed_count=removed_total,
                lcc_fraction=_lcc_fraction(graph, initial_nodes),
                components=_component_count(graph),
            )
        )
    return steps


def ranked_removal_sweep(
    graph: nx.Graph | nx.DiGraph,
    ranking: Sequence[str],
    steps: int = 20,
    per_step: int = 1,
) -> list[RemovalStep]:
    """Remove nodes in the order given by ``ranking`` and track LCC/components.

    ``ranking`` lists node ids from most to least important (e.g. instances
    ranked by users hosted).  Nodes absent from the graph are skipped but
    still consume a slot in the removal schedule so that step indices stay
    aligned with the ranking.
    """
    from repro.engine.resilience import ranked_removal_sweep_matrix

    return ranked_removal_sweep_matrix(graph, ranking, steps=steps, per_step=per_step)


def _ranked_removal_sweep_python(
    graph: nx.Graph | nx.DiGraph,
    ranking: Sequence[str],
    steps: int = 20,
    per_step: int = 1,
) -> list[RemovalStep]:
    """The original networkx loop — the engine's reference implementation."""
    if steps < 1 or per_step < 1:
        raise AnalysisError("steps and per_step must be positive")
    working = graph.copy()
    initial_nodes = working.number_of_nodes()
    if initial_nodes == 0:
        raise AnalysisError("cannot run a removal sweep on an empty graph")

    results = [
        RemovalStep(
            removed_fraction=0.0,
            removed_count=0,
            lcc_fraction=_lcc_fraction(working, initial_nodes),
            components=_component_count(working),
        )
    ]
    removed = 0
    cursor = 0
    for _ in range(steps):
        batch = ranking[cursor : cursor + per_step]
        cursor += per_step
        if not batch:
            break
        present = [node for node in batch if working.has_node(node)]
        working.remove_nodes_from(present)
        removed += len(present)
        results.append(
            RemovalStep(
                removed_fraction=removed / initial_nodes,
                removed_count=removed,
                lcc_fraction=_lcc_fraction(working, initial_nodes),
                components=_component_count(working),
            )
        )
    return results


def rank_instances(
    federation_graph: nx.DiGraph,
    users_per_instance: Mapping[str, int] | None = None,
    toots_per_instance: Mapping[str, int] | None = None,
    by: str = "users",
) -> list[str]:
    """Rank instances for removal experiments (Fig. 13a, Fig. 15).

    ``by`` is one of ``"users"``, ``"toots"`` or ``"connections"`` (total
    degree in the federation graph).
    """
    nodes = list(federation_graph.nodes())
    if by == "users":
        if users_per_instance is None:
            raise AnalysisError("ranking by users requires users_per_instance")
        return sorted(nodes, key=lambda d: users_per_instance.get(d, 0), reverse=True)
    if by == "toots":
        if toots_per_instance is None:
            raise AnalysisError("ranking by toots requires toots_per_instance")
        return sorted(nodes, key=lambda d: toots_per_instance.get(d, 0), reverse=True)
    if by == "connections":
        return sorted(nodes, key=lambda d: federation_graph.degree(d), reverse=True)
    raise AnalysisError(f"unknown instance ranking: {by!r}")


def instance_removal_sweep(
    federation_graph: nx.DiGraph,
    ranking: Sequence[str],
    steps: int = 50,
    per_step: int = 1,
) -> list[RemovalStep]:
    """Remove top-ranked instances from the federation graph (Fig. 13a)."""
    return ranked_removal_sweep(federation_graph, ranking, steps=steps, per_step=per_step)


def rank_ases(
    asn_of_instance: Mapping[str, int],
    users_per_instance: Mapping[str, int] | None = None,
    by: str = "instances",
) -> list[int]:
    """Rank ASes by the instances or users they host (Fig. 13b, Fig. 15)."""
    instances_per_asn: dict[int, int] = {}
    users_per_asn: dict[int, int] = {}
    for domain, asn in asn_of_instance.items():
        instances_per_asn[asn] = instances_per_asn.get(asn, 0) + 1
        if users_per_instance is not None:
            users_per_asn[asn] = users_per_asn.get(asn, 0) + users_per_instance.get(domain, 0)
    if by == "instances":
        return sorted(instances_per_asn, key=lambda a: instances_per_asn[a], reverse=True)
    if by == "users":
        if users_per_instance is None:
            raise AnalysisError("ranking by users requires users_per_instance")
        return sorted(users_per_asn, key=lambda a: users_per_asn[a], reverse=True)
    raise AnalysisError(f"unknown AS ranking: {by!r}")


def as_removal_sweep(
    federation_graph: nx.DiGraph,
    asn_of_instance: Mapping[str, int],
    as_ranking: Sequence[int],
    steps: int = 20,
) -> list[RemovalStep]:
    """Remove entire ASes (and every instance they host) from GF (Fig. 13b)."""
    from repro.engine.resilience import as_removal_sweep_matrix

    return as_removal_sweep_matrix(
        federation_graph, asn_of_instance, as_ranking, steps=steps
    )


def _as_removal_sweep_python(
    federation_graph: nx.DiGraph,
    asn_of_instance: Mapping[str, int],
    as_ranking: Sequence[int],
    steps: int = 20,
) -> list[RemovalStep]:
    """The original networkx loop — the engine's reference implementation."""
    if steps < 1:
        raise AnalysisError("steps must be positive")
    working = federation_graph.copy()
    initial_nodes = working.number_of_nodes()
    if initial_nodes == 0:
        raise AnalysisError("cannot run a removal sweep on an empty graph")
    domains_per_asn: dict[int, list[str]] = {}
    for domain, asn in asn_of_instance.items():
        domains_per_asn.setdefault(asn, []).append(domain)

    results = [
        RemovalStep(
            removed_fraction=0.0,
            removed_count=0,
            lcc_fraction=_lcc_fraction(working, initial_nodes),
            components=_component_count(working),
        )
    ]
    removed = 0
    for step, asn in enumerate(as_ranking[:steps], start=1):
        victims = [d for d in domains_per_asn.get(asn, []) if working.has_node(d)]
        working.remove_nodes_from(victims)
        removed += len(victims)
        results.append(
            RemovalStep(
                removed_fraction=removed / initial_nodes,
                removed_count=removed,
                lcc_fraction=_lcc_fraction(working, initial_nodes),
                components=_component_count(working),
            )
        )
    return results
