"""Differential/statistical suite for the vectorised placement builders.

Deterministic strategies (none, subscription) must match the retained
``_*_python`` loops *exactly*.  The batched random draws consume the RNG
stream in a different order than the legacy one-``rng.choice``-per-toot
loop, so they are held to the same replica-count distribution and
per-candidate selection frequencies instead of bit-identity — plus
determinism per seed, the structural invariants of the arrays backend,
and the incidence memoisation semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import replication
from repro.crawler.toot_crawler import TootRecord
from repro.datasets.toots import TootsDataset
from repro.engine import InstanceRemoval, TootIncidence, availability_curves
from repro.engine.placement import (
    PlacementArrays,
    build_no_replication,
    build_random_replication,
    build_subscription_replication,
)
from repro.errors import AnalysisError

from tests.engine.test_equivalence import random_scenario

SEEDS = (0, 1, 2)


def flat_toots(n: int, domains: list[str], seed: int = 0) -> TootsDataset:
    """``n`` toots spread over ``domains`` — bulk input for the statistics."""
    rng = np.random.default_rng(seed)
    homes = rng.integers(0, len(domains), size=n)
    return TootsDataset(
        records=[
            TootRecord(
                toot_id=i,
                url=f"https://{domains[homes[i]]}/toots/{i}",
                account=f"u{homes[i]}@{domains[homes[i]]}",
                author_domain=domains[homes[i]],
                collected_from=domains[homes[i]],
                created_at=i,
            )
            for i in range(n)
        ]
    )


def domain_shares(placements: replication.PlacementMap) -> dict[str, float]:
    """Share of all replicas landing on each domain."""
    arrays = placements.arrays
    if arrays is not None:
        load = arrays.domain_replica_load()
        total = max(1, int(load.sum()))
        return {d: load[j] / total for j, d in enumerate(arrays.domains)}
    counts: dict[str, int] = {}
    total = 0
    for url, holders in placements.placements.items():
        home = url.split("/")[2]
        for domain in holders:
            if domain != home:
                counts[domain] = counts.get(domain, 0) + 1
                total += 1
    return {d: c / max(1, total) for d, c in counts.items()}


# -- deterministic builders: exact equality --------------------------------------


class TestDeterministicBuilders:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_replication_matches_python(self, seed):
        toots, _, _, _ = random_scenario(seed)
        fast = replication.no_replication(toots)
        legacy = replication._no_replication_python(toots)
        assert fast.placements == legacy.placements
        assert fast.strategy == legacy.strategy
        assert fast.replica_counts() == legacy.replica_counts()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_subscription_matches_python_exactly(self, seed):
        toots, graphs, _, _ = random_scenario(seed)
        fast = replication.subscription_replication(toots, graphs)
        legacy = replication._subscription_replication_python(toots, graphs)
        assert fast.placements == legacy.placements
        assert fast.replica_counts() == legacy.replica_counts()
        assert fast.replication_summary() == legacy.replication_summary()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_arrays_invariants_hold(self, seed):
        toots, graphs, domains, _ = random_scenario(seed)
        for arrays in (
            build_no_replication(toots),
            build_subscription_replication(toots, graphs),
            build_random_replication(toots, domains, 2, seed=seed),
            build_random_replication(
                toots, domains, 3, seed=seed, weights={d: 1.0 for d in domains}
            ),
        ):
            assert isinstance(arrays, PlacementArrays)
            arrays.validate()


# -- random builders: determinism + distribution ---------------------------------


class TestRandomDeterminism:
    def test_same_seed_same_placements(self):
        toots, _, domains, _ = random_scenario(3)
        first = replication.random_replication(toots, domains, 2, seed=5)
        second = replication.random_replication(toots, domains, 2, seed=5)
        assert np.array_equal(first.arrays.replica_indices, second.arrays.replica_indices)
        assert np.array_equal(first.arrays.replica_indptr, second.arrays.replica_indptr)
        assert first.placements == second.placements

    def test_different_seeds_differ(self):
        toots, _, domains, _ = random_scenario(3)
        first = replication.random_replication(toots, domains, 2, seed=5)
        second = replication.random_replication(toots, domains, 2, seed=6)
        assert first.placements != second.placements

    def test_weighted_same_seed_same_placements(self):
        toots, _, domains, _ = random_scenario(4)
        weights = {d: float(i + 1) for i, d in enumerate(domains)}
        first = replication.random_replication(toots, domains, 2, seed=9, weights=weights)
        second = replication.random_replication(toots, domains, 2, seed=9, weights=weights)
        assert first.placements == second.placements

    def test_replica_count_structure_matches_legacy_rule(self):
        """Each toot gets exactly k distinct picks; home collisions collapse."""
        domains = [f"d{i}.example" for i in range(8)]
        toots = flat_toots(500, domains)
        k = 3
        placements = replication.random_replication(toots, domains, k, seed=1)
        counts = np.asarray(placements.replica_counts())
        # homes are drawn from the candidate pool, so rows lose at most one pick
        assert set(np.unique(counts)) <= {k - 1, k}
        legacy = replication._random_replication_python(toots, domains, k, seed=1)
        assert set(np.unique(legacy.replica_counts())) <= {k - 1, k}


class TestRandomDistribution:
    def test_uniform_selection_frequencies_match_legacy(self):
        domains = [f"d{i}.example" for i in range(8)]
        toots = flat_toots(4000, domains)
        fast = domain_shares(replication.random_replication(toots, domains, 2, seed=0))
        legacy = domain_shares(
            replication._random_replication_python(toots, domains, 2, seed=0)
        )
        for domain in domains:
            assert fast[domain] == pytest.approx(legacy[domain], abs=0.02)
            assert fast[domain] == pytest.approx(1 / len(domains), abs=0.02)

    def test_weighted_selection_frequencies_match_legacy(self):
        domains = [f"d{i}.example" for i in range(6)]
        weights = {d: float(2 ** i) for i, d in enumerate(domains)}
        toots = flat_toots(4000, domains)
        fast = domain_shares(
            replication.random_replication(toots, domains, 2, seed=0, weights=weights)
        )
        legacy = domain_shares(
            replication._random_replication_python(
                toots, domains, 2, seed=0, weights=weights
            )
        )
        for domain in domains:
            assert fast[domain] == pytest.approx(legacy[domain], abs=0.03)
        # heavier weights must see monotonically larger selection shares
        shares = [fast[d] for d in domains]
        assert shares == sorted(shares)

    def test_mean_replica_counts_match_legacy(self):
        domains = [f"d{i}.example" for i in range(10)]
        toots = flat_toots(3000, domains)
        for weights in (None, {d: float(i + 1) for i, d in enumerate(domains)}):
            fast = replication.random_replication(
                toots, domains, 3, seed=2, weights=weights
            ).replication_summary()
            legacy = replication._random_replication_python(
                toots, domains, 3, seed=2, weights=weights
            ).replication_summary()
            assert fast["mean_replicas"] == pytest.approx(
                legacy["mean_replicas"], abs=0.05
            )


# -- availability equivalence over the arrays backend ----------------------------


class TestCurveEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_arrays_and_dict_backends_produce_identical_curves(self, seed):
        toots, graphs, domains, _ = random_scenario(seed)
        ranking = sorted(domains)
        for fast in (
            replication.no_replication(toots),
            replication.subscription_replication(toots, graphs),
            replication.random_replication(toots, domains, 2, seed=seed),
        ):
            via_dict = replication.PlacementMap(
                strategy=fast.strategy, placements=fast.placements
            )
            for steps in (1, 3, len(ranking)):
                assert replication.availability_under_instance_removal(
                    fast, ranking, steps=steps
                ) == replication.availability_under_instance_removal(
                    via_dict, ranking, steps=steps
                ), (seed, fast.strategy, steps)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_arrays_backend_matches_python_curve(self, seed):
        toots, graphs, domains, _ = random_scenario(seed)
        placements = replication.random_replication(toots, domains, 2, seed=seed)
        removal_index = {domain: i + 1 for i, domain in enumerate(sorted(domains))}
        engine = replication._availability_curve(
            placements, removal_index, len(domains)
        )
        legacy = replication._availability_curve_python(
            placements, removal_index, len(domains)
        )
        assert engine == legacy


# -- incidence memoisation -------------------------------------------------------


class TestIncidenceCache:
    def test_from_placements_is_memoised_per_object(self):
        toots, _, domains, _ = random_scenario(1)
        placements = replication.random_replication(toots, domains, 2, seed=0)
        assert TootIncidence.from_placements(placements) is (
            TootIncidence.from_placements(placements)
        )
        # a distinct map object (same content) gets its own matrix
        clone = replication.PlacementMap(
            strategy=placements.strategy, placements=placements.placements
        )
        assert TootIncidence.from_placements(clone) is not (
            TootIncidence.from_placements(placements)
        )

    def test_repeated_availability_curves_hit_the_cache(self, monkeypatch):
        toots, graphs, _, _ = random_scenario(2)
        placements = replication.subscription_replication(toots, graphs)
        builds = {"arrays": 0, "mapping": 0}
        real_from_arrays = TootIncidence.from_arrays.__func__
        real_from_mapping = TootIncidence._from_mapping.__func__

        def counting_from_arrays(cls, arrays):
            builds["arrays"] += 1
            return real_from_arrays(cls, arrays)

        def counting_from_mapping(cls, mapping):
            builds["mapping"] += 1
            return real_from_mapping(cls, mapping)

        monkeypatch.setattr(
            TootIncidence, "from_arrays", classmethod(counting_from_arrays)
        )
        monkeypatch.setattr(
            TootIncidence, "_from_mapping", classmethod(counting_from_mapping)
        )
        failure = InstanceRemoval(sorted(placements.arrays.domains), steps=3)
        first = availability_curves(placements, [failure])
        second = availability_curves(placements, [failure])
        third = availability_curves(placements, [failure])
        assert first == second == third
        assert builds == {"arrays": 1, "mapping": 0}

    def test_dict_backed_maps_are_cached_too(self, monkeypatch):
        toots, _, _, _ = random_scenario(0)
        placements = replication._no_replication_python(toots)
        assert placements.arrays is None
        assert TootIncidence.from_placements(placements) is (
            TootIncidence.from_placements(placements)
        )

    def test_cache_entry_dies_with_the_map(self):
        import gc
        import weakref

        toots, _, domains, _ = random_scenario(1)
        placements = replication.random_replication(toots, domains, 1, seed=3)
        incidence = TootIncidence.from_placements(placements)
        map_ref = weakref.ref(placements)
        incidence_ref = weakref.ref(incidence)
        del placements, incidence
        gc.collect()
        # the weak cache must not keep either the map or its matrix alive
        assert map_ref() is None
        assert incidence_ref() is None


# -- regression tests for the replication bug-queue ------------------------------


class TestWeightedSupportRegression:
    """Weighted draws with too little positive mass used to raise a raw
    ``ValueError`` from ``rng.choice(..., replace=False, p=...)``."""

    def setup_method(self):
        self.domains = ["a.example", "b.example", "c.example"]
        self.toots = flat_toots(4, ["home.example"])
        self.weights = {"a.example": 1.0}  # b and c carry zero weight

    def test_vectorised_path_raises_analysis_error(self):
        with pytest.raises(AnalysisError, match="positive weight"):
            replication.random_replication(
                self.toots, self.domains, 2, weights=self.weights
            )

    def test_python_reference_raises_analysis_error(self):
        with pytest.raises(AnalysisError, match="positive weight"):
            replication._random_replication_python(
                self.toots, self.domains, 2, weights=self.weights
            )

    def test_exact_support_still_works(self):
        placements = replication.random_replication(
            self.toots, self.domains, 1, weights=self.weights
        )
        for holders in placements.placements.values():
            assert holders == {"home.example", "a.example"}


class TestAvailabilityAtRegression:
    """``availability_at(curve, -1)`` used to report "the availability
    curve is empty" even for a non-empty curve."""

    def test_negative_removed_gets_accurate_message(self):
        curve = [replication.AvailabilityPoint(removed=0, availability=1.0)]
        with pytest.raises(AnalysisError, match="cannot be negative"):
            replication.availability_at(curve, -1)

    def test_empty_curve_message_is_reserved_for_empty_curves(self):
        with pytest.raises(AnalysisError, match="empty"):
            replication.availability_at([], 0)

    def test_non_negative_accessor_still_works(self):
        curve = [
            replication.AvailabilityPoint(removed=0, availability=1.0),
            replication.AvailabilityPoint(removed=2, availability=0.5),
        ]
        assert replication.availability_at(curve, 0) == 1.0
        assert replication.availability_at(curve, 1) == 1.0
        assert replication.availability_at(curve, 2) == 0.5
