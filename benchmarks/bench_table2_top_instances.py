"""Table 2 — the top instances by home-timeline toots.

Paper shape: the top-10 instances are dominated by large Japanese
deployments (mstdn.jp, friends.nico, pawoo.net), run by a mix of
companies, individuals and crowd-funded operators, hosted on the big
clouds, with very high degrees in both the user and federation graphs.

Thin timing wrapper over the ``table2`` registry runner.
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_table2_top_instances(benchmark, ctx):
    result = benchmark(lambda: get_experiment("table2").run(ctx))
    emit("Table 2 — top 10 instances by home toots", result.render_text())

    assert result.scalar("row_count") == 10
    assert result.scalar("home_toots_sorted_desc")
    # the flagship instances have high federation degrees and real hosting metadata
    assert result.scalar("top_has_federation_degree")
    assert result.scalar("all_as_names_present")
