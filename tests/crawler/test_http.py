"""Tests for the simulated HTTP transport."""

from __future__ import annotations

import pytest

from repro.errors import (
    CrawlBlockedError,
    HTTPError,
    InstanceUnavailableError,
    RateLimitError,
)
from repro.crawler.http import SimulatedTransport, toot_to_payload
from repro.fediverse import InstanceDescriptor
from repro.fediverse.entities import Visibility
from repro.fediverse.uptime import Outage
from repro.simtime import TimeWindow
from tests.conftest import build_mini_network, ref


@pytest.fixture()
def network():
    net = build_mini_network()
    net.follow(ref("bob@beta.example"), ref("alice@alpha.example"))
    net.post_toot(ref("alice@alpha.example"), created_at=10, hashtags=("cats",))
    net.post_toot(ref("alice@alpha.example"), created_at=20, visibility=Visibility.PRIVATE)
    net.post_toot(ref("bob@beta.example"), created_at=30)
    return net


@pytest.fixture()
def transport(network):
    return SimulatedTransport(network)


class TestInstanceEndpoint:
    def test_instance_document(self, transport):
        response = transport.get("https://alpha.example/api/v1/instance", at_minute=100)
        assert response.status == 200
        assert response.payload["uri"] == "alpha.example"
        assert response.payload["stats"]["user_count"] == 2

    def test_unknown_domain_404(self, transport):
        with pytest.raises(HTTPError) as excinfo:
            transport.get("https://missing.example/api/v1/instance", at_minute=100)
        assert excinfo.value.status == 404

    def test_not_yet_created_instance_404(self, network):
        network.add_instance(InstanceDescriptor(domain="late.example", created_at=5000))
        transport = SimulatedTransport(network)
        with pytest.raises(HTTPError):
            transport.get("https://late.example/api/v1/instance", at_minute=100)
        assert transport.get("https://late.example/api/v1/instance", at_minute=6000).status == 200

    def test_offline_instance_503(self, network):
        network.availability.add_outage(Outage("alpha.example", TimeWindow(0, 1000)))
        transport = SimulatedTransport(network)
        with pytest.raises(InstanceUnavailableError):
            transport.get("https://alpha.example/api/v1/instance", at_minute=100)

    def test_unknown_endpoint_404(self, transport):
        with pytest.raises(HTTPError):
            transport.get("https://alpha.example/api/v1/unknown", at_minute=100)


class TestTimelineEndpoint:
    def test_federated_timeline_returns_public_toots_only(self, transport):
        response = transport.get(
            "https://alpha.example/api/v1/timelines/public?limit=40", at_minute=100
        )
        payloads = response.payload
        assert all(item["visibility"] == "public" for item in payloads)
        accounts = {item["account"] for item in payloads}
        assert "alice@alpha.example" in accounts

    def test_local_timeline_excludes_remote(self, network):
        transport = SimulatedTransport(network)
        response = transport.get(
            "https://beta.example/api/v1/timelines/public?local=true", at_minute=100
        )
        assert all(item["account_domain"] == "beta.example" for item in response.payload)
        federated = transport.get(
            "https://beta.example/api/v1/timelines/public?local=false", at_minute=100
        )
        assert any(item["account_domain"] == "alpha.example" for item in federated.payload)

    def test_max_id_paging(self, network):
        transport = SimulatedTransport(network)
        for index in range(60):
            network.post_toot(ref("alice@alpha.example"), created_at=100 + index)
        first = transport.get(
            "https://alpha.example/api/v1/timelines/public?limit=40", at_minute=5000
        )
        assert len(first.payload) == 40
        oldest = min(item["id"] for item in first.payload)
        second = transport.get(
            f"https://alpha.example/api/v1/timelines/public?limit=40&max_id={oldest}",
            at_minute=5000,
        )
        assert all(item["id"] < oldest for item in second.payload)

    def test_crawl_blocked_instance_403(self, network):
        network.add_instance(InstanceDescriptor(domain="blocked.example", crawl_blocked=True))
        network.register_user("blocked.example", "dora", created_at=0)
        transport = SimulatedTransport(network)
        with pytest.raises(CrawlBlockedError):
            transport.get("https://blocked.example/api/v1/timelines/public", at_minute=100)
        # the instance API itself still answers
        assert transport.get("https://blocked.example/api/v1/instance", at_minute=100).status == 200


class TestDirectoryAndFollowers:
    def test_directory_lists_accounts_with_status_counts(self, transport):
        response = transport.get("https://alpha.example/api/v1/directory", at_minute=100)
        by_name = {entry["username"]: entry for entry in response.payload}
        assert set(by_name) == {"alice", "akira"}
        assert by_name["alice"]["statuses_count"] == 2

    def test_directory_paging(self, transport):
        response = transport.get(
            "https://alpha.example/api/v1/directory?page=1&per_page=1", at_minute=100
        )
        assert len(response.payload) == 1
        second = transport.get(
            "https://alpha.example/api/v1/directory?page=2&per_page=1", at_minute=100
        )
        assert len(second.payload) == 1
        assert response.payload[0]["username"] != second.payload[0]["username"]

    def test_followers_endpoint(self, transport):
        response = transport.get(
            "https://alpha.example/users/alice/followers?page=1", at_minute=100
        )
        assert response.payload["total"] == 1
        assert response.payload["followers"] == ["bob@beta.example"]
        assert response.payload["has_more"] is False

    def test_followers_unknown_user(self, transport):
        with pytest.raises(HTTPError):
            transport.get("https://alpha.example/users/ghost/followers", at_minute=100)


class TestTransportBookkeeping:
    def test_stats_counted(self, transport):
        transport.get("https://alpha.example/api/v1/instance", at_minute=100)
        transport.get("https://beta.example/api/v1/instance", at_minute=100)
        assert transport.stats.requests == 2
        assert transport.stats.by_domain["alpha.example"] == 1

    def test_rate_limit(self, network):
        transport = SimulatedTransport(network, rate_limit_per_domain=2)
        transport.get("https://alpha.example/api/v1/instance", at_minute=100)
        transport.get("https://alpha.example/api/v1/instance", at_minute=100)
        with pytest.raises(RateLimitError):
            transport.get("https://alpha.example/api/v1/instance", at_minute=100)
        transport.reset_budget("alpha.example")
        assert transport.get("https://alpha.example/api/v1/instance", at_minute=100).status == 200

    def test_known_domains(self, transport):
        assert transport.known_domains() == [
            "alpha.example",
            "beta.example",
            "gamma.example",
        ]


class TestTootPayload:
    def test_payload_fields(self, network):
        alpha = network.get_instance("alpha.example")
        toot = alpha.local_toots()[0]
        payload = toot_to_payload(toot, collected_from="beta.example")
        assert payload["collected_from"] == "beta.example"
        assert payload["account"] == "alice@alpha.example"
        assert payload["tags"] == ["cats"]
        assert payload["url"] == toot.url
