"""Batch reduction kernels over toot×instance incidence matrices.

Each kernel replaces a per-toot Python loop with one vectorised pass:

* a toot's **kill step** is the maximum removal step over the domains
  holding a copy (it dies only when its *last* replica disappears);
* per-row maxima over the CSR structure come from
  :func:`numpy.maximum.reduceat` on the ``indptr``/``indices`` arrays;
* losses per step are a single :func:`numpy.bincount`, and the
  availability curve is one cumulative sum.

The arithmetic mirrors the legacy loops operation-for-operation, so the
results are bit-identical — the differential suite in
``tests/engine/test_equivalence.py`` holds the engine to exact equality.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.errors import AnalysisError


#: Per-domain removal steps at or above this value cannot use the int32
#: fast path (the sentinel itself must stay the unique "never removed"
#: marker).
_INT32_SENTINEL = np.iinfo(np.int32).max


def _check_rows(matrix: sparse.csr_matrix) -> None:
    if matrix.shape[0] == 0:
        raise AnalysisError("the placement map is empty")
    if np.any(np.diff(matrix.indptr) == 0):
        raise AnalysisError("every toot needs at least one holding instance")


def _int32_safe_columns(removal_matrix: np.ndarray) -> np.ndarray:
    """Classify every schedule column in one vectorised pass.

    ``safe[j]`` is true when column ``j``'s finite removal steps all fit
    under the int32 sentinel, i.e. the gather/reduceat pass can run in
    int32.  Infinite entries ("never removed") are masked to ``-inf`` so
    they cannot veto the fast path.
    """
    masked = np.where(np.isfinite(removal_matrix), removal_matrix, -np.inf)
    return masked.max(axis=0) < float(_INT32_SENTINEL)


def _kill_column(
    matrix: sparse.csr_matrix,
    column: np.ndarray,
    safe: bool,
    values: np.ndarray | None = None,
    killed: np.ndarray | None = None,
) -> tuple[np.ndarray, int | None]:
    """Per-row kill steps for one schedule column (the shared inner pass).

    Returns ``(kill, sentinel)``: on the int32 fast path ``kill`` is an
    int32 vector with ``sentinel`` marking survivors (written into the
    reusable ``values``/``killed`` buffers when given); on the float
    fallback (steps too large for the sentinel) ``kill`` is float64 with
    ``np.inf`` survivors and ``sentinel`` is ``None``.
    """
    if not safe:
        return np.maximum.reduceat(column[matrix.indices], matrix.indptr[:-1]), None
    # int32 with a "never removed" sentinel halves the gather/reduceat
    # traffic vs float64; removal steps are small integers
    lookup = np.where(np.isfinite(column), column, float(_INT32_SENTINEL)).astype(np.int32)
    if values is None or killed is None:
        return np.maximum.reduceat(lookup[matrix.indices], matrix.indptr[:-1]), _INT32_SENTINEL
    np.take(lookup, matrix.indices, out=values)
    np.maximum.reduceat(values, matrix.indptr[:-1], out=killed)
    return killed, _INT32_SENTINEL


def kill_steps(matrix: sparse.csr_matrix, removal_steps: np.ndarray) -> np.ndarray:
    """Per-toot kill step: the max removal step over its holding domains.

    ``removal_steps`` is a dense per-domain vector (``np.inf`` for domains
    that never fail).  Returns a float vector with ``np.inf`` for toots
    that survive the whole schedule.
    """
    _check_rows(matrix)
    values = np.asarray(removal_steps, dtype=np.float64)[matrix.indices]
    return np.maximum.reduceat(values, matrix.indptr[:-1])


def kill_steps_batch(matrix: sparse.csr_matrix, removal_matrix: np.ndarray) -> np.ndarray:
    """Kill steps for many removal schedules at once.

    ``removal_matrix`` has shape ``(n_domains, k)`` — one column per
    schedule.  Returns ``(n_toots, k)``.  Each schedule is one contiguous
    1-D gather + ``reduceat`` pass over the shared CSR structure (faster
    than a single 2-D pass: the per-domain table stays cache-resident).
    """
    _check_rows(matrix)
    removal_matrix = np.asarray(removal_matrix, dtype=np.float64)
    if removal_matrix.ndim != 2:
        raise AnalysisError("removal_matrix must be 2-D (n_domains, k)")
    kill = np.empty((matrix.shape[0], removal_matrix.shape[1]), dtype=np.float64)
    safe = _int32_safe_columns(removal_matrix)
    for j in range(removal_matrix.shape[1]):
        killed, sentinel = _kill_column(matrix, removal_matrix[:, j], bool(safe[j]))
        if sentinel is None:
            kill[:, j] = killed
        else:
            out = killed.astype(np.float64)
            out[killed == sentinel] = np.inf
            kill[:, j] = out
    return kill


def losses_per_step(kill: np.ndarray, steps: int) -> np.ndarray:
    """Count the toots dying at each step (index 0 is always zero)."""
    finite = np.isfinite(kill)
    killed = kill[finite].astype(np.int64)
    if killed.size and (killed.min() < 1 or killed.max() > steps):
        raise AnalysisError("kill steps fall outside the removal schedule")
    return np.bincount(killed, minlength=steps + 1)[: steps + 1]


def losses_per_step_batch(
    matrix: sparse.csr_matrix,
    removal_matrix: np.ndarray,
    steps_per_schedule: np.ndarray,
) -> np.ndarray:
    """Per-step loss counts for many schedules without the kill matrix.

    Streams one schedule at a time: each column is one gather +
    ``reduceat`` pass into reusable buffers, immediately reduced to its
    ``bincount`` of per-step losses.  Returns a dense
    ``(k, max_steps + 1)`` int64 array (``losses[j, s]`` toots die at
    step ``s`` of schedule ``j``; columns beyond a schedule's own length
    stay zero), so peak memory is O(nnz) buffers plus the small loss
    table instead of the ``(n_toots, k)`` kill matrix.

    Losses are raw integer counts, which makes them **additive across
    disjoint row ranges** — the composition law the sharded engine in
    :mod:`repro.engine.sharding` is built on.
    """
    _check_rows(matrix)
    removal_matrix = np.asarray(removal_matrix, dtype=np.float64)
    if removal_matrix.ndim != 2:
        raise AnalysisError("removal_matrix must be 2-D (n_domains, k)")
    n_schedules = removal_matrix.shape[1]
    steps = np.asarray(steps_per_schedule, dtype=np.int64)
    if steps.shape != (n_schedules,):
        raise AnalysisError("steps_per_schedule must give one length per schedule")
    max_steps = int(steps.max()) if n_schedules else 0
    losses = np.zeros((n_schedules, max_steps + 1), dtype=np.int64)
    safe = _int32_safe_columns(removal_matrix)
    # gather/kill buffers allocated once and reused for every int32-safe
    # schedule; the float fallback is rare enough to allocate ad hoc
    values = np.empty(matrix.indices.size, dtype=np.int32)
    buffer = np.empty(matrix.shape[0], dtype=np.int32)
    for j in range(n_schedules):
        schedule_steps = int(steps[j])
        killed, sentinel = _kill_column(
            matrix, removal_matrix[:, j], bool(safe[j]), values, buffer
        )
        if sentinel is None:
            dead = killed[np.isfinite(killed)].astype(np.int64)
        else:
            dead = killed[killed != sentinel].astype(np.int64)
        if dead.size and (dead.min() < 1 or dead.max() > schedule_steps):
            raise AnalysisError("kill steps fall outside the removal schedule")
        counts = np.bincount(dead, minlength=schedule_steps + 1)
        losses[j, : schedule_steps + 1] = counts[: schedule_steps + 1]
    return losses


def losses_per_step_rows(
    matrix: sparse.csr_matrix,
    rows: np.ndarray,
    removal_matrix: np.ndarray,
    steps_per_schedule: np.ndarray,
) -> np.ndarray:
    """:func:`losses_per_step_batch` restricted to a subset of rows.

    The per-query kernel of the serving layer: a single user or instance
    holds a sliver of the corpus, so the gather/reduceat pass runs over a
    CSR view of just those rows — O(subset nnz) per schedule instead of
    O(corpus nnz).  Rows may repeat and appear in any order; the loss
    counts match slicing the full matrix to the same rows exactly.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 1 or rows.size == 0:
        raise AnalysisError("rows must be a non-empty 1-D index array")
    if rows.min() < 0 or rows.max() >= matrix.shape[0]:
        raise AnalysisError("row indices fall outside the incidence matrix")
    indptr = matrix.indptr
    lengths = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    sub_indptr = np.zeros(rows.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=sub_indptr[1:])
    total = int(sub_indptr[-1])
    positions = (
        np.repeat(indptr[rows].astype(np.int64) - sub_indptr[:-1], lengths)
        + np.arange(total, dtype=np.int64)
    )
    subset = sparse.csr_matrix(
        (np.ones(total, dtype=np.int8), matrix.indices[positions], sub_indptr),
        shape=(rows.size, matrix.shape[1]),
    )
    return losses_per_step_batch(subset, removal_matrix, steps_per_schedule)


def temporal_removal_matrix(down: np.ndarray) -> np.ndarray:
    """Encode a per-tick down matrix as single-step schedule columns.

    ``down`` is boolean ``(n_domains, ticks)``; the result maps down
    domains to removal step ``1`` and up domains to ``np.inf``, one
    column per tick.  Each column is then an ordinary one-step schedule:
    the per-row max rule yields a finite kill step **iff every holder is
    down at that tick** (any live holder contributes ``inf``), so
    ``losses[:, 1]`` from :func:`losses_per_step_batch` counts the toots
    unavailable at each tick.  Because the counts stay plain additive
    integers, the sharded streaming fold evaluates temporal schedules
    unchanged — and bit-identically.
    """
    down = np.asarray(down)
    if down.ndim != 2:
        raise AnalysisError("the down matrix must be 2-D (n_domains, ticks)")
    return np.where(down, 1.0, np.inf)


def temporal_availability_from_counts(counts: np.ndarray, total: int) -> np.ndarray:
    """Availability time series from per-tick unavailable counts.

    Index 0 is the no-outage baseline (1.0); index ``t`` is the fraction
    of toots with at least one live holder at tick ``t``.  Unlike the
    cumulative curves there is no running sum — ticks are independent
    snapshots, and the series is not monotone.
    """
    if total <= 0:
        raise AnalysisError("the placement map is empty")
    counts = np.asarray(counts, dtype=np.int64)
    return np.concatenate(([1.0], 1.0 - counts / total))


def availability_from_losses(losses: np.ndarray, total: int) -> np.ndarray:
    """Availability curve (length ``steps + 1``) from per-step losses."""
    if total <= 0:
        raise AnalysisError("the placement map is empty")
    lost = np.cumsum(losses.astype(np.int64))
    return 1.0 - lost / total


def curves_from_loss_table(
    losses: np.ndarray, steps_per_schedule: np.ndarray, total: int
) -> list[np.ndarray]:
    """One availability curve per schedule from a ``(k, max_steps+1)`` table.

    Each curve is cut to its own schedule length — the shared final step
    of :func:`availability_curves_batch` and the sharded streaming path.
    """
    steps = np.asarray(steps_per_schedule, dtype=np.int64)
    return [
        availability_from_losses(losses[j, : int(steps[j]) + 1], total)
        for j in range(steps.size)
    ]


def availability_curve_array(
    matrix: sparse.csr_matrix, removal_steps: np.ndarray, steps: int
) -> np.ndarray:
    """Availability after 0..``steps`` removals, as one dense vector."""
    kill = kill_steps(matrix, removal_steps)
    losses = losses_per_step(kill, steps)
    return availability_from_losses(losses, matrix.shape[0])


def availability_curves_batch(
    matrix: sparse.csr_matrix,
    removal_matrix: np.ndarray,
    steps_per_schedule: np.ndarray,
) -> list[np.ndarray]:
    """Availability curves for many schedules sharing one incidence matrix.

    ``steps_per_schedule[j]`` is the schedule length of column ``j``; the
    returned list holds one curve of length ``steps_per_schedule[j] + 1``
    per schedule.

    Only the curves are needed here, so the reduction streams through
    :func:`losses_per_step_batch` — one schedule at a time over reused
    gather buffers — instead of materialising the full ``(n_toots, k)``
    kill matrix.
    """
    steps = np.asarray(steps_per_schedule, dtype=np.int64)
    losses = losses_per_step_batch(matrix, removal_matrix, steps)
    return curves_from_loss_table(losses, steps, matrix.shape[0])
