"""Synthetic fediverse scenario generation.

The paper measured the live Mastodon network; offline we synthesise a
population whose *distributions* match the ones the paper reports, so
that every downstream figure reproduces the published shape:

* users/toots per instance are heavily skewed (top 5% of instances hold
  ~90% of users, Section 4.1), with open instances much larger but closed
  instances more active per capita;
* ~16% of instances self-declare categories with the mix of Fig. 3
  (many tech/games/art instances; few adult instances with many users);
* hosting concentrates on a handful of countries (Fig. 5: JP/US/FR/DE/NL)
  and ASes (Amazon/Cloudflare/Sakura/OVH/DigitalOcean), with the largest
  instances disproportionately on the big clouds;
* the follower graph is power-law and exhibits country homophily
  (Fig. 6, Fig. 11);
* availability has a long tail of poorly administered instances, AS-wide
  outages and certificate-expiry outages (Figs. 7-10, Table 1).

Everything is driven by a single seeded :class:`numpy.random.Generator`
so scenarios are fully reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import date
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.fediverse.certificates import CERTIFICATE_AUTHORITIES
from repro.fediverse.entities import (
    ActivityPolicy,
    ActivityType,
    Category,
    InstanceDescriptor,
    OperatorType,
    RegistrationPolicy,
    Software,
    UserRef,
    Visibility,
)
from repro.fediverse.geo import DEFAULT_COUNTRIES, IPAllocator, WELL_KNOWN_ASES
from repro.fediverse.network import FediverseNetwork
from repro.fediverse.uptime import ASOutageEvent, Outage, OutageCause
from repro.simtime import MINUTES_PER_DAY, PAPER_START_DATE, SimClock, TimeWindow
from repro.stats.distributions import sample_power_law

# ---------------------------------------------------------------------------
# Calibration tables (fractions taken from the paper's figures)
# ---------------------------------------------------------------------------

#: Probability that a *tagged* instance declares each category (Fig. 3,
#: instances bar).  Categories are not mutually exclusive.
CATEGORY_INSTANCE_WEIGHTS: dict[Category, float] = {
    Category.GENERIC: 0.517,
    Category.TECH: 0.552,
    Category.GAMES: 0.373,
    Category.ART: 0.3015,
    Category.ACTIVISM: 0.24,
    Category.MUSIC: 0.23,
    Category.ANIME: 0.246,
    Category.BOOKS: 0.19,
    Category.ACADEMIA: 0.17,
    Category.LGBT: 0.16,
    Category.JOURNALISM: 0.15,
    Category.FURRY: 0.13,
    Category.SPORTS: 0.13,
    Category.ADULT: 0.123,
    Category.POC: 0.07,
    Category.HUMOR: 0.06,
}

#: Relative user-attraction boost per category (Fig. 3, users bar).  Adult
#: instances are few but hold the most users; tech/journalism instances are
#: many but comparatively small.
CATEGORY_USER_BOOST: dict[Category, float] = {
    Category.ADULT: 9.0,
    Category.ANIME: 2.2,
    Category.GAMES: 1.8,
    Category.ART: 1.2,
    Category.MUSIC: 1.0,
    Category.GENERIC: 1.0,
    Category.ACTIVISM: 0.8,
    Category.LGBT: 0.8,
    Category.FURRY: 0.8,
    Category.SPORTS: 0.7,
    Category.BOOKS: 0.6,
    Category.ACADEMIA: 0.6,
    Category.HUMOR: 0.6,
    Category.POC: 0.6,
    Category.TECH: 0.45,
    Category.JOURNALISM: 0.25,
}

#: Share of instances hosted per country (Fig. 5, instances bar).
COUNTRY_INSTANCE_WEIGHTS: dict[str, float] = {
    "JP": 0.255,
    "US": 0.214,
    "FR": 0.16,
    "DE": 0.075,
    "NL": 0.045,
    "GB": 0.04,
    "CA": 0.03,
    "ES": 0.025,
    "IT": 0.025,
    "BR": 0.02,
    "KR": 0.02,
    "RU": 0.02,
    "SE": 0.02,
    "CH": 0.02,
    "AU": 0.031,
}

#: Relative user-attraction boost per country (JP hosts 25.5% of instances
#: but 41% of users; FR hosts 16% of instances but 9.2% of users).
COUNTRY_USER_BOOST: dict[str, float] = {
    "JP": 1.9,
    "US": 1.1,
    "FR": 0.5,
    "DE": 0.7,
    "NL": 0.7,
    "GB": 0.8,
    "CA": 0.8,
    "ES": 0.6,
    "IT": 0.6,
    "BR": 0.7,
    "KR": 0.9,
    "RU": 0.6,
    "SE": 0.6,
    "CH": 0.6,
    "AU": 0.7,
}

#: Per-country pools of hosting ASes (ASN -> weight) for ordinary instances.
COUNTRY_AS_POOLS: dict[str, list[tuple[int, float]]] = {
    "JP": [(9370, 0.42), (7506, 0.2), (2516, 0.12), (9371, 0.08), (2914, 0.08), (16509, 0.1)],
    "US": [(14061, 0.3), (16509, 0.2), (13335, 0.12), (20473, 0.12), (63949, 0.12), (15169, 0.07), (8075, 0.07)],
    "FR": [(16276, 0.5), (12876, 0.3), (12322, 0.2)],
    "DE": [(24940, 0.55), (197540, 0.25), (51167, 0.2)],
    "NL": [(49981, 0.6), (14061, 0.2), (16276, 0.2)],
}

#: Fallback AS pool for countries without a dedicated pool.
GENERIC_AS_POOL: list[tuple[int, float]] = [
    (16509, 0.25),
    (13335, 0.2),
    (14061, 0.2),
    (16276, 0.15),
    (24940, 0.1),
    (63949, 0.1),
]

#: AS pool used for the very largest instances: the paper finds the top
#: instances overwhelmingly on Amazon/Cloudflare/Sakura (Fig. 5, Table 2).
BIG_INSTANCE_AS_POOL: list[tuple[int, float]] = [
    (16509, 0.42),
    (13335, 0.3),
    (9370, 0.18),
    (16276, 0.1),
]

#: Country mix of the very largest instances (Table 2 is dominated by
#: Japanese flagships, with a US/FR tail).
TOP_INSTANCE_COUNTRY_WEIGHTS: dict[str, float] = {
    "JP": 0.55,
    "US": 0.25,
    "FR": 0.10,
    "DE": 0.05,
    "GB": 0.05,
}

#: Certificate-authority market share among instances (Fig. 9a).
CA_WEIGHTS: dict[str, float] = {
    "Let's Encrypt": 0.86,
    "COMODO": 0.06,
    "Amazon": 0.04,
    "CloudFlare": 0.025,
    "DigiCert": 0.015,
}

#: Who operates instances (Table 2's mix, extended to the long tail).
OPERATOR_WEIGHTS: dict[OperatorType, float] = {
    OperatorType.INDIVIDUAL: 0.70,
    OperatorType.CROWD_FUNDED: 0.12,
    OperatorType.COMPANY: 0.08,
    OperatorType.ASSOCIATION: 0.05,
    OperatorType.UNKNOWN: 0.05,
}

#: Probability that a tagged instance prohibits each activity (Fig. 4 left),
#: and probability that it explicitly allows it given it is not prohibited.
ACTIVITY_PROHIBIT_PROB: dict[ActivityType, float] = {
    ActivityType.SPAM: 0.76,
    ActivityType.PORNOGRAPHY_WITHOUT_NSFW: 0.66,
    ActivityType.NUDITY_WITHOUT_NSFW: 0.62,
    ActivityType.LINKS_TO_ILLEGAL_CONTENT: 0.70,
    ActivityType.ADVERTISING: 0.30,
    ActivityType.SPOILERS_WITHOUT_CW: 0.25,
    ActivityType.PORNOGRAPHY_WITH_NSFW: 0.30,
    ActivityType.NUDITY_WITH_NSFW: 0.28,
}

ACTIVITY_ALLOW_PROB: dict[ActivityType, float] = {
    ActivityType.SPAM: 0.24,
    ActivityType.PORNOGRAPHY_WITHOUT_NSFW: 0.3,
    ActivityType.NUDITY_WITHOUT_NSFW: 0.35,
    ActivityType.LINKS_TO_ILLEGAL_CONTENT: 0.2,
    ActivityType.ADVERTISING: 0.47,
    ActivityType.SPOILERS_WITHOUT_CW: 0.6,
    ActivityType.PORNOGRAPHY_WITH_NSFW: 0.65,
    ActivityType.NUDITY_WITH_NSFW: 0.7,
}

DOMAIN_PREFIXES: tuple[str, ...] = (
    "mastodon",
    "mstdn",
    "social",
    "toot",
    "pawoo",
    "fedi",
    "micro",
    "don",
    "niu",
    "queer",
    "photog",
    "otaku",
)


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass
class ScenarioConfig:
    """Parameters controlling the synthetic fediverse.

    The defaults produce a "small" scenario (a ~1/20th-scale fediverse)
    that regenerates every figure in a few seconds.  ``tiny()`` is used by
    the test-suite, ``medium()`` by the heavier benchmarks.
    """

    seed: int = 7
    label: str = "small"
    n_instances: int = 150
    total_users: int = 6_000
    mean_toots_per_user: float = 10.0
    window_days: int = 120
    start_date: date = PAPER_START_DATE

    # population shape
    open_fraction: float = 0.478
    pleroma_fraction: float = 0.031
    open_size_boost: float = 7.0
    instance_size_exponent: float = 1.75
    max_instance_user_share: float = 0.18
    closed_toot_multiplier: float = 2.0
    toots_per_user_sigma: float = 1.4

    # categories and activities
    tagged_fraction: float = 0.161

    # follower graph
    mean_follows_per_user: float = 9.0
    follow_degree_exponent: float = 2.25
    max_follows_per_user: int = 400
    user_attractiveness_exponent: float = 1.8
    same_instance_follow_prob: float = 0.35
    same_country_follow_prob: float = 0.22

    # toots
    toot_attractiveness_coupling: float = 0.5
    private_toot_fraction: float = 0.20
    content_warning_fraction: float = 0.10
    media_fraction: float = 0.12
    boost_fraction: float = 0.08
    hashtag_vocabulary: int = 200

    # crawlability
    crawl_blocked_fraction: float = 0.10

    # availability
    permanently_down_fraction: float = 0.213
    low_downtime_fraction: float = 0.50
    high_downtime_fraction: float = 0.11
    never_down_fraction: float = 0.02
    n_as_outage_ases: int = 6
    cert_lapse_fraction: float = 0.10
    mass_cert_expiry_fraction: float = 0.04

    # engagement
    closed_activity_beta: tuple[float, float] = (5.0, 1.7)
    open_activity_beta: tuple[float, float] = (2.5, 2.5)

    def __post_init__(self) -> None:
        if self.n_instances < 2:
            raise ConfigurationError("a scenario needs at least two instances")
        if self.total_users < self.n_instances:
            raise ConfigurationError("need at least one user per instance")
        if not 0.0 <= self.open_fraction <= 1.0:
            raise ConfigurationError("open_fraction must be a probability")
        if self.window_days <= 1:
            raise ConfigurationError("the observation window must exceed one day")
        if self.mean_toots_per_user <= 0:
            raise ConfigurationError("mean_toots_per_user must be positive")

    @property
    def window_minutes(self) -> int:
        """Observation window length in minutes."""
        return self.window_days * MINUTES_PER_DAY

    @property
    def total_toots_target(self) -> int:
        """Approximate number of toots the scenario aims to generate."""
        return int(self.total_users * self.mean_toots_per_user)

    @classmethod
    def tiny(cls, seed: int = 7) -> "ScenarioConfig":
        """A minimal scenario for unit tests (sub-second generation)."""
        return cls(
            seed=seed,
            label="tiny",
            n_instances=40,
            total_users=1_200,
            mean_toots_per_user=6.0,
            window_days=60,
            mean_follows_per_user=7.0,
        )

    @classmethod
    def small(cls, seed: int = 7) -> "ScenarioConfig":
        """The default benchmark scenario (a ~1/20th-scale fediverse)."""
        return cls(seed=seed, label="small")

    @classmethod
    def medium(cls, seed: int = 7) -> "ScenarioConfig":
        """A richer scenario for the heavier benchmarks."""
        return cls(
            seed=seed,
            label="medium",
            n_instances=400,
            total_users=20_000,
            mean_toots_per_user=12.0,
            window_days=240,
            mean_follows_per_user=11.0,
        )

    @classmethod
    def large(cls, seed: int = 7) -> "ScenarioConfig":
        """A 1M+-toot scenario for the sharded streaming engine.

        Built from :meth:`medium` via :meth:`scaled` (2× population),
        with the toot rate boosted on top and the instance count held
        near medium's: toots are the axis the availability engine scales
        along, while every extra instance lengthens every *other*
        instance's federated timeline — the crawl volume grows with
        instances × timeline length — and users drive the memory-hungry
        follower graph.  A paper-scale-pointing corpus therefore wants
        many toots over a moderately larger population.  Drive the
        sweeps with sharded evaluation (``--shard-size``/``--workers``):
        the point of this preset is that evaluation no longer needs the
        whole corpus in memory at once.
        """
        return replace(
            cls.medium(seed=seed).scaled(2.0),
            label="large",
            n_instances=500,
            mean_toots_per_user=34.0,
        )

    @classmethod
    def xlarge(cls, seed: int = 7) -> "ScenarioConfig":
        """A 10M-toot scenario for the columnar streaming pipeline.

        Ten times medium's population at 50 toots/user: 200K users and a
        ~10M-toot corpus over 240 days.  This preset is only realistic
        through the columnar path (:func:`build_columnar_scenario` /
        ``collect --columnar``) — the object generator would need tens
        of GiB; the columnar generator streams it to corpus and graph
        shards in a few GiB of RSS.
        """
        return replace(
            cls.medium(seed=seed).scaled(10.0),
            label="xlarge",
            n_instances=800,
            mean_toots_per_user=50.0,
        )

    def scaled(self, factor: float) -> "ScenarioConfig":
        """Return a copy with population sizes multiplied by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return replace(
            self,
            label=f"{self.label}-x{factor:g}",
            n_instances=max(2, int(self.n_instances * factor)),
            total_users=max(2, int(self.total_users * factor)),
        )


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


@dataclass
class _UserRecord:
    """Internal bookkeeping for a generated account."""

    index: int
    ref: UserRef
    instance_index: int
    created_at: int
    attractiveness: float
    toot_budget: int = 0


class ScenarioGenerator:
    """Builds a :class:`FediverseNetwork` from a :class:`ScenarioConfig`."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self._ip_allocator = IPAllocator()
        self._as_by_asn = {asys.asn: asys for asys in WELL_KNOWN_ASES}

    # -- public entry point ---------------------------------------------------

    def generate(self) -> FediverseNetwork:
        """Generate the full scenario and return the populated network."""
        clock = SimClock(start_date=self.config.start_date, window_days=self.config.window_days)
        network = FediverseNetwork(clock=clock)

        descriptors = self._build_descriptors()
        for descriptor in descriptors:
            network.add_instance(descriptor)

        users = self._create_users(network, descriptors)
        self._create_follows(network, users, descriptors)
        self._create_toots(network, users, descriptors)
        self._create_boosts(network, users)
        self._generate_logins(network, users, descriptors)
        self._generate_availability(network, descriptors)
        self._issue_certificates(network, descriptors)
        return network

    # -- instances ------------------------------------------------------------

    def _sample_weighted(self, table: dict, size: int | None = None):
        keys = list(table.keys())
        weights = np.asarray([table[k] for k in keys], dtype=float)
        weights = weights / weights.sum()
        picks = self.rng.choice(len(keys), size=size, p=weights)
        if size is None:
            return keys[int(picks)]
        return [keys[int(i)] for i in picks]

    def _instance_created_at(self, index: int) -> int:
        """Creation times follow the paper's growth curve (Fig. 1)."""
        window = self.config.window_minutes
        u = self.rng.random()
        if u < 0.40:
            return 0
        if u < 0.70:
            return int(self.rng.uniform(0, 0.25) * window)
        if u < 0.76:
            return int(self.rng.uniform(0.25, 0.70) * window)
        return int(self.rng.uniform(0.70, 0.98) * window)

    def _categories_for(self, tagged: bool) -> tuple[Category, ...]:
        if not tagged:
            return ()
        categories = [
            category
            for category, weight in CATEGORY_INSTANCE_WEIGHTS.items()
            if self.rng.random() < weight
        ]
        if not categories:
            categories = [Category.GENERIC]
        return tuple(categories)

    def _activity_policy_for(self, tagged: bool) -> ActivityPolicy | None:
        if not tagged:
            return None
        if self.rng.random() < 0.175:
            return ActivityPolicy.permissive()
        allowed: set[ActivityType] = set()
        prohibited: set[ActivityType] = set()
        for activity in ActivityType:
            if self.rng.random() < ACTIVITY_PROHIBIT_PROB[activity]:
                prohibited.add(activity)
            elif self.rng.random() < ACTIVITY_ALLOW_PROB[activity]:
                allowed.add(activity)
        return ActivityPolicy(allowed=frozenset(allowed), prohibited=frozenset(prohibited))

    def _domain_name(self, index: int, country: str) -> str:
        prefix = DOMAIN_PREFIXES[int(self.rng.integers(0, len(DOMAIN_PREFIXES)))]
        return f"{prefix}-{index:04d}.{country.lower()}.example"

    def _build_descriptors(self) -> list[InstanceDescriptor]:
        cfg = self.config
        countries = self._sample_weighted(COUNTRY_INSTANCE_WEIGHTS, size=cfg.n_instances)
        open_flags = [self.rng.random() < cfg.open_fraction for _ in range(cfg.n_instances)]
        tagged_flags = [self.rng.random() < cfg.tagged_fraction for _ in range(cfg.n_instances)]
        category_sets = [self._categories_for(tagged) for tagged in tagged_flags]
        base_sizes = sample_power_law(
            self.rng,
            cfg.n_instances,
            exponent=cfg.instance_size_exponent,
            minimum=1.0,
            maximum=float(cfg.n_instances) * 2.0,
        )

        def weight_of(index: int) -> float:
            category_boost = max(
                (CATEGORY_USER_BOOST[c] for c in category_sets[index]), default=1.0
            )
            return float(
                base_sizes[index]
                * (cfg.open_size_boost if open_flags[index] else 1.0)
                * COUNTRY_USER_BOOST.get(countries[index], 0.7)
                * category_boost
            )

        weights = np.asarray([weight_of(i) for i in range(cfg.n_instances)], dtype=float)

        # The flagship instances (pawoo.net, mstdn.jp, friends.nico, ...) are
        # overwhelmingly Japanese or US-hosted; pin the country mix of the
        # largest instances so Fig. 5's ordering is stable at small scale.
        n_big = max(1, int(0.08 * cfg.n_instances))
        big_indices = np.argsort(-weights)[:n_big]
        big_countries = self._sample_weighted(TOP_INSTANCE_COUNTRY_WEIGHTS, size=n_big)
        for position, index in enumerate(big_indices):
            countries[int(index)] = big_countries[position]
            weights[int(index)] = weight_of(int(index))

        # Mirror pawoo.net: one flagship instance is an adult/art community,
        # which is what makes the adult category tiny by instance count but
        # huge by user count (the Fig. 3 outlier).
        if len(big_indices) >= 2:
            adult_index = int(big_indices[1])
            tagged_flags[adult_index] = True
            category_sets[adult_index] = tuple(
                dict.fromkeys((Category.ADULT, Category.ART) + category_sets[adult_index])
            )
            weights[adult_index] = weight_of(adult_index)

        # Cap the share of any single instance so one draw from the heavy
        # tail cannot degenerate the whole scenario into a single giant.
        for _ in range(4):
            cap = cfg.max_instance_user_share * weights.sum()
            weights = np.minimum(weights, cap)

        self._popularity_weights = weights

        descriptors: list[InstanceDescriptor] = []
        for index in range(cfg.n_instances):
            descriptor = InstanceDescriptor(
                domain=self._domain_name(index, countries[index]),
                software=(
                    Software.PLEROMA
                    if self.rng.random() < cfg.pleroma_fraction
                    else Software.MASTODON
                ),
                registration=(
                    RegistrationPolicy.OPEN if open_flags[index] else RegistrationPolicy.CLOSED
                ),
                categories=category_sets[index],
                activity_policy=self._activity_policy_for(tagged_flags[index]),
                country=countries[index],
                asn=0,  # assigned below once sizes are known
                ip_address="",
                operator=self._sample_weighted(OPERATOR_WEIGHTS),
                created_at=self._instance_created_at(index),
                crawl_blocked=self.rng.random() < cfg.crawl_blocked_fraction,
                version="2.4.0" if self.rng.random() < 0.8 else "2.3.3",
            )
            descriptors.append(descriptor)

        self._assign_hosting(descriptors)
        return descriptors

    def _assign_hosting(self, descriptors: list[InstanceDescriptor]) -> None:
        """Assign ASes and IPs; the biggest instances land on the big clouds."""
        order = np.argsort(-self._popularity_weights)
        n_big = max(1, int(0.08 * len(descriptors)))
        big_indices = set(int(i) for i in order[:n_big])
        for index, descriptor in enumerate(descriptors):
            if index in big_indices:
                pool = BIG_INSTANCE_AS_POOL
            else:
                pool = COUNTRY_AS_POOLS.get(descriptor.country, GENERIC_AS_POOL)
            asns = [asn for asn, _ in pool]
            weights = np.asarray([w for _, w in pool], dtype=float)
            weights = weights / weights.sum()
            asn = int(self.rng.choice(asns, p=weights))
            descriptor.asn = asn
            descriptor.ip_address = self._ip_allocator.allocate(asn)

    # -- users ----------------------------------------------------------------

    def _create_users(
        self, network: FediverseNetwork, descriptors: list[InstanceDescriptor]
    ) -> list[_UserRecord]:
        cfg = self.config
        weights = self._popularity_weights / self._popularity_weights.sum()
        extra = cfg.total_users - cfg.n_instances
        allocation = np.ones(cfg.n_instances, dtype=int)
        if extra > 0:
            allocation += self.rng.multinomial(extra, weights)

        attractiveness = sample_power_law(
            self.rng,
            cfg.total_users,
            exponent=cfg.user_attractiveness_exponent,
            minimum=1.0,
            maximum=max(10.0, cfg.total_users / 2.0),
        )
        users: list[_UserRecord] = []
        user_index = 0
        window = cfg.window_minutes
        for instance_index, descriptor in enumerate(descriptors):
            instance_count = int(allocation[instance_index])
            for _ in range(instance_count):
                created_at = int(
                    descriptor.created_at
                    + self.rng.beta(1.3, 1.8) * max(1, window - descriptor.created_at)
                )
                username = f"user{user_index}"
                network.register_user(descriptor.domain, username, created_at, invited=True)
                users.append(
                    _UserRecord(
                        index=user_index,
                        ref=UserRef(username=username, domain=descriptor.domain),
                        instance_index=instance_index,
                        created_at=created_at,
                        attractiveness=float(attractiveness[user_index]),
                    )
                )
                user_index += 1
        return users

    # -- follower graph --------------------------------------------------------

    def _create_follows(
        self,
        network: FediverseNetwork,
        users: list[_UserRecord],
        descriptors: list[InstanceDescriptor],
    ) -> None:
        cfg = self.config
        n_users = len(users)
        attractiveness = np.asarray([u.attractiveness for u in users], dtype=float)
        global_probs = attractiveness / attractiveness.sum()
        all_indices = np.arange(n_users)

        by_instance: dict[int, np.ndarray] = {}
        by_country: dict[str, np.ndarray] = {}
        for user in users:
            by_instance.setdefault(user.instance_index, []).append(user.index)  # type: ignore[arg-type]
            country = descriptors[user.instance_index].country
            by_country.setdefault(country, []).append(user.index)  # type: ignore[arg-type]
        by_instance = {k: np.asarray(v, dtype=int) for k, v in by_instance.items()}
        by_country = {k: np.asarray(v, dtype=int) for k, v in by_country.items()}

        instance_probs = {
            key: attractiveness[idx] / attractiveness[idx].sum() for key, idx in by_instance.items()
        }
        country_probs = {
            key: attractiveness[idx] / attractiveness[idx].sum() for key, idx in by_country.items()
        }

        # Per-user out-degrees drawn from a bounded power law, scaled to the
        # target mean (the bound keeps the sample mean stable at small scales).
        raw_degrees = sample_power_law(
            self.rng,
            n_users,
            exponent=cfg.follow_degree_exponent,
            minimum=1.0,
            maximum=float(cfg.max_follows_per_user),
        )
        scale = cfg.mean_follows_per_user / max(raw_degrees.mean(), 1e-9)
        degrees = np.minimum(
            np.maximum(1, np.round(raw_degrees * scale)).astype(int),
            min(cfg.max_follows_per_user, n_users - 1),
        )

        for user in users:
            out_degree = int(degrees[user.index])
            country = descriptors[user.instance_index].country
            local_pool = by_instance[user.instance_index]
            country_pool = by_country[country]

            draws = self.rng.random(out_degree)
            n_local = int(np.sum(draws < cfg.same_instance_follow_prob)) if local_pool.size > 1 else 0
            n_country = (
                int(
                    np.sum(
                        (draws >= cfg.same_instance_follow_prob)
                        & (draws < cfg.same_instance_follow_prob + cfg.same_country_follow_prob)
                    )
                )
                if country_pool.size > 1
                else 0
            )
            n_global = out_degree - n_local - n_country

            picks: list[np.ndarray] = []
            if n_local:
                picks.append(
                    self.rng.choice(local_pool, size=n_local, p=instance_probs[user.instance_index])
                )
            if n_country:
                picks.append(
                    self.rng.choice(country_pool, size=n_country, p=country_probs[country])
                )
            if n_global:
                picks.append(self.rng.choice(all_indices, size=n_global, p=global_probs))
            if not picks:
                continue
            chosen = set(int(t) for t in np.concatenate(picks))
            chosen.discard(user.index)
            for target in sorted(chosen):
                network.follow(user.ref, users[target].ref, created_at=user.created_at)

    # -- toots ------------------------------------------------------------------

    def _create_toots(
        self,
        network: FediverseNetwork,
        users: list[_UserRecord],
        descriptors: list[InstanceDescriptor],
    ) -> None:
        cfg = self.config
        n_users = len(users)
        raw = self.rng.lognormal(mean=0.0, sigma=cfg.toots_per_user_sigma, size=n_users)
        multipliers = np.asarray(
            [
                cfg.closed_toot_multiplier
                if descriptors[u.instance_index].registration is RegistrationPolicy.CLOSED
                else 1.0
                for u in users
            ],
            dtype=float,
        )
        # Couple volume to attractiveness: widely-followed accounts toot far
        # more, which is what makes small instances' federated timelines
        # dominated by remote content (Fig. 14) and concentrates toots on
        # the flagship instances (Section 4.1).
        attractiveness = np.asarray([u.attractiveness for u in users], dtype=float)
        raw = raw * multipliers * (attractiveness ** cfg.toot_attractiveness_coupling)
        scale = cfg.total_toots_target / max(raw.sum(), 1e-9)
        budgets = np.maximum(0, np.round(raw * scale)).astype(int)

        window = cfg.window_minutes
        postings: list[tuple[int, int]] = []
        for user, budget in zip(users, budgets):
            user.toot_budget = int(budget)
            if budget == 0:
                continue
            times = user.created_at + self.rng.beta(1.6, 1.0, size=int(budget)) * max(
                1, window - user.created_at
            )
            postings.extend((int(t), user.index) for t in times)
        postings.sort()

        hashtags = [f"tag{i}" for i in range(cfg.hashtag_vocabulary)]
        for created_at, user_index in postings:
            user = users[user_index]
            visibility = (
                Visibility.PRIVATE
                if self.rng.random() < cfg.private_toot_fraction
                else Visibility.PUBLIC
            )
            toot_hashtags: tuple[str, ...] = ()
            if self.rng.random() < 0.3:
                toot_hashtags = (hashtags[int(self.rng.integers(0, cfg.hashtag_vocabulary))],)
            network.post_toot(
                author=user.ref,
                created_at=created_at,
                visibility=visibility,
                hashtags=toot_hashtags,
                content_warning=self.rng.random() < cfg.content_warning_fraction,
                media_count=1 if self.rng.random() < cfg.media_fraction else 0,
            )

    def _create_boosts(self, network: FediverseNetwork, users: list[_UserRecord]) -> None:
        cfg = self.config
        public_toots = []
        for instance in network.instances():
            public_toots.extend(t for t in instance.local_toots(public_only=True) if not t.is_boost)
        if not public_toots:
            return
        n_boosts = int(cfg.boost_fraction * len(public_toots))
        if n_boosts == 0:
            return
        toot_weights = np.asarray(
            [1.0 + t.media_count + len(t.hashtags) for t in public_toots], dtype=float
        )
        toot_probs = toot_weights / toot_weights.sum()
        booster_indices = self.rng.integers(0, len(users), size=n_boosts)
        original_indices = self.rng.choice(len(public_toots), size=n_boosts, p=toot_probs)
        window = cfg.window_minutes
        for booster_index, original_index in zip(booster_indices, original_indices):
            booster = users[int(booster_index)]
            original = public_toots[int(original_index)]
            created_at = int(
                min(window - 1, max(original.created_at + 1, booster.created_at) + self.rng.integers(1, MINUTES_PER_DAY * 3))
            )
            network.boost(booster.ref, original, created_at=created_at)

    # -- engagement ---------------------------------------------------------------

    def _generate_logins(
        self,
        network: FediverseNetwork,
        users: list[_UserRecord],
        descriptors: list[InstanceDescriptor],
    ) -> None:
        cfg = self.config
        users_by_instance: dict[int, list[_UserRecord]] = {}
        for user in users:
            users_by_instance.setdefault(user.instance_index, []).append(user)
        weeks = max(1, cfg.window_days // 7)
        for instance_index, descriptor in enumerate(descriptors):
            local_users = users_by_instance.get(instance_index, [])
            if not local_users:
                continue
            if descriptor.registration is RegistrationPolicy.CLOSED:
                a, b = cfg.closed_activity_beta
            else:
                a, b = cfg.open_activity_beta
            activity_level = float(self.rng.beta(a, b))
            instance = network.get_instance(descriptor.domain)
            for week in range(weeks):
                week_start = week * 7 * MINUTES_PER_DAY
                engaged = self.rng.random(len(local_users)) < activity_level * self.rng.uniform(0.6, 0.9)
                for user, active in zip(local_users, engaged):
                    if active and user.created_at <= week_start + 7 * MINUTES_PER_DAY:
                        minute = week_start + int(self.rng.integers(0, 7 * MINUTES_PER_DAY))
                        instance.record_login(user.ref.username, minute)

    # -- availability ---------------------------------------------------------------

    def _downtime_target(self, size_rank_fraction: float = 0.5) -> float:
        """Draw a per-instance downtime fraction.

        ``size_rank_fraction`` is the instance's popularity rank as a
        fraction (0 = largest).  Availability is only weakly related to
        popularity (the paper finds a correlation of -0.04, with the very
        largest instances slightly worse than the upper-middle group), so
        the dependence here is deliberately mild.
        """
        cfg = self.config
        u = self.rng.random()
        if u < cfg.never_down_fraction:
            return 0.0
        if u < cfg.never_down_fraction + cfg.low_downtime_fraction:
            target = float(self.rng.uniform(0.001, 0.05))
        elif u < 1.0 - cfg.high_downtime_fraction:
            target = float(self.rng.uniform(0.05, 0.15))
        else:
            target = float(self.rng.uniform(0.5, 0.95))
        if size_rank_fraction > 0.7:
            target *= 1.3
        elif size_rank_fraction < 0.02:
            target *= 1.1
        elif size_rank_fraction < 0.3:
            target *= 0.8
        return min(target, 0.95)

    def _generate_availability(
        self, network: FediverseNetwork, descriptors: list[InstanceDescriptor]
    ) -> None:
        cfg = self.config
        schedule = network.availability
        window = cfg.window_minutes

        permanently_down = set(
            int(i)
            for i in self.rng.choice(
                len(descriptors),
                size=int(cfg.permanently_down_fraction * len(descriptors)),
                replace=False,
            )
        )
        size_order = np.argsort(-self._popularity_weights)
        size_rank_fraction = np.empty(len(descriptors), dtype=float)
        size_rank_fraction[size_order] = np.linspace(0.0, 1.0, len(descriptors))
        for index, descriptor in enumerate(descriptors):
            if index in permanently_down:
                from_minute = int(self.rng.uniform(0.3, 0.95) * window)
                schedule.mark_permanently_down(descriptor.domain, from_minute)
                continue
            target = self._downtime_target(float(size_rank_fraction[index]))
            if target <= 0:
                continue
            budget = target * window
            accumulated = 0.0
            guard = 0
            # Well-run instances fail in short bursts (hours); badly-run or
            # abandoned instances disappear for days at a time.
            if target > 0.5:
                median_minutes, sigma = 1.5 * MINUTES_PER_DAY, 1.0
            else:
                median_minutes, sigma = 150.0, 0.9
            while accumulated < budget and guard < 300:
                guard += 1
                duration = float(
                    np.clip(
                        self.rng.lognormal(mean=np.log(median_minutes), sigma=sigma),
                        5,
                        45 * MINUTES_PER_DAY,
                    )
                )
                duration = min(duration, budget - accumulated + 30)
                start = int(self.rng.uniform(0, max(1, window - duration)))
                end = int(min(window, start + duration))
                if end <= start:
                    continue
                schedule.add_outage(
                    Outage(
                        domain=descriptor.domain,
                        window=TimeWindow(start, end),
                        cause=OutageCause.INSTANCE,
                    )
                )
                accumulated += end - start

        self._generate_as_outages(schedule, descriptors)

    def _generate_as_outages(self, schedule, descriptors: list[InstanceDescriptor]) -> None:
        cfg = self.config
        window = cfg.window_minutes
        domains_by_asn: dict[int, list[str]] = {}
        for descriptor in descriptors:
            domains_by_asn.setdefault(descriptor.asn, []).append(descriptor.domain)
        # Prefer the failure-prone ASes named in Table 1 when they host instances.
        preferred = [9370, 20473, 8075, 12322, 2516, 9371]
        candidates = [asn for asn in preferred if len(domains_by_asn.get(asn, [])) >= 2]
        for asn, domains in sorted(domains_by_asn.items(), key=lambda kv: -len(kv[1])):
            if len(candidates) >= cfg.n_as_outage_ases:
                break
            if asn not in candidates and len(domains) >= 2:
                candidates.append(asn)
        for asn in candidates[: cfg.n_as_outage_ases]:
            n_events = int(self.rng.integers(1, 5))
            for _ in range(n_events):
                duration = int(self.rng.uniform(60, 24 * 60))
                start = int(self.rng.uniform(0, max(1, window - duration)))
                event = ASOutageEvent(
                    asn=asn,
                    window=TimeWindow(start, min(window, start + duration)),
                    domains=tuple(sorted(domains_by_asn[asn])),
                )
                schedule.add_as_event(event)

    # -- certificates -----------------------------------------------------------------

    def _issue_certificates(
        self, network: FediverseNetwork, descriptors: list[InstanceDescriptor]
    ) -> None:
        cfg = self.config
        registry = network.certificates
        window = cfg.window_minutes
        mass_expiry_day = int(self.rng.uniform(0.5, 0.9) * cfg.window_days)
        n_mass = max(1, int(cfg.mass_cert_expiry_fraction * len(descriptors)))
        mass_indices = set(
            int(i) for i in self.rng.choice(len(descriptors), size=n_mass, replace=False)
        )

        for index, descriptor in enumerate(descriptors):
            authority = self._sample_weighted(CA_WEIGHTS)
            validity = CERTIFICATE_AUTHORITIES[authority]
            validity_minutes = validity * MINUTES_PER_DAY
            if index in mass_indices and authority == "Let's Encrypt":
                # Issue so that the certificate expires on the shared mass-expiry
                # day and the renewal arrives a day late (Fig. 9b's spike).
                issued_at = mass_expiry_day * MINUTES_PER_DAY - validity_minutes
                issued_at = max(0, issued_at)
                registry.issue(descriptor.domain, authority, issued_at, validity)
                renewal_at = issued_at + validity_minutes + MINUTES_PER_DAY
                if renewal_at < window:
                    registry.issue(descriptor.domain, authority, renewal_at, validity)
                continue

            issued_at = max(0, descriptor.created_at)
            registry.issue(descriptor.domain, authority, issued_at, validity)
            renew_at = issued_at + validity_minutes
            lapses = self.rng.random() < cfg.cert_lapse_fraction
            while renew_at < window:
                if lapses:
                    renew_at += int(self.rng.uniform(0.5, 4.0) * MINUTES_PER_DAY)
                    lapses = False
                registry.issue(descriptor.domain, authority, renew_at, validity)
                renew_at += validity_minutes


#: Named preset registry, smallest first.
_PRESETS: dict[str, Callable[..., ScenarioConfig]] = {
    "tiny": ScenarioConfig.tiny,
    "small": ScenarioConfig.small,
    "medium": ScenarioConfig.medium,
    "large": ScenarioConfig.large,
    "xlarge": ScenarioConfig.xlarge,
}


def preset_names() -> tuple[str, ...]:
    """Every valid scenario preset name, smallest first."""
    return tuple(_PRESETS)


def scenario_config(preset: str, seed: int = 7) -> ScenarioConfig:
    """Resolve a preset name to its :class:`ScenarioConfig`.

    Unknown names raise :class:`~repro.errors.ConfigurationError` listing
    the valid presets rather than leaking a bare ``KeyError``.
    """
    try:
        factory = _PRESETS[preset]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown scenario preset: {preset!r} "
            f"(valid presets: {', '.join(_PRESETS)})"
        ) from exc
    return factory(seed=seed)


def build_scenario(preset: str = "small", seed: int = 7) -> FediverseNetwork:
    """Build a ready-to-analyse fediverse using a named preset.

    ``preset`` is one of ``"tiny"``, ``"small"``, ``"medium"``,
    ``"large"`` (the 1M+-toot corpus for sharded evaluation) or
    ``"xlarge"`` (10M toots; use the columnar path).
    """
    return ScenarioGenerator(scenario_config(preset, seed=seed)).generate()
