"""A self-contained Fediverse (Mastodon/Pleroma) simulator.

The paper measured the live Fediverse over HTTPS.  This package provides
the offline substitute: a population of instances with users, toots,
follows, federation, hosting metadata, TLS certificates and an outage
process, exposed through the same API surface the paper crawled
(``/api/v1/instance``, federated timelines, follower pages).
"""

from repro.fediverse.entities import (
    ActivityPolicy,
    ActivityType,
    Category,
    Follow,
    InstanceDescriptor,
    OperatorType,
    RegistrationPolicy,
    Software,
    Toot,
    User,
    UserRef,
    Visibility,
)
from repro.fediverse.geo import AutonomousSystem, GeoDatabase, GeoRecord, WELL_KNOWN_ASES
from repro.fediverse.certificates import Certificate, CertificateRegistry, CERTIFICATE_AUTHORITIES
from repro.fediverse.uptime import AvailabilitySchedule, Outage, OutageCause
from repro.fediverse.instance import InstanceServer
from repro.fediverse.network import FediverseNetwork
from repro.fediverse.workload import (
    ScenarioConfig,
    ScenarioGenerator,
    build_scenario,
    preset_names,
    scenario_config,
)
from repro.fediverse.columnar import (
    ColumnarScenario,
    ColumnarScenarioGenerator,
    build_columnar_scenario,
)
from repro.fediverse.timeline import ColumnarTimeline

__all__ = [
    "ActivityPolicy",
    "ActivityType",
    "AutonomousSystem",
    "AvailabilitySchedule",
    "CERTIFICATE_AUTHORITIES",
    "Category",
    "Certificate",
    "CertificateRegistry",
    "ColumnarScenario",
    "ColumnarScenarioGenerator",
    "ColumnarTimeline",
    "FediverseNetwork",
    "Follow",
    "GeoDatabase",
    "GeoRecord",
    "InstanceDescriptor",
    "InstanceServer",
    "OperatorType",
    "Outage",
    "OutageCause",
    "RegistrationPolicy",
    "ScenarioConfig",
    "ScenarioGenerator",
    "Software",
    "Toot",
    "User",
    "UserRef",
    "Visibility",
    "WELL_KNOWN_ASES",
    "build_columnar_scenario",
    "build_scenario",
    "preset_names",
    "scenario_config",
]
