"""Temporal churn — availability through simulated time, per strategy.

Paper context (§6.2, Fig. 10): Mastodon instances do not just die — 4.7%
of outages last under half an hour and most instances that disappear
come back within days.  The ``churn`` runner bootstraps per-instance
outage schedules from those empirical distributions and sweeps toot
availability tick by tick, so replication's payoff shows up as a lifted
*worst probed tick*, not just a lifted mean.

Thin timing wrapper over the ``churn`` registry runner: the bootstrap
sampling, tick discretisation and the batched temporal sweep (one
single-step schedule column per tick) all run inside the experiment;
the heavy identity/throughput gates live in
``benchmarks/bench_failure_models.py``.

``pedantic(rounds=1)``: the context memoises placements and the sampled
churn models, so repeated rounds would time cache hits, not the sweep.
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_temporal_churn(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: get_experiment("churn").run(ctx), rounds=1, iterations=1
    )
    emit("Temporal churn — availability through simulated time", result.render_text())

    mean_none = result.scalar("mean_availability[no-rep]")
    mean_srep = result.scalar("mean_availability[s-rep]")
    mean_rand = result.scalar("mean_availability[n=2]")
    # replication lifts the mean availability through churn
    assert mean_none < mean_srep < mean_rand
    # and lifts the floor: the worst probed tick improves strictly too
    assert (
        result.scalar("min_availability[no-rep]")
        < result.scalar("min_availability[s-rep]")
        < result.scalar("min_availability[n=2]")
    )
    # with 2 random replicas the worst tick still keeps the vast majority
    assert result.scalar("min_availability[n=2]") > 0.9
