"""Growth of the instance/user/toot population over time (Fig. 1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.instances import InstancesDataset
from repro.simtime import MINUTES_PER_DAY


@dataclass(frozen=True, slots=True)
class GrowthPoint:
    """Population counts at one point of the observation window."""

    day: int
    instances: int
    users: int
    toots: int


def growth_timeseries(dataset: InstancesDataset) -> list[GrowthPoint]:
    """Daily instance/user/toot counts across the observation window.

    The monitor may probe much more often than daily; this keeps the last
    probe of each day, which is how the paper's Fig. 1 downsamples the
    five-minute snapshots.
    """
    per_day: dict[int, GrowthPoint] = {}
    for row in dataset.growth_series():
        day = row["minute"] // MINUTES_PER_DAY
        per_day[day] = GrowthPoint(
            day=day,
            instances=row["instances"],
            users=row["users"],
            toots=row["toots"],
        )
    return [per_day[day] for day in sorted(per_day)]


def growth_summary(dataset: InstancesDataset) -> dict[str, float]:
    """Headline growth numbers comparable with Section 4.1.

    Returns the relative growth of instances and users over the first and
    second halves of the window, plus the final population counts.
    """
    series = growth_timeseries(dataset)
    if not series:
        return {"instances": 0, "users": 0, "toots": 0}
    first = series[0]
    midpoint = series[len(series) // 2]
    last = series[-1]

    def _growth(before: int, after: int) -> float:
        if before == 0:
            return 0.0
        return (after - before) / before

    return {
        "final_instances": float(last.instances),
        "final_users": float(last.users),
        "final_toots": float(last.toots),
        "instance_growth_first_half": _growth(first.instances, midpoint.instances),
        "instance_growth_second_half": _growth(midpoint.instances, last.instances),
        "user_growth_first_half": _growth(first.users, midpoint.users),
        "user_growth_second_half": _growth(midpoint.users, last.users),
    }
