"""Fig. 4 — prohibited and allowed activities across instances.

Paper shape: spam is the most commonly prohibited activity (76% of tagged
instances), followed by pornography and nudity without #NSFW; instances
allowing advertising hold a disproportionate share of users and toots.

Thin timing wrapper over the ``fig4`` registry runner.
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_fig04_activities(benchmark, ctx):
    result = benchmark(lambda: get_experiment("fig4").run(ctx))
    emit("Fig. 4 — prohibited/allowed activities", result.render_text())

    # spam is among the most prohibited activities
    assert result.scalar("spam_prohibit_rank") is not None
    assert result.scalar("spam_prohibit_rank") <= 3
    assert 0.0 < result.scalar("allow_all_share") < 0.6
