"""Table 1 — AS-wide failures detected from correlated instance outages.

Paper shape: six ASes suffer at least one outage during which every
hosted instance is simultaneously unreachable; the largest (Sakura) takes
out ~97 instances and millions of toots at once.
"""

from __future__ import annotations

from repro.core import availability
from repro.reporting import format_table

from benchmarks.conftest import emit

MIN_INSTANCES = 3  # the paper uses 8 at full (4,328-instance) scale


def test_table1_as_failures(benchmark, data, network):
    reports = benchmark(
        lambda: availability.detect_as_failures(
            data.instances, geo=network.geo, min_instances=MIN_INSTANCES
        )
    )
    rows = [
        [
            f"AS{report.asn}",
            report.instances,
            report.failures,
            report.ips,
            report.users,
            report.toots,
            report.organisation,
            report.caida_rank,
            report.peers,
        ]
        for report in reports
    ]
    emit(
        "Table 1 — AS failures (all co-located instances down simultaneously)",
        format_table(
            ["ASN", "Instances", "Failures", "IPs", "Users", "Toots", "Org.", "Rank", "Peers"],
            rows,
        ),
    )

    assert reports, "expected at least one AS-wide failure (the scenario injects several)"
    assert all(report.instances >= MIN_INSTANCES for report in reports)
    assert all(report.failures >= 1 for report in reports)
    # the worst AS failure takes down many instances and their content at once
    assert max(report.toots for report in reports) > 0
