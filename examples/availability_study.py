"""Availability study: downtime, outages, certificates and AS failures.

Reproduces the Section 4.4 analyses (Figs. 7-10, Table 1) on a synthetic
fediverse and prints the resulting tables, including the comparison with
Twitter's 2007 uptime.

Run with::

    python examples/availability_study.py [preset] [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import build_scenario, collect_datasets
from repro.core import availability
from repro.datasets import TwitterBaselines
from repro.reporting import format_percentage, format_table


def main(preset: str = "tiny", seed: int = 21) -> None:
    network = build_scenario(preset, seed=seed)
    data = collect_datasets(network, monitor_interval_minutes=12 * 60)
    instances = data.instances

    headlines = availability.downtime_headlines(instances)
    print(
        format_table(
            ["metric", "measured", "paper"],
            [
                ["instances with <5% downtime", format_percentage(headlines["share_below_5pct_downtime"]), "~50%"],
                ["instances with >50% downtime", format_percentage(headlines["share_above_50pct_downtime"]), "11%"],
                ["mean downtime", format_percentage(headlines["mean_downtime"]), "10.95%"],
            ],
            title="Fig. 7 — instance downtime",
        )
    )

    twitter = TwitterBaselines.generate(days=network.clock.window_days, n_users=500, seed=seed)
    comparison = availability.twitter_downtime_comparison(instances, twitter.daily_downtime)
    print()
    print(
        format_table(
            ["system", "mean daily downtime"],
            [
                ["Mastodon (synthetic)", format_percentage(comparison["mastodon_mean_downtime"])],
                ["Twitter 2007 (baseline)", format_percentage(comparison["twitter_mean_downtime"])],
            ],
            title="Fig. 8 — Mastodon vs Twitter",
        )
    )

    report = availability.outage_durations(instances, min_days=1.0)
    durations = report.durations_days
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["instances down at least once", format_percentage(report.share_of_instances_down_at_least_once)],
                ["instances down for >= 1 day", format_percentage(report.share_down_at_least_one_day)],
                ["median long outage (days)", round(float(np.median(durations)), 2) if durations else 0],
                ["longest outage (days)", round(max(durations), 1) if durations else 0],
                ["users affected", report.affected_users],
                ["toots affected", report.affected_toots],
            ],
            title="Fig. 10 — continuous outages",
        )
    )

    footprint = availability.certificate_footprint(instances)
    print()
    print(
        format_table(
            ["certificate authority", "share of instances"],
            [[authority, format_percentage(share)] for authority, share in footprint.items()],
            title="Fig. 9(a) — certificate authorities",
        )
    )
    cert_share = availability.certificate_outage_share(instances, network.certificates)
    print(f"\nShare of outages attributable to expired certificates: {format_percentage(cert_share)} (paper: 6.3%)")

    failures = availability.detect_as_failures(instances, geo=network.geo, min_instances=3)
    print()
    rows = [
        [f"AS{r.asn}", r.organisation, r.instances, r.failures, r.users, r.toots]
        for r in failures
    ] or [["-", "no AS-wide failure detected at this scale", 0, 0, 0, 0]]
    print(
        format_table(
            ["ASN", "organisation", "instances", "failures", "users", "toots"],
            rows,
            title="Table 1 — AS-wide failures",
        )
    )


if __name__ == "__main__":
    preset_arg = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    seed_arg = int(sys.argv[2]) if len(sys.argv) > 2 else 21
    main(preset_arg, seed_arg)
