"""Tests for the FediverseNetwork container."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError, UnknownInstanceError
from repro.fediverse import FediverseNetwork, InstanceDescriptor
from repro.fediverse.entities import Visibility
from repro.fediverse.uptime import Outage
from repro.simtime import MINUTES_PER_DAY, SimClock, TimeWindow
from tests.conftest import build_mini_network, ref


class TestInstanceRegistry:
    def test_add_and_get(self):
        network = build_mini_network()
        assert len(network) == 3
        assert "alpha.example" in network
        assert network.get_instance("alpha.example").domain == "alpha.example"
        assert network.domains() == ["alpha.example", "beta.example", "gamma.example"]

    def test_duplicate_instance_rejected(self):
        network = build_mini_network()
        with pytest.raises(SimulationError):
            network.add_instance(InstanceDescriptor(domain="alpha.example"))

    def test_unknown_instance(self):
        network = build_mini_network()
        with pytest.raises(UnknownInstanceError):
            network.get_instance("missing.example")
        with pytest.raises(UnknownInstanceError):
            network.is_online("missing.example")

    def test_geo_registration_on_add(self):
        network = build_mini_network()
        assert network.geo.country_of("10.0.0.1") == "JP"
        assert network.geo.asn_of("10.0.1.1") == 16509


class TestUserActions:
    def test_toot_ids_are_globally_unique_and_increasing(self):
        network = build_mini_network()
        first = network.post_toot(ref("alice@alpha.example"), created_at=1)
        second = network.post_toot(ref("bob@beta.example"), created_at=2)
        assert second.toot_id > first.toot_id

    def test_post_toot_defaults_to_clock_time(self):
        network = build_mini_network()
        network.clock.set(500)
        toot = network.post_toot(ref("alice@alpha.example"))
        assert toot.created_at == 500

    def test_total_counts(self):
        network = build_mini_network()
        network.post_toot(ref("alice@alpha.example"), created_at=1)
        network.post_toot(ref("bob@beta.example"), created_at=2, visibility=Visibility.PRIVATE)
        assert network.total_users() == 4
        assert network.total_toots() == 2
        assert network.total_toots(public_only=True) == 1
        stats = network.stats()
        assert stats["instances"] == 3
        assert stats["users"] == 4
        assert stats["toots"] == 2

    def test_record_login(self):
        network = build_mini_network()
        network.record_login(ref("alice@alpha.example"), minute=30)
        alpha = network.get_instance("alpha.example")
        assert alpha.counters.logins == 1

    def test_all_users_and_follow_edges(self):
        network = build_mini_network()
        network.follow(ref("alice@alpha.example"), ref("bob@beta.example"))
        assert len(network.all_users()) == 4
        assert len(network.follow_edges()) == 1

    def test_subscription_edges_cached_until_the_next_follow(self):
        network = build_mini_network()
        network.follow(ref("alice@alpha.example"), ref("bob@beta.example"))
        first = network.subscription_edges()
        assert first == {("alpha.example", "beta.example")}
        # repeated calls return the cached set, not a rebuilt copy
        assert network.subscription_edges() is first
        # a new follow invalidates the cache
        network.follow(ref("chloe@gamma.example"), ref("bob@beta.example"))
        second = network.subscription_edges()
        assert second is not first
        assert second == {
            ("alpha.example", "beta.example"),
            ("gamma.example", "beta.example"),
        }


class TestAvailability:
    def test_outage_makes_instance_offline(self):
        network = build_mini_network()
        network.availability.add_outage(
            Outage("alpha.example", TimeWindow(100, 200))
        )
        assert network.is_online("alpha.example", 50)
        assert not network.is_online("alpha.example", 150)
        assert "alpha.example" not in network.online_domains(150)
        assert "beta.example" in network.online_domains(150)

    def test_lapsed_certificate_makes_instance_offline(self):
        network = build_mini_network()
        network.certificates.issue("alpha.example", "Let's Encrypt", issued_at=0, validity_days=1)
        assert network.is_online("alpha.example", 10)
        assert not network.is_online("alpha.example", 2 * MINUTES_PER_DAY)

    def test_online_defaults_to_clock_now(self):
        network = build_mini_network()
        network.availability.add_outage(Outage("alpha.example", TimeWindow(0, 10)))
        network.clock.set(5)
        assert not network.is_online("alpha.example")
        network.clock.set(20)
        assert network.is_online("alpha.example")


class TestClockWiring:
    def test_custom_clock_respected(self):
        clock = SimClock(window_days=3)
        network = FediverseNetwork(clock=clock)
        assert network.availability.window_minutes == 3 * MINUTES_PER_DAY
