"""Tests for the synthetic Twitter baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.datasets.graphs import largest_connected_component_fraction
from repro.datasets.twitter import (
    TWITTER_2007_MEAN_DOWNTIME,
    TwitterBaselines,
    build_twitter_follower_graph,
    twitter_daily_downtime,
)


class TestDowntimeBaseline:
    def test_mean_matches_published_value(self):
        series = twitter_daily_downtime(300, seed=1)
        assert np.mean(series) == pytest.approx(TWITTER_2007_MEAN_DOWNTIME, rel=0.05)

    def test_values_are_valid_fractions(self):
        series = twitter_daily_downtime(200, seed=2)
        assert all(0.0 <= value <= 0.95 for value in series)

    def test_custom_mean(self):
        series = twitter_daily_downtime(200, seed=3, mean_downtime=0.05)
        assert np.mean(series) == pytest.approx(0.05, rel=0.1)

    def test_reproducible(self):
        assert twitter_daily_downtime(50, seed=9) == twitter_daily_downtime(50, seed=9)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            twitter_daily_downtime(0)
        with pytest.raises(ConfigurationError):
            twitter_daily_downtime(10, mean_downtime=1.5)


class TestFollowerGraphBaseline:
    def test_size_and_connectivity(self):
        graph = build_twitter_follower_graph(n_users=1200, seed=4)
        assert graph.number_of_nodes() == 1200
        # the paper's Twitter LCC covers ~95% of accounts
        assert largest_connected_component_fraction(graph) > 0.9

    def test_heavy_tailed_in_degree(self):
        graph = build_twitter_follower_graph(n_users=1500, seed=5)
        in_degrees = sorted((d for _, d in graph.in_degree()), reverse=True)
        assert in_degrees[0] > 10 * np.median([d for d in in_degrees if d > 0])

    def test_robust_to_removing_top_decile(self):
        graph = build_twitter_follower_graph(n_users=1000, seed=6)
        ranked = sorted(graph.degree(), key=lambda kv: kv[1], reverse=True)
        survivors = graph.copy()
        survivors.remove_nodes_from([node for node, _ in ranked[:100]])
        fraction = largest_connected_component_fraction(survivors)
        # the paper reports ~80% of users still connected after removing the top 10%
        assert fraction > 0.5

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            build_twitter_follower_graph(n_users=5)
        with pytest.raises(ConfigurationError):
            build_twitter_follower_graph(n_users=100, mean_out_degree=0)


class TestBundle:
    def test_generate(self):
        baselines = TwitterBaselines.generate(days=60, n_users=500, seed=11)
        assert len(baselines.daily_downtime) == 60
        assert baselines.follower_graph.number_of_nodes() == 500
        assert baselines.mean_downtime == pytest.approx(TWITTER_2007_MEAN_DOWNTIME, rel=0.05)
