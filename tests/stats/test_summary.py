"""Tests for summary statistics: percentiles, Gini, correlations, box plots."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.stats.summary import (
    boxplot_stats,
    gini_coefficient,
    pearson_correlation,
    percentile,
    spearman_correlation,
    summarise,
)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_bounds_checked(self):
        with pytest.raises(AnalysisError):
            percentile([1], 101)
        with pytest.raises(AnalysisError):
            percentile([], 50)


class TestGini:
    def test_perfect_equality(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_perfect_inequality_approaches_one(self):
        sample = [0] * 99 + [100]
        assert gini_coefficient(sample) > 0.95

    def test_all_zero(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_rejects_negative_and_empty(self):
        with pytest.raises(AnalysisError):
            gini_coefficient([-1, 1])
        with pytest.raises(AnalysisError):
            gini_coefficient([])

    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=2, max_size=100))
    def test_gini_bounded(self, sample):
        value = gini_coefficient(sample)
        assert 0.0 <= value <= 1.0

    @given(st.lists(st.floats(0.1, 1e6, allow_nan=False), min_size=2, max_size=50))
    def test_gini_scale_invariant(self, sample):
        assert gini_coefficient(sample) == pytest.approx(
            gini_coefficient([3.5 * v for v in sample]), abs=1e-9
        )


class TestCorrelation:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_input_gives_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_too_few_observations(self):
        with pytest.raises(AnalysisError):
            pearson_correlation([1], [2])

    def test_spearman_monotone_transform(self):
        xs = [1, 2, 3, 4, 5]
        ys = [v ** 3 for v in xs]
        assert spearman_correlation(xs, ys) == pytest.approx(1.0)

    def test_spearman_with_ties(self):
        value = spearman_correlation([1, 2, 2, 3], [1, 2, 2, 3])
        assert value == pytest.approx(1.0)


class TestBoxplot:
    def test_basic_quartiles(self):
        stats = boxplot_stats(range(1, 101))
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 < stats.median < stats.q3
        assert stats.minimum == 1
        assert stats.maximum == 100
        assert stats.iqr == stats.q3 - stats.q1

    def test_outliers_detected(self):
        stats = boxplot_stats([1, 2, 3, 4, 5, 100])
        assert 100 in stats.outliers
        assert stats.whisker_high <= 5

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            boxplot_stats([])

    @given(st.lists(st.floats(-1e4, 1e4, allow_nan=False), min_size=1, max_size=100))
    def test_ordering_invariants(self, sample):
        stats = boxplot_stats(sample)
        assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum
        assert stats.whisker_low <= stats.whisker_high


class TestSummarise:
    def test_fields_present_and_consistent(self):
        result = summarise([1, 2, 3, 4])
        assert result["count"] == 4
        assert result["sum"] == 10
        assert result["min"] == 1
        assert result["max"] == 4
        assert result["median"] == pytest.approx(2.5)
        assert result["mean"] == pytest.approx(np.mean([1, 2, 3, 4]))

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            summarise([])
