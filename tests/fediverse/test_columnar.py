"""The columnar scenario generator: shape, identity with its own
materialisation, paging semantics, and the golden per-preset pins.

The columnar generator draws whole numpy columns, so it consumes the
seed's RNG stream in a different order than the legacy per-event
generator — the two populations are *statistically* matched but not
bit-identical.  Both are pinned here at tiny/seed-11: the legacy pin
guards the object path the differential suite materialises against, and
the columnar pin guards every stream consumer downstream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crawler import SimulatedTransport
from repro.errors import ConfigurationError
from repro.fediverse import (
    ColumnarTimeline,
    build_columnar_scenario,
    build_scenario,
    preset_names,
    scenario_config,
)
from repro.fediverse.timeline import DEFAULT_PAGE_SIZE, Timeline
from repro.fediverse.entities import Toot, UserRef, Visibility
from tests.conftest import TINY_SEED

#: Golden population pins at tiny/seed-11 — one per generator.  A
#: change here means the scenario itself changed: every golden number
#: in the analysis suites needs re-deriving, so bump deliberately.
GOLDEN_LEGACY_TINY = {
    "instances": 40,
    "users": 1200,
    "toots": 7610,
    "public_toots": 6164,
    "follow_edges": 6203,
    "federation_edges": 562,
}
GOLDEN_COLUMNAR_TINY = {
    "instances": 40,
    "users": 1200,
    "toots": 7613,
    "public_toots": 6200,
    "follow_edges": 6245,
    "federation_edges": 560,
}


@pytest.fixture(scope="module")
def tiny_columnar():
    """The columnar tiny scenario, generated once per module."""
    return build_columnar_scenario("tiny", seed=TINY_SEED)


class TestGoldenStats:
    def test_legacy_tiny_pin(self, tiny_network):
        assert tiny_network.stats() == GOLDEN_LEGACY_TINY

    def test_columnar_tiny_pin(self, tiny_columnar):
        assert tiny_columnar.stats() == GOLDEN_COLUMNAR_TINY

    def test_generators_statistically_close(self):
        # not bit-identical (different draw order), but the populations
        # must land within a few percent of each other
        legacy, columnar = GOLDEN_LEGACY_TINY, GOLDEN_COLUMNAR_TINY
        for key in legacy:
            assert abs(legacy[key] - columnar[key]) <= 0.05 * legacy[key]


class TestColumnShapes:
    def test_column_alignment(self, tiny_columnar):
        s = tiny_columnar
        assert s.user_instance.shape == s.user_created.shape == (s.n_users,)
        assert s.follow_src.shape == s.follow_dst.shape
        for column in (
            s.toot_author,
            s.toot_created,
            s.toot_private,
            s.toot_tag,
            s.toot_cw,
            s.toot_media,
            s.toot_boost_of,
        ):
            assert column.shape == (s.n_toots,)
        assert s.login_user.shape == s.login_minute.shape

    def test_users_contiguous_per_instance(self, tiny_columnar):
        inst = tiny_columnar.user_instance
        # non-decreasing: each instance's users form one contiguous block
        assert bool(np.all(inst[1:] >= inst[:-1]))

    def test_follows_deduplicated_and_ordered(self, tiny_columnar):
        s = tiny_columnar
        keys = s.follow_src.astype(np.int64) * s.n_users + s.follow_dst.astype(np.int64)
        assert bool(np.all(keys[1:] > keys[:-1]))  # owner-major, strictly sorted
        assert not bool(np.any(s.follow_src == s.follow_dst))

    def test_toots_sorted_and_in_window(self, tiny_columnar):
        s = tiny_columnar
        # originals are time-sorted (legacy postings.sort()); boosts are
        # allocated afterwards with their own later-than-original times
        originals = s.toot_created[s.toot_boost_of == 0]
        assert bool(np.all(originals[1:] >= originals[:-1]))
        assert 0 <= int(s.toot_created.min())
        assert int(s.toot_created.max()) < s.config.window_minutes

    def test_boosts_point_backwards_at_public_originals(self, tiny_columnar):
        s = tiny_columnar
        boosts = np.flatnonzero(s.toot_boost_of > 0)
        assert boosts.size > 0
        originals = s.toot_boost_of[boosts] - 1
        assert bool(np.all(originals < boosts))
        assert not bool(np.any(s.toot_private[originals]))


class TestMaterialisationIdentity:
    """to_network() replays the columns through the real network."""

    def test_stats_match(self, tiny_columnar):
        assert tiny_columnar.to_network().stats() == tiny_columnar.stats()

    def test_timeline_pages_match_the_crawled_api(self, tiny_columnar):
        transport = SimulatedTransport(tiny_columnar.to_network())
        minute = tiny_columnar.config.window_minutes - 1
        domain = next(
            d.domain
            for d in sorted(tiny_columnar.descriptors, key=lambda d: d.domain)
            if tiny_columnar._crawlable(d, minute) and not d.crawl_blocked
        )
        max_id = None
        pages = 0
        while pages < 5:
            url = f"https://{domain}/api/v1/timelines/public?limit=40"
            if max_id is not None:
                url += f"&max_id={max_id}"
            payloads = transport.get(url, at_minute=minute).payload
            rendered = tiny_columnar.timeline_page(domain, max_id=max_id, limit=40)
            assert rendered == payloads
            if len(payloads) < 40:
                break
            max_id = payloads[-1]["id"]
            pages += 1
        assert pages > 0 or max_id is None


class TestDeterminism:
    def test_same_seed_same_columns(self):
        first = build_columnar_scenario("tiny", seed=3)
        second = build_columnar_scenario("tiny", seed=3)
        assert np.array_equal(first.user_instance, second.user_instance)
        assert np.array_equal(first.follow_src, second.follow_src)
        assert np.array_equal(first.toot_created, second.toot_created)
        assert np.array_equal(first.login_minute, second.login_minute)

    def test_different_seed_differs(self):
        first = build_columnar_scenario("tiny", seed=3)
        second = build_columnar_scenario("tiny", seed=4)
        assert first.stats() != second.stats()


class TestPresetRegistry:
    def test_names(self):
        assert preset_names() == ("tiny", "small", "medium", "large", "xlarge")

    def test_unknown_preset_lists_the_valid_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            scenario_config("bogus")
        message = str(excinfo.value)
        assert "'bogus'" in message
        for name in preset_names():
            assert name in message

    def test_xlarge_targets_ten_million_toots(self):
        config = scenario_config("xlarge")
        assert config.label == "xlarge"
        assert config.total_toots_target >= 10_000_000
        assert config.n_instances == 800


class TestColumnarTimeline:
    def _pair(self):
        """A Timeline and ColumnarTimeline over the same toots."""
        ids = [2, 5, 6, 9, 12, 17]
        public = [True, False, True, True, False, True]
        timeline = Timeline()
        for toot_id, is_public in zip(ids, public):
            timeline.add(
                Toot(
                    toot_id=toot_id,
                    author=UserRef(username="a", domain="x.example"),
                    created_at=toot_id,
                    visibility=Visibility.PUBLIC if is_public else Visibility.PRIVATE,
                )
            )
        return timeline, ColumnarTimeline(np.array(ids), np.array(public))

    @pytest.mark.parametrize("max_id", [None, 1, 2, 3, 6, 9, 12, 17, 18, 100])
    @pytest.mark.parametrize("limit", [1, 2, 3, 40])
    @pytest.mark.parametrize("public_only", [True, False])
    def test_page_boundaries_match_timeline(self, max_id, limit, public_only):
        timeline, columnar = self._pair()
        expected = [
            t.toot_id for t in timeline.page(max_id, limit, public_only=public_only)
        ]
        got = columnar.page_ids(max_id, limit, public_only=public_only).tolist()
        assert got == expected

    def test_counts_and_bounds(self):
        timeline, columnar = self._pair()
        assert len(columnar) == len(timeline)
        assert columnar.count(public_only=True) == timeline.count(public_only=True)
        assert columnar.newest_id() == timeline.newest_id()
        assert columnar.oldest_id() == timeline.oldest_id()
        assert columnar.page_positions(limit=0).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ColumnarTimeline(np.array([3, 2]), np.array([True, True]))
        with pytest.raises(ValueError):
            ColumnarTimeline(np.array([1, 2]), np.array([True]))

    def test_default_page_size(self):
        _, columnar = self._pair()
        assert columnar.page_ids().size <= DEFAULT_PAGE_SIZE
