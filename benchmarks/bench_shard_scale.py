"""Sharded streaming engine vs the monolithic pipeline at 1M toots (the PR 4 gate).

The monolithic pipeline materialises the full toot×instance incidence
matrix plus a dense ``(n_toots, k)`` kill matrix, so a 1M-toot ×
20-schedule sweep costs hundreds of megabytes of working memory; the
sharded engine (:mod:`repro.engine.sharding`) streams toot-range shards
through additive loss tables and never holds more than one shard (plus
its reduction buffers) at a time.  This benchmark drives both paths over
the same synthetic 1M-toot placement backend and gates three claims:

1. **identity** — sharded curves are bit-identical to the monolithic
   pipeline's, ragged tail shard included;
2. **memory** — peak traced allocation (incidence + kill working set)
   drops by at least 5×;
3. **parallelism** — with 4+ cores, the threaded shard path is at least
   2× faster than single-worker streaming (the gather/``reduceat``
   kernels release the GIL).  Skipped, loudly, on smaller machines.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_shard_scale.py

or through the harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard_scale.py --benchmark-only -s
"""

from __future__ import annotations

import gc
import os
import time
import tracemalloc

import numpy as np

from repro.engine import (
    ASRemoval,
    InstanceRemoval,
    PlacementArrays,
    ShardedIncidence,
    TootIncidence,
    availability_from_losses,
    kill_steps_batch,
    losses_per_step,
    sharded_availability_curves,
)

N_TOOTS = 1_000_000
N_DOMAINS = 400
MAX_REPLICAS = 6
SHARD_SIZE = 100_000
INSTANCE_STEPS = N_DOMAINS
AS_STEPS = 40
N_INSTANCE_RANKINGS = 16
N_AS_RANKINGS = 4
MIN_MEMORY_RATIO = 5.0
MIN_PARALLEL_SPEEDUP = 2.0
PARALLEL_WORKERS = 4
MIN_CORES_FOR_PARALLEL_GATE = 4


def synthetic_arrays(
    n_toots: int = N_TOOTS, n_domains: int = N_DOMAINS, seed: int = 0
) -> tuple[PlacementArrays, list[str], dict[str, int]]:
    """A 1M-toot integer-coded placement backend, built without any loop.

    Homes follow a Zipf-like skew; replica counts are geometric with a
    ragged per-toot tail.  Replicas are drawn as *consecutive offsets
    from a random start* (mod ``n_domains - 1``), which guarantees the
    backend invariants — distinct within a row, never the home — with
    pure array arithmetic at any corpus size.
    """
    rng = np.random.default_rng(seed)
    domains = [f"i{j}.example" for j in range(n_domains)]
    popularity = 1.0 / np.arange(1, n_domains + 1)
    popularity /= popularity.sum()
    home = rng.choice(n_domains, size=n_toots, p=popularity).astype(np.int64)
    counts = np.minimum(rng.geometric(0.5, size=n_toots) - 1, MAX_REPLICAS)
    indptr = np.zeros(n_toots + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    row_ids = np.repeat(np.arange(n_toots), counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(indptr[:-1], counts)
    start = rng.integers(0, n_domains - 1, size=n_toots)
    offsets = (np.repeat(start, counts) + within) % (n_domains - 1)
    replicas = (home[row_ids] + 1 + offsets) % n_domains
    arrays = PlacementArrays(
        strategy="synthetic-sharded",
        toot_urls=tuple(f"t{t}" for t in range(n_toots)),
        domains=tuple(domains),
        home=home,
        replica_indices=replicas,
        replica_indptr=indptr,
    )
    asn_of = {
        domain: int(asn) for domain, asn in zip(domains, rng.integers(1, 40, size=n_domains))
    }
    return arrays, domains, asn_of


def build_failures(domains: list[str], asn_of: dict[str, int], seed: int = 1):
    """Twenty removal schedules: sixteen instance rankings, four AS rankings."""
    rng = np.random.default_rng(seed)
    failures = [InstanceRemoval(domains, steps=INSTANCE_STEPS, name="by-popularity")]
    for i in range(N_INSTANCE_RANKINGS - 1):
        permuted = [domains[j] for j in rng.permutation(len(domains))]
        failures.append(InstanceRemoval(permuted, steps=INSTANCE_STEPS, name=f"ranking-{i}"))
    as_ranking = sorted(set(asn_of.values()))[:AS_STEPS]
    orderings = [as_ranking, as_ranking[::-1]] + [
        [as_ranking[j] for j in rng.permutation(len(as_ranking))]
        for _ in range(N_AS_RANKINGS - 2)
    ]
    for i, ordering in enumerate(orderings):
        failures.append(ASRemoval(asn_of, ordering, steps=AS_STEPS, name=f"as-{i}"))
    return failures


def removal_inputs(sharded: ShardedIncidence, failures) -> tuple[np.ndarray, np.ndarray]:
    steps = np.asarray([f.effective_steps() for f in failures], dtype=np.int64)
    removal_matrix = np.column_stack(
        [
            sharded.removal_vector(failure.removal_index(), int(steps[j]))
            for j, failure in enumerate(failures)
        ]
    )
    return removal_matrix, steps


def run_monolithic(arrays, removal_matrix, steps) -> list[np.ndarray]:
    """The seed-era pipeline: full incidence matrix + full kill matrix."""
    incidence = TootIncidence.from_arrays(arrays)
    kill = kill_steps_batch(incidence.matrix, removal_matrix)
    total = incidence.n_toots
    return [
        availability_from_losses(losses_per_step(kill[:, j], int(steps[j])), total)
        for j in range(steps.size)
    ]


def run_sharded(
    arrays, removal_matrix, steps, shard_size: int = SHARD_SIZE, workers: int | None = None
) -> list[np.ndarray]:
    sharded = ShardedIncidence.from_arrays(arrays, shard_size)
    return sharded_availability_curves(sharded, removal_matrix, steps, workers=workers)


def _traced_peak(fn, *args, **kwargs):
    """(result, peak traced bytes) for one call, gc-fenced on both sides."""
    gc.collect()
    tracemalloc.start()
    try:
        result = fn(*args, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    gc.collect()
    return result, peak


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def compare(arrays, removal_matrix, steps, rounds: int = 3):
    """Identity + memory + (core-count permitting) parallel measurements.

    Serial/parallel rounds alternate and each side keeps its minimum, so
    a CPU-steal window on a shared runner must cover every round of one
    side to skew the gate.
    """
    monolithic_curves, monolithic_peak = _traced_peak(
        run_monolithic, arrays, removal_matrix, steps
    )
    sharded_curves, sharded_peak = _traced_peak(
        run_sharded, arrays, removal_matrix, steps
    )
    for j, (expected, got) in enumerate(zip(monolithic_curves, sharded_curves)):
        assert np.array_equal(expected, got), f"curve divergence on schedule {j}"

    serial_time = parallel_time = float("inf")
    for _ in range(rounds):
        _, elapsed = _timed(run_sharded, arrays, removal_matrix, steps, workers=1)
        serial_time = min(serial_time, elapsed)
        parallel_curves, elapsed = _timed(
            run_sharded, arrays, removal_matrix, steps, workers=PARALLEL_WORKERS
        )
        parallel_time = min(parallel_time, elapsed)
    for j, (expected, got) in enumerate(zip(monolithic_curves, parallel_curves)):
        assert np.array_equal(expected, got), f"parallel divergence on schedule {j}"

    return {
        "monolithic_peak_bytes": int(monolithic_peak),
        "sharded_peak_bytes": int(sharded_peak),
        "memory_ratio": monolithic_peak / sharded_peak,
        "serial_seconds": serial_time,
        "parallel_seconds": parallel_time,
        "parallel_speedup": serial_time / parallel_time,
    }


def _assert_gates(measured: dict, cores: int) -> None:
    assert measured["memory_ratio"] >= MIN_MEMORY_RATIO, (
        f"sharded peak memory gate: {measured['memory_ratio']:.1f}x < "
        f"{MIN_MEMORY_RATIO:.0f}x required"
    )
    if cores >= MIN_CORES_FOR_PARALLEL_GATE:
        assert measured["parallel_speedup"] >= MIN_PARALLEL_SPEEDUP, (
            f"parallel shard gate: {measured['parallel_speedup']:.2f}x < "
            f"{MIN_PARALLEL_SPEEDUP:.0f}x required on {cores} cores"
        )


def run_comparison(n_toots: int = N_TOOTS):
    arrays, domains, asn_of = synthetic_arrays(n_toots=n_toots)
    failures = build_failures(domains, asn_of)
    sharded = ShardedIncidence.from_arrays(arrays, SHARD_SIZE)
    removal_matrix, steps = removal_inputs(sharded, failures)
    return compare(arrays, removal_matrix, steps), len(failures)


def test_shard_scale_gates(benchmark):
    arrays, domains, asn_of = synthetic_arrays()
    failures = build_failures(domains, asn_of)
    sharded = ShardedIncidence.from_arrays(arrays, SHARD_SIZE)
    removal_matrix, steps = removal_inputs(sharded, failures)

    benchmark.pedantic(
        run_sharded, args=(arrays, removal_matrix, steps), rounds=1, iterations=1
    )
    measured = compare(arrays, removal_matrix, steps)

    from benchmarks.conftest import emit
    from repro.reporting import format_table

    cores = os.cpu_count() or 1
    emit(
        f"Sharded streaming — {N_TOOTS:,} toots, {len(failures)} schedules, "
        f"shard={SHARD_SIZE:,}",
        format_table(
            ["pipeline", "peak MiB", "seconds"],
            [
                ["monolithic (full incidence + kill)",
                 round(measured["monolithic_peak_bytes"] / 2**20, 1), "-"],
                ["sharded streaming (1 worker)",
                 round(measured["sharded_peak_bytes"] / 2**20, 1),
                 round(measured["serial_seconds"], 3)],
                [f"sharded streaming ({PARALLEL_WORKERS} workers)", "-",
                 round(measured["parallel_seconds"], 3)],
            ],
        ),
    )
    _assert_gates(measured, cores)


def main() -> None:
    measured, n_failures = run_comparison()
    cores = os.cpu_count() or 1
    print(f"sharded streaming sweep: {N_TOOTS:,} toots x {n_failures} schedules "
          f"(shard={SHARD_SIZE:,})")
    print("  curves: sharded == monolithic bit-identically (serial and "
          f"{PARALLEL_WORKERS}-worker paths)")
    print(f"  monolithic peak     : {measured['monolithic_peak_bytes'] / 2**20:8.1f} MiB")
    print(f"  sharded peak        : {measured['sharded_peak_bytes'] / 2**20:8.1f} MiB")
    print(f"  memory reduction    : {measured['memory_ratio']:8.1f}x "
          f"(required >= {MIN_MEMORY_RATIO:.0f}x)")
    print(f"  serial / parallel   : {measured['serial_seconds']:.3f}s / "
          f"{measured['parallel_seconds']:.3f}s "
          f"({measured['parallel_speedup']:.2f}x on {cores} cores)")
    if cores < MIN_CORES_FOR_PARALLEL_GATE:
        print(f"  parallel gate       : SKIPPED (needs >= "
              f"{MIN_CORES_FOR_PARALLEL_GATE} cores, have {cores})")
    _assert_gates(measured, cores)

    try:
        from benchmarks.perf_log import record
    except ImportError:  # run as a script: benchmarks/ itself is on sys.path
        from perf_log import record

    path = record(
        "shard_scale",
        {
            "n_toots": N_TOOTS,
            "n_schedules": n_failures,
            "shard_size": SHARD_SIZE,
            "min_memory_ratio": MIN_MEMORY_RATIO,
            "min_parallel_speedup": MIN_PARALLEL_SPEEDUP,
            **{key: round(value, 4) if isinstance(value, float) else value
               for key, value in measured.items()},
        },
    )
    print(f"  recorded            : {path}")


if __name__ == "__main__":
    main()
