"""The serve layer's observability surface: /metrics, stats, meta extras.

Serve-side recording is deliberately unconditional — the HTTP handler
and the one-time builds write straight into the process-wide registry
(:func:`repro.obs.metrics`) whether or not ``--metrics`` was passed —
so ``GET /metrics`` always describes the server actually running.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro import obs
from repro.serve import AvailabilityService, build_http_server, handle_query, serve_stdio


@pytest.fixture()
def http_base(service):
    """A live threaded server on an ephemeral port, torn down after."""
    server = build_http_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def get_raw(base: str, path: str, **params) -> tuple[int, str, str]:
    url = base + path
    if params:
        url += "?" + urllib.parse.urlencode(params)
    with urllib.request.urlopen(url, timeout=30) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


class TestMetricsEndpoint:
    def test_metrics_is_prometheus_text(self, service, http_base):
        obs.metrics().reset()
        user = str(service.corpus.authors.tolist()[0])
        get_raw(http_base, "/availability", user=user, k=3)
        get_raw(http_base, "/health")
        status, content_type, body = get_raw(http_base, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "# TYPE repro_serve_requests_total counter" in body
        assert 'repro_serve_requests_total{endpoint="/availability",status="200"} 1' in body
        assert 'repro_serve_requests_total{endpoint="/health",status="200"} 1' in body
        assert "# TYPE repro_serve_request_seconds histogram" in body
        assert 'repro_serve_request_seconds_bucket{endpoint="/availability",le="+Inf"} 1' in body
        assert 'repro_serve_request_seconds_count{endpoint="/availability"} 1' in body

    def test_errors_recorded_under_their_status(self, http_base):
        obs.metrics().reset()
        try:
            get_raw(http_base, "/availability", k="ten")
        except urllib.error.HTTPError:
            pass
        try:
            get_raw(http_base, "/nowhere")
        except urllib.error.HTTPError:
            pass
        registry = obs.metrics()
        assert registry.counter_value(
            "repro_serve_requests_total", endpoint="/availability", status="400"
        ) == 1
        assert registry.counter_value(
            "repro_serve_requests_total", endpoint="/nowhere", status="404"
        ) == 1

    def test_metrics_itself_is_not_a_json_verb(self, http_base):
        # /metrics bypasses handle_query entirely; the JSON 404 payload
        # still advertises it
        status, _, body = get_raw(http_base, "/metrics")
        assert status == 200
        assert not body.startswith("{")


class TestStatsVerb:
    def test_stats_over_http(self, service, http_base):
        service.warm(["no-rep"])
        status, content_type, body = get_raw(http_base, "/stats")
        assert status == 200
        assert content_type.startswith("application/json")
        payload = json.loads(body)
        assert payload["build_counters"]["strategies_built"] >= 1
        assert payload["uptime_seconds"] >= 0
        assert isinstance(payload["metrics"], dict)

    def test_stats_over_stdio(self, service):
        out = io.StringIO()
        serve_stdio(service, in_stream=io.StringIO("stats\n"), out_stream=out)
        payload = json.loads(out.getvalue().splitlines()[0])
        assert set(payload) == {"build_counters", "uptime_seconds", "metrics"}
        assert set(payload["build_counters"]) == {
            "strategies_built", "loss_tables_built", "row_indexes_built",
        }

    def test_stats_rejects_parameters(self, service):
        out = io.StringIO()
        serve_stdio(service, in_stream=io.StringIO("stats k=1\n"), out_stream=out)
        payload = json.loads(out.getvalue().splitlines()[0])
        assert "unknown parameters" in payload["error"]

    def test_stats_sees_build_timings(self, serve_corpus_dir):
        obs.metrics().reset()
        cold = AvailabilityService(serve_corpus_dir, mmap=True)
        cold.curve("no-rep", "instances/by_toots")
        payload = handle_query(cold, "stats", {})
        histograms = payload["metrics"]["histograms"]
        assert histograms['repro_serve_build_seconds{kind="strategy"}']["count"] == 1
        assert histograms['repro_serve_build_seconds{kind="loss_table"}']["count"] == 1


class TestMetaExtras:
    def test_meta_reports_builds_and_uptime(self, service):
        service.warm(["no-rep"])
        meta = service.meta()
        assert meta["build_counters"]["strategies_built"] >= 1
        assert meta["build_counters"]["row_indexes_built"] >= 1
        assert meta["uptime_seconds"] >= 0
        # the snapshot is a copy, not a live view
        meta["build_counters"]["strategies_built"] = -1
        assert service.build_counters["strategies_built"] >= 1
