"""The instances dataset: snapshot time series + hosting metadata.

This is the offline counterpart of the paper's primary dataset: fifteen
months of periodic instance-API snapshots (from mnm.social), joined with
Maxmind country/AS information and crt.sh certificate records.  The class
wraps a :class:`~repro.crawler.monitor.MonitoringLog` and exposes the
derived measures used throughout Section 4: per-instance user/toot
counts, registration policy splits, activity levels, downtime fractions,
outage intervals and hosting breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import DatasetError
from repro.crawler.monitor import InstanceSnapshot, MonitoringLog
from repro.fediverse.network import FediverseNetwork
from repro.simtime import MINUTES_PER_DAY


@dataclass(frozen=True, slots=True)
class InstanceMetadata:
    """Static per-instance metadata joined onto the snapshot series."""

    domain: str
    software: str = "mastodon"
    registration_open: bool = True
    categories: tuple[str, ...] = ()
    allowed_activities: tuple[str, ...] = ()
    prohibited_activities: tuple[str, ...] = ()
    allows_all_activities: bool = False
    country: str = ""
    asn: int = 0
    as_name: str = ""
    ip_address: str = ""
    operator: str = "unknown"
    certificate_authority: str = ""
    created_at: int = 0

    @property
    def is_tagged(self) -> bool:
        """Whether the instance declared at least one category."""
        return bool(self.categories)


@dataclass(frozen=True, slots=True)
class OutageInterval:
    """A continuous run of offline probes for one instance."""

    domain: str
    start_minute: int
    end_minute: int

    @property
    def duration_minutes(self) -> int:
        """Outage length in minutes."""
        return self.end_minute - self.start_minute

    @property
    def duration_days(self) -> float:
        """Outage length in fractional days."""
        return self.duration_minutes / MINUTES_PER_DAY


class InstancesDataset:
    """Snapshot series + metadata for a population of instances."""

    def __init__(
        self,
        log: MonitoringLog,
        metadata: Mapping[str, InstanceMetadata] | None = None,
    ) -> None:
        if len(log) == 0:
            raise DatasetError("cannot build an instances dataset from an empty log")
        self.log = log
        self.metadata: dict[str, InstanceMetadata] = dict(metadata or {})
        self._by_domain: dict[str, list[InstanceSnapshot]] = {}
        for snapshot in log:
            self._by_domain.setdefault(snapshot.domain, []).append(snapshot)
        for snapshots in self._by_domain.values():
            snapshots.sort(key=lambda s: s.minute)
        for domain in self._by_domain:
            self.metadata.setdefault(domain, InstanceMetadata(domain=domain))

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, network: FediverseNetwork, log: MonitoringLog) -> "InstancesDataset":
        """Join a monitoring log with hosting/certificate metadata.

        This mirrors the paper's pipeline: the API snapshots provide the
        dynamic counters while Maxmind (here: the scenario's geo database)
        and crt.sh (here: the certificate registry) provide country, AS
        and CA information.
        """
        metadata: dict[str, InstanceMetadata] = {}
        for instance in network.instances():
            descriptor = instance.descriptor
            as_name = ""
            if descriptor.asn and network.geo.has_autonomous_system(descriptor.asn):
                as_name = network.geo.autonomous_system(descriptor.asn).name
            authority = ""
            if descriptor.domain in network.certificates:
                authority = network.certificates.authority_of(descriptor.domain)
            policy = descriptor.activity_policy
            metadata[descriptor.domain] = InstanceMetadata(
                domain=descriptor.domain,
                software=descriptor.software.value,
                registration_open=descriptor.is_open,
                categories=tuple(category.value for category in descriptor.categories),
                allowed_activities=tuple(
                    sorted(a.value for a in policy.allowed) if policy else ()
                ),
                prohibited_activities=tuple(
                    sorted(a.value for a in policy.prohibited) if policy else ()
                ),
                allows_all_activities=bool(policy.allows_all) if policy else False,
                country=descriptor.country,
                asn=descriptor.asn,
                as_name=as_name,
                ip_address=descriptor.ip_address,
                operator=descriptor.operator.value,
                certificate_authority=authority,
                created_at=descriptor.created_at,
            )
        return cls(log=log, metadata=metadata)

    # -- basic accessors ---------------------------------------------------------

    def domains(self) -> list[str]:
        """Every monitored domain, sorted."""
        return sorted(self._by_domain)

    def __len__(self) -> int:
        return len(self._by_domain)

    def snapshots_for(self, domain: str) -> list[InstanceSnapshot]:
        """Chronological snapshots of one domain."""
        try:
            return list(self._by_domain[domain])
        except KeyError as exc:
            raise DatasetError(f"domain not in dataset: {domain!r}") from exc

    def metadata_for(self, domain: str) -> InstanceMetadata:
        """Metadata record of one domain."""
        try:
            return self.metadata[domain]
        except KeyError as exc:
            raise DatasetError(f"domain not in dataset: {domain!r}") from exc

    def existing_snapshots(self, domain: str) -> list[InstanceSnapshot]:
        """Snapshots taken after the instance first appeared.

        Probes answered with 404 before an instance was created are not
        outages; they are excluded from availability statistics.
        """
        snapshots = self.snapshots_for(domain)
        first_seen = next((i for i, s in enumerate(snapshots) if s.exists), None)
        if first_seen is None:
            return []
        return snapshots[first_seen:]

    # -- population counters --------------------------------------------------------

    def latest_online_snapshot(self, domain: str) -> InstanceSnapshot | None:
        """The most recent snapshot in which the instance answered."""
        for snapshot in reversed(self.snapshots_for(domain)):
            if snapshot.online:
                return snapshot
        return None

    def users_per_instance(self) -> dict[str, int]:
        """Latest observed user count per instance."""
        counts: dict[str, int] = {}
        for domain in self.domains():
            snapshot = self.latest_online_snapshot(domain)
            counts[domain] = snapshot.user_count if snapshot else 0
        return counts

    def toots_per_instance(self) -> dict[str, int]:
        """Latest observed toot count per instance."""
        counts: dict[str, int] = {}
        for domain in self.domains():
            snapshot = self.latest_online_snapshot(domain)
            counts[domain] = snapshot.toot_count if snapshot else 0
        return counts

    def total_users(self) -> int:
        """Latest total user count across every instance."""
        return sum(self.users_per_instance().values())

    def total_toots(self) -> int:
        """Latest total toot count across every instance."""
        return sum(self.toots_per_instance().values())

    def open_domains(self) -> list[str]:
        """Domains with open registrations."""
        return [d for d in self.domains() if self.metadata_for(d).registration_open]

    def closed_domains(self) -> list[str]:
        """Domains requiring an invitation to register."""
        return [d for d in self.domains() if not self.metadata_for(d).registration_open]

    def activity_level(self, domain: str, min_users: int = 10) -> float:
        """Max weekly fraction of the instance's users seen logging in (Fig. 2c).

        Snapshots taken while the instance still has fewer than
        ``min_users`` accounts are ignored (a brand-new instance where the
        only user logs in would otherwise always score 100%); if the
        instance never reaches ``min_users`` the threshold is waived.
        """
        best = 0.0
        best_small = 0.0
        reached_threshold = False
        for snapshot in self.snapshots_for(domain):
            if not snapshot.online or snapshot.user_count <= 0:
                continue
            level = min(1.0, snapshot.logins_week / snapshot.user_count)
            if snapshot.user_count >= min_users:
                reached_threshold = True
                best = max(best, level)
            else:
                best_small = max(best_small, level)
        return best if reached_threshold else best_small

    # -- growth (Fig. 1) --------------------------------------------------------------

    def growth_series(self) -> list[dict[str, int]]:
        """Instances/users/toots present at each probe time.

        Returns one row per probe minute with the number of instances that
        exist, the summed user count and the summed toot count — the three
        curves of Fig. 1.
        """
        series: list[dict[str, int]] = []
        last_counts: dict[str, tuple[int, int]] = {}
        by_minute: dict[int, list[InstanceSnapshot]] = {}
        for snapshot in self.log:
            by_minute.setdefault(snapshot.minute, []).append(snapshot)
        existing: set[str] = set()
        for minute in sorted(by_minute):
            for snapshot in by_minute[minute]:
                if snapshot.exists:
                    existing.add(snapshot.domain)
                if snapshot.online:
                    last_counts[snapshot.domain] = (snapshot.user_count, snapshot.toot_count)
            series.append(
                {
                    "minute": minute,
                    "instances": len(existing),
                    "users": sum(users for users, _ in last_counts.values()),
                    "toots": sum(toots for _, toots in last_counts.values()),
                }
            )
        return series

    # -- availability (Figs. 7, 8, 10) ---------------------------------------------------

    def downtime_fraction(self, domain: str) -> float:
        """Fraction of probes (after first appearance) that found the instance down."""
        snapshots = self.existing_snapshots(domain)
        if not snapshots:
            return 1.0
        down = sum(1 for s in snapshots if not s.online)
        return down / len(snapshots)

    def downtime_fractions(self) -> dict[str, float]:
        """Downtime fraction per instance."""
        return {domain: self.downtime_fraction(domain) for domain in self.domains()}

    def daily_downtime(self, domain: str) -> dict[int, float]:
        """Per-day downtime fraction for one instance (Fig. 8)."""
        per_day: dict[int, list[bool]] = {}
        for snapshot in self.existing_snapshots(domain):
            per_day.setdefault(snapshot.day, []).append(snapshot.online)
        return {
            day: 1.0 - (sum(flags) / len(flags))
            for day, flags in sorted(per_day.items())
            if flags
        }

    def outage_intervals(self, domain: str, drop_trailing: bool = True) -> list[OutageInterval]:
        """Continuous runs of offline probes for one instance (Fig. 10).

        With ``drop_trailing=True`` an outage still in progress at the end
        of the log is excluded, matching the paper's rule of only counting
        outages where the instance eventually came back.
        """
        snapshots = self.existing_snapshots(domain)
        intervals: list[OutageInterval] = []
        start: int | None = None
        last_minute: int | None = None
        for snapshot in snapshots:
            if not snapshot.online and start is None:
                start = snapshot.minute
            elif snapshot.online and start is not None:
                intervals.append(OutageInterval(domain, start, snapshot.minute))
                start = None
            last_minute = snapshot.minute
        if start is not None and not drop_trailing and last_minute is not None:
            intervals.append(OutageInterval(domain, start, last_minute + self.log.interval_minutes))
        return intervals

    # -- hosting (Fig. 5) ------------------------------------------------------------------

    def by_country(self) -> dict[str, list[str]]:
        """Domains grouped by hosting country."""
        groups: dict[str, list[str]] = {}
        for domain in self.domains():
            groups.setdefault(self.metadata_for(domain).country, []).append(domain)
        return groups

    def by_asn(self) -> dict[int, list[str]]:
        """Domains grouped by hosting AS."""
        groups: dict[int, list[str]] = {}
        for domain in self.domains():
            groups.setdefault(self.metadata_for(domain).asn, []).append(domain)
        return groups

    def as_name(self, asn: int) -> str:
        """Best-effort AS name for ``asn`` from the metadata records."""
        for metadata in self.metadata.values():
            if metadata.asn == asn and metadata.as_name:
                return metadata.as_name
        return f"AS{asn}"
