"""The toots dataset: the de-duplicated catalogue of crawled toots.

Wraps the output of :class:`~repro.crawler.toot_crawler.TootCrawler` with
the indexes used in Sections 4 and 5: per-author and per-home-instance
toot counts, boost counts, and the home/remote composition of each
instance's federated timeline (Fig. 14).

Two backends share this API:

* **records** — the legacy in-memory path (:meth:`TootsDataset.from_crawl`),
  which dedups and indexes ``TootRecord`` objects eagerly;
* **corpus** — :meth:`TootsDataset.from_corpus` over a columnar
  :class:`~repro.corpus.store.CorpusStore`.  Aggregate accessors
  (counts, compositions, per-instance/per-author totals) answer straight
  from the corpus manifest and columns; only the record-level accessors
  (``records()``, ``toots_by_author`` …) materialise ``TootRecord``
  objects, lazily and once, which keeps the scale paths object-free
  while the record API keeps working for small presets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro.errors import DatasetError
from repro.crawler.toot_crawler import TootCrawlResult, TootRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.store import CorpusStore


@dataclass
class TimelineComposition:
    """Home vs. remote toots observed on one instance's federated timeline."""

    domain: str
    home_toots: int = 0
    remote_toots: int = 0

    @property
    def total(self) -> int:
        """Total number of toots on the federated timeline."""
        return self.home_toots + self.remote_toots

    @property
    def home_fraction(self) -> float:
        """Fraction of the federated timeline generated locally."""
        if self.total == 0:
            return 0.0
        return self.home_toots / self.total

    @property
    def remote_fraction(self) -> float:
        """Fraction of the federated timeline replicated from elsewhere."""
        if self.total == 0:
            return 0.0
        return self.remote_toots / self.total


class TootsDataset:
    """The de-duplicated toot catalogue plus per-instance observations."""

    def __init__(
        self,
        records: Iterable[TootRecord] | None = None,
        observed_by_instance: Mapping[str, Iterable[TootRecord]] | None = None,
        crawl_minute: int = 0,
        *,
        corpus: "CorpusStore | None" = None,
    ) -> None:
        self.crawl_minute = crawl_minute
        self.corpus = corpus
        self._records: dict[str, TootRecord] | None = None
        self._by_author: dict[str, list[TootRecord]] | None = None
        self._by_home_instance: dict[str, list[TootRecord]] | None = None
        self._observed_by_instance: dict[str, list[TootRecord]] = {}
        if corpus is not None:
            if records is not None or observed_by_instance is not None:
                raise DatasetError("pass records or a corpus backend, not both")
            if corpus.n_toots == 0:
                raise DatasetError("cannot build a toots dataset with no records")
            return
        if records is None:
            raise DatasetError("a toots dataset needs records or a corpus backend")
        self._observed_by_instance = {
            domain: list(observations)
            for domain, observations in (observed_by_instance or {}).items()
        }
        self._index(records)

    def _index(self, records: Iterable[TootRecord]) -> None:
        unique: dict[str, TootRecord] = {}
        for record in records:
            unique.setdefault(record.url, record)
        if not unique:
            raise DatasetError("cannot build a toots dataset with no records")
        self._records = unique
        self._by_author = {}
        self._by_home_instance = {}
        for record in unique.values():
            self._by_author.setdefault(record.account, []).append(record)
            self._by_home_instance.setdefault(record.author_domain, []).append(record)

    def _materialise(self) -> None:
        """Build the record-level indexes from the corpus (lazily, once)."""
        if self._records is None:
            self._index(self.corpus.iter_records())

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_crawl(cls, result: TootCrawlResult) -> "TootsDataset":
        """Build the dataset from a :class:`TootCrawlResult`.

        Consumes :meth:`TootCrawlResult.iter_records` — the records
        stream straight into the dedup index without first being copied
        into one corpus-sized ``all_records()`` list.
        """
        return cls(
            records=result.iter_records(),
            observed_by_instance=result.records_by_instance,
            crawl_minute=result.crawl_minute,
        )

    @classmethod
    def from_corpus(cls, store: "CorpusStore") -> "TootsDataset":
        """Wrap a columnar corpus without materialising any records.

        Aggregates answer from the corpus columns/manifest; record-level
        accessors materialise lazily.  Note the columnar format stores
        every crawled field, so materialised records are identical to
        the ones :meth:`from_crawl` would have produced — only the
        per-instance *observation lists* (duplicate copies) are reduced
        to their home/remote counts.
        """
        return cls(corpus=store, crawl_minute=store.crawl_minute)

    # -- basic accessors -----------------------------------------------------------

    def __len__(self) -> int:
        if self._records is not None:
            return len(self._records)
        return self.corpus.n_toots

    def records(self) -> list[TootRecord]:
        """Every unique toot record."""
        self._materialise()
        return list(self._records.values())

    def authors(self) -> list[str]:
        """Every distinct author handle."""
        if self._by_author is None:
            return sorted(self.corpus.authors.tolist())
        return sorted(self._by_author)

    def author_count(self) -> int:
        """Number of distinct authors in the catalogue."""
        if self._by_author is None:
            return int(self.corpus.authors.shape[0])
        return len(self._by_author)

    def home_instances(self) -> list[str]:
        """Every instance that authored at least one crawled toot."""
        if self._by_home_instance is None:
            return sorted(self.corpus.home_toot_counts)
        return sorted(self._by_home_instance)

    def toots_by_author(self, account: str) -> list[TootRecord]:
        """Toots authored by ``account``."""
        self._materialise()
        return list(self._by_author.get(account, []))

    def toots_from_instance(self, domain: str) -> list[TootRecord]:
        """Toots authored on ``domain`` (its home toots)."""
        self._materialise()
        return list(self._by_home_instance.get(domain, []))

    def toots_per_instance(self) -> dict[str, int]:
        """Home-toot count per instance."""
        if self._by_home_instance is None:
            return self.corpus.home_toot_counts
        return {domain: len(records) for domain, records in self._by_home_instance.items()}

    def toots_per_author(self) -> dict[str, int]:
        """Toot count per author handle."""
        if self._by_author is None:
            counts = np.zeros(self.corpus.authors.shape[0], dtype=np.int64)
            for index in range(self.corpus.n_shards):
                codes = self.corpus.shard_column(index, "author_code")
                counts += np.bincount(codes, minlength=counts.size)
            return dict(zip(self.corpus.authors.tolist(), counts.tolist()))
        return {account: len(records) for account, records in self._by_author.items()}

    def boost_count(self) -> int:
        """Number of boosts in the catalogue."""
        if self._records is None:
            return self.corpus.n_boosts
        return sum(1 for record in self._records.values() if record.is_boost)

    def original_toots(self) -> list[TootRecord]:
        """Toots that are not boosts."""
        self._materialise()
        return [record for record in self._records.values() if not record.is_boost]

    def coverage(self, total_toots_reported: int) -> float:
        """Fraction of the instance-reported toot population we collected.

        The paper compares its crawl against the counts exposed by the
        instance API and reports 62% coverage.
        """
        if total_toots_reported <= 0:
            raise DatasetError("the reported toot population must be positive")
        return min(1.0, len(self) / total_toots_reported)

    # -- federated timeline composition (Fig. 14) ------------------------------------

    def observed_instances(self) -> list[str]:
        """Instances whose federated timeline was crawled."""
        if self.corpus is not None:
            return sorted(self.corpus.observations)
        return sorted(self._observed_by_instance)

    def timeline_composition(self, domain: str) -> TimelineComposition:
        """Home/remote composition of one instance's federated timeline."""
        if self.corpus is not None:
            counts = self.corpus.observations.get(domain)
            if counts is None:
                raise DatasetError(f"no federated-timeline observations for {domain!r}")
            return TimelineComposition(
                domain=domain, home_toots=counts[0], remote_toots=counts[1]
            )
        observations = self._observed_by_instance.get(domain)
        if observations is None:
            raise DatasetError(f"no federated-timeline observations for {domain!r}")
        composition = TimelineComposition(domain=domain)
        for record in observations:
            if record.author_domain == domain:
                composition.home_toots += 1
            else:
                composition.remote_toots += 1
        return composition

    def timeline_compositions(self) -> list[TimelineComposition]:
        """Home/remote composition for every observed instance."""
        return [self.timeline_composition(domain) for domain in self.observed_instances()]

    def replication_counts(self) -> dict[str, int]:
        """For each toot URL, how many *other* instances held a copy.

        This quantifies how widely each toot was already replicated onto
        federated timelines at crawl time (used to motivate Section 5.2).
        The corpus backend answers from the counters accumulated at
        write time (URL strings stream shard by shard).
        """
        if self.corpus is not None:
            counts = self.corpus.replication_counts().tolist()
            return dict(zip(self.corpus.urls(), counts))
        counts = {url: 0 for url in self._records}
        for domain, observations in self._observed_by_instance.items():
            for record in observations:
                if record.author_domain != domain and record.url in counts:
                    counts[record.url] += 1
        return counts
