"""Tests for timeline ordering and API-style paging."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.fediverse.entities import Toot, UserRef, Visibility
from repro.fediverse.timeline import Timeline


def make_toot(toot_id: int, visibility: Visibility = Visibility.PUBLIC) -> Toot:
    return Toot(
        toot_id=toot_id,
        author=UserRef("alice", "alpha.example"),
        created_at=toot_id,
        visibility=visibility,
    )


class TestTimelineBasics:
    def test_add_and_len(self):
        timeline = Timeline()
        assert timeline.add(make_toot(1))
        assert timeline.add(make_toot(2))
        assert len(timeline) == 2
        assert 1 in timeline and 3 not in timeline

    def test_duplicates_rejected(self):
        timeline = Timeline()
        assert timeline.add(make_toot(1))
        assert not timeline.add(make_toot(1))
        assert len(timeline) == 1

    def test_order_maintained_regardless_of_insertion(self):
        timeline = Timeline()
        for toot_id in (5, 1, 3, 2, 4):
            timeline.add(make_toot(toot_id))
        assert [t.toot_id for t in timeline] == [1, 2, 3, 4, 5]
        assert timeline.newest_id() == 5
        assert timeline.oldest_id() == 1

    def test_empty_timeline(self):
        timeline = Timeline()
        assert timeline.newest_id() is None
        assert timeline.oldest_id() is None
        assert timeline.page() == []
        assert timeline.count() == 0


class TestPaging:
    def test_page_returns_newest_first(self):
        timeline = Timeline()
        for toot_id in range(1, 11):
            timeline.add(make_toot(toot_id))
        page = timeline.page(limit=3)
        assert [t.toot_id for t in page] == [10, 9, 8]

    def test_max_id_pages_backwards(self):
        timeline = Timeline()
        for toot_id in range(1, 11):
            timeline.add(make_toot(toot_id))
        page = timeline.page(max_id=8, limit=3)
        assert [t.toot_id for t in page] == [7, 6, 5]

    def test_full_history_via_paging(self):
        timeline = Timeline()
        for toot_id in range(1, 101):
            timeline.add(make_toot(toot_id))
        collected = []
        max_id = None
        while True:
            page = timeline.page(max_id=max_id, limit=7)
            if not page:
                break
            collected.extend(t.toot_id for t in page)
            max_id = min(t.toot_id for t in page)
        assert sorted(collected) == list(range(1, 101))

    def test_public_only_filter(self):
        timeline = Timeline()
        timeline.add(make_toot(1, Visibility.PRIVATE))
        timeline.add(make_toot(2))
        assert [t.toot_id for t in timeline.page()] == [2]
        assert [t.toot_id for t in timeline.page(public_only=False)] == [2, 1]
        assert timeline.count(public_only=True) == 1
        assert timeline.count() == 2

    def test_zero_or_negative_limit(self):
        timeline = Timeline()
        timeline.add(make_toot(1))
        assert timeline.page(limit=0) == []
        assert timeline.page(limit=-1) == []

    @given(st.lists(st.integers(1, 10_000), min_size=1, max_size=200, unique=True))
    def test_paging_covers_exactly_the_public_toots(self, toot_ids):
        timeline = Timeline()
        for toot_id in toot_ids:
            timeline.add(make_toot(toot_id))
        collected: list[int] = []
        max_id = None
        while True:
            page = timeline.page(max_id=max_id, limit=13)
            if not page:
                break
            collected.extend(t.toot_id for t in page)
            max_id = min(t.toot_id for t in page)
        assert sorted(collected) == sorted(toot_ids)
