"""Command-line interface for the reproduction toolkit.

Four subcommands cover the common workflows::

    repro-mastodon scenario     --preset small --seed 7   # population summary
    repro-mastodon report       --preset tiny  --seed 7   # headline analyses
    repro-mastodon export OUT/  --preset tiny  --seed 7   # anonymised JSONL dump
    repro-mastodon experiments                             # list every table/figure

The CLI is a thin wrapper over the public API (``build_scenario``,
``collect_datasets`` and the ``repro.core`` analyses); anything it prints
can also be produced programmatically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro import build_scenario, collect_datasets
from repro.core import availability, centralisation, federation_analysis, hosting
from repro.crawler import FollowerGraphCrawler, SimulatedTransport, TootCrawler
from repro.datasets import Anonymiser, save_edges, save_snapshots, save_toot_records
from repro.reporting import EXPERIMENTS, format_percentage, format_table


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        choices=("tiny", "small", "medium"),
        default="tiny",
        help="scenario size preset (default: tiny)",
    )
    parser.add_argument("--seed", type=int, default=7, help="scenario random seed (default: 7)")
    parser.add_argument(
        "--monitor-interval",
        type=int,
        default=24 * 60,
        help="monitor probe interval in minutes (default: daily)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mastodon",
        description="Reproduction toolkit for 'Challenges in the Decentralised Web' (IMC 2019)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenario = subparsers.add_parser("scenario", help="generate a scenario and print its population")
    _add_scenario_arguments(scenario)

    report = subparsers.add_parser("report", help="run the measurement pipeline and print headline analyses")
    _add_scenario_arguments(report)

    export = subparsers.add_parser("export", help="export anonymised datasets as JSON lines")
    export.add_argument("output_dir", help="directory to write the JSONL files into")
    _add_scenario_arguments(export)
    export.add_argument("--salt", default=None, help="anonymisation salt (random if omitted)")

    subparsers.add_parser("experiments", help="list every reproducible table and figure")
    return parser


def _command_scenario(args: argparse.Namespace) -> int:
    network = build_scenario(args.preset, seed=args.seed)
    stats = network.stats()
    print(
        format_table(
            ["metric", "value"],
            [[key, value] for key, value in stats.items()],
            title=f"Scenario '{args.preset}' (seed={args.seed})",
        )
    )
    return 0


def _command_report(args: argparse.Namespace) -> int:
    network = build_scenario(args.preset, seed=args.seed)
    data = collect_datasets(network, monitor_interval_minutes=args.monitor_interval)
    metrics = centralisation.concentration_metrics(data.instances)
    downtime = availability.downtime_headlines(data.instances)
    feeders = federation_analysis.feeder_summary(data.toots)
    top_countries = hosting.country_breakdown(data.instances, top=3)
    rows = [
        ["top 10% instances: user share", format_percentage(metrics["top10pct_user_share"])],
        ["user Gini coefficient", round(metrics["user_gini"], 2)],
        ["top hosting country", f"{top_countries[0].key} ({format_percentage(top_countries[0].user_share)} of users)"],
        ["top-3 AS user share", format_percentage(hosting.top_as_user_share(data.instances, top=3))],
        ["mean instance downtime", format_percentage(downtime["mean_downtime"])],
        ["instances >50% downtime", format_percentage(downtime["share_above_50pct_downtime"])],
        ["instances with <10% home toots", format_percentage(feeders["share_under_10pct_home"])],
    ]
    print(
        format_table(
            ["headline", "measured"],
            rows,
            title=f"Headline reproduction report — '{args.preset}' scenario, seed {args.seed}",
        )
    )
    return 0


def _command_export(args: argparse.Namespace) -> int:
    output = Path(args.output_dir)
    network = build_scenario(args.preset, seed=args.seed)
    data = collect_datasets(network, monitor_interval_minutes=args.monitor_interval)
    transport = SimulatedTransport(network)
    toot_crawl = TootCrawler(transport, threads=4).crawl()
    graph_crawl = FollowerGraphCrawler(transport, threads=4).crawl()

    anonymiser = Anonymiser(salt=args.salt)
    snapshots = save_snapshots(output / "instance_snapshots.jsonl", data.instances.log)
    toots = save_toot_records(
        output / "toots.jsonl", anonymiser.anonymise_toots(toot_crawl.all_records())
    )
    edges = save_edges(output / "follower_edges.jsonl", anonymiser.anonymise_edges(graph_crawl.edges))
    print(f"wrote {snapshots} snapshots, {toots} toot records, {edges} follower edges to {output}/")
    print(f"anonymisation salt: {anonymiser.salt}")
    return 0


def _command_experiments() -> int:
    rows = [
        [experiment.experiment_id, experiment.title, experiment.benchmark]
        for experiment in EXPERIMENTS.values()
    ]
    print(format_table(["id", "title", "benchmark"], rows, title="Reproducible experiments"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro-mastodon`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "scenario":
        return _command_scenario(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "export":
        return _command_export(args)
    if args.command == "experiments":
        return _command_experiments()
    parser.error(f"unknown command: {args.command}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
