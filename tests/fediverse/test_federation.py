"""Tests for the federation router: remote follows and toot delivery."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError, UnknownInstanceError
from repro.fediverse.entities import UserRef
from tests.conftest import build_mini_network, ref


class TestFollows:
    def test_local_follow_does_not_create_subscription(self):
        network = build_mini_network()
        edge = network.follow(ref("alice@alpha.example"), ref("akira@alpha.example"))
        assert not edge.is_remote
        alpha = network.get_instance("alpha.example")
        assert alpha.subscriptions == set()
        assert network.federation.stats.local_follows == 1

    def test_remote_follow_creates_subscription_both_sides(self):
        network = build_mini_network()
        edge = network.follow(ref("alice@alpha.example"), ref("bob@beta.example"))
        assert edge.is_remote
        alpha = network.get_instance("alpha.example")
        beta = network.get_instance("beta.example")
        assert "beta.example" in alpha.subscriptions
        assert "alpha.example" in beta.subscribers
        assert network.federation.stats.remote_follows == 1
        assert ("alpha.example", "beta.example") in network.subscription_edges()

    def test_self_follow_rejected(self):
        network = build_mini_network()
        with pytest.raises(SimulationError):
            network.follow(ref("alice@alpha.example"), ref("alice@alpha.example"))

    def test_unknown_follower_account_rejected(self):
        network = build_mini_network()
        with pytest.raises(SimulationError):
            network.follow(ref("ghost@alpha.example"), ref("bob@beta.example"))

    def test_unknown_instance_rejected(self):
        network = build_mini_network()
        with pytest.raises(UnknownInstanceError):
            network.follow(ref("alice@alpha.example"), ref("bob@missing.example"))


class TestDelivery:
    def test_toot_delivered_to_follower_instances(self):
        network = build_mini_network()
        network.follow(ref("bob@beta.example"), ref("alice@alpha.example"))
        network.follow(ref("chloe@gamma.example"), ref("alice@alpha.example"))
        toot = network.post_toot(ref("alice@alpha.example"), created_at=10)
        beta = network.get_instance("beta.example")
        gamma = network.get_instance("gamma.example")
        assert toot.toot_id in beta.federated_timeline
        assert toot.toot_id in gamma.federated_timeline
        assert beta.remote_toot_count() == 1

    def test_toot_not_delivered_without_followers(self):
        network = build_mini_network()
        network.post_toot(ref("alice@alpha.example"), created_at=10)
        beta = network.get_instance("beta.example")
        assert beta.remote_toot_count() == 0

    def test_delivery_targets_only_follower_domains(self):
        network = build_mini_network()
        network.follow(ref("bob@beta.example"), ref("alice@alpha.example"))
        # a local follower must not cause a remote delivery
        network.follow(ref("akira@alpha.example"), ref("alice@alpha.example"))
        toot = network.post_toot(ref("alice@alpha.example"), created_at=10)
        targets = network.federation.delivery_targets(toot)
        assert targets == {"beta.example"}

    def test_private_toots_are_not_delivered(self):
        from repro.fediverse.entities import Visibility

        network = build_mini_network()
        network.follow(ref("bob@beta.example"), ref("alice@alpha.example"))
        network.post_toot(
            ref("alice@alpha.example"), created_at=10, visibility=Visibility.PRIVATE
        )
        beta = network.get_instance("beta.example")
        assert beta.remote_toot_count() == 0

    def test_delivery_skips_unreachable_instances(self):
        network = build_mini_network()
        network.follow(ref("bob@beta.example"), ref("alice@alpha.example"))
        network.follow(ref("chloe@gamma.example"), ref("alice@alpha.example"))
        alpha = network.get_instance("alpha.example")
        toot = alpha.post_toot("alice", toot_id=999, created_at=5)
        delivered = network.federation.deliver_toot(
            toot, is_deliverable=lambda domain: domain != "beta.example"
        )
        assert delivered == 1
        assert network.get_instance("beta.example").remote_toot_count() == 0
        assert network.get_instance("gamma.example").remote_toot_count() == 1

    def test_boost_is_delivered_to_booster_followers(self):
        network = build_mini_network()
        network.follow(ref("chloe@gamma.example"), ref("bob@beta.example"))
        original = network.post_toot(ref("alice@alpha.example"), created_at=5)
        boost = network.boost(ref("bob@beta.example"), original, created_at=10)
        gamma = network.get_instance("gamma.example")
        assert boost.toot_id in gamma.federated_timeline
        assert boost.boost_of == original.toot_id

    def test_delivery_stats_counted(self):
        network = build_mini_network()
        network.follow(ref("bob@beta.example"), ref("alice@alpha.example"))
        network.post_toot(ref("alice@alpha.example"), created_at=10)
        stats = network.federation.stats
        assert stats.deliveries_attempted == 1
        assert stats.deliveries_succeeded == 1


class TestSubscriptionEdges:
    def test_edges_reflect_remote_follows_only(self):
        network = build_mini_network()
        network.follow(ref("alice@alpha.example"), ref("akira@alpha.example"))
        network.follow(ref("alice@alpha.example"), ref("bob@beta.example"))
        network.follow(ref("chloe@gamma.example"), ref("bob@beta.example"))
        edges = network.subscription_edges()
        assert edges == {
            ("alpha.example", "beta.example"),
            ("gamma.example", "beta.example"),
        }
