"""Twitter baselines: the comparison datasets used by the paper.

Two Twitter artefacts appear in the evaluation:

* 2007 pingdom uptime probes, used in Fig. 8 to compare Mastodon's
  downtime against Twitter at a similar age (average downtime 1.25%,
  famously poor — the "Fail Whale" era);
* the 2011 follower graph, used in Fig. 11 (degree CDF) and Fig. 12
  (sensitivity to removing the most-followed accounts: the LCC holds
  ~95% of users, and removing the top 10% still leaves ~80% connected).

Neither artefact is redistributable here, so this module synthesises
equivalents calibrated to those published summary statistics.  The
downstream analysis only consumes the distributions, so the calibrated
synthetic stand-ins preserve every comparison the paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError
from repro.stats.distributions import sample_power_law

#: Average daily downtime fraction of Twitter in 2007 (Fig. 8 reference).
TWITTER_2007_MEAN_DOWNTIME = 0.0125


def twitter_daily_downtime(
    days: int,
    seed: int = 2007,
    mean_downtime: float = TWITTER_2007_MEAN_DOWNTIME,
) -> list[float]:
    """Synthesise per-day downtime fractions matching Twitter-2007 statistics.

    Most days have little or no downtime with occasional multi-hour
    outages, reproducing the bursty profile of the pingdom data while
    keeping the published mean.
    """
    if days <= 0:
        raise ConfigurationError("the number of days must be positive")
    if not 0.0 <= mean_downtime < 1.0:
        raise ConfigurationError("mean downtime must be a fraction below 1")
    rng = np.random.default_rng(seed)
    # ~70% of days are clean; the remainder carry exponential outage time.
    clean = rng.random(days) < 0.7
    raw = np.where(clean, 0.0, rng.exponential(scale=1.0, size=days))
    if raw.sum() == 0:
        raw[rng.integers(0, days)] = 1.0
    fractions = raw / raw.sum() * mean_downtime * days
    return [float(min(f, 0.95)) for f in fractions]


def build_twitter_follower_graph(
    n_users: int = 5_000,
    mean_out_degree: float = 12.0,
    seed: int = 2011,
) -> nx.DiGraph:
    """Synthesise a Twitter-like follower graph.

    The generator uses preferential attachment over a random arrival
    order, yielding the heavy-tailed in-degree distribution of Fig. 11 and
    the robust LCC behaviour of Fig. 12 (about 95% of accounts in the LCC,
    and most of the graph still connected after removing the top 10% of
    accounts by degree).
    """
    if n_users < 10:
        raise ConfigurationError("the Twitter baseline needs at least 10 users")
    if mean_out_degree <= 0:
        raise ConfigurationError("mean out-degree must be positive")
    rng = np.random.default_rng(seed)
    graph = nx.DiGraph()
    nodes = [f"twitter_user_{i}" for i in range(n_users)]
    graph.add_nodes_from(nodes)

    # In-degree attractiveness with a bounded heavy tail.
    attractiveness = sample_power_law(
        rng, n_users, exponent=2.0, minimum=1.0, maximum=float(n_users) / 4.0
    )
    probabilities = attractiveness / attractiveness.sum()
    out_degrees = sample_power_law(
        rng, n_users, exponent=2.2, minimum=1.0, maximum=float(min(1000, n_users - 1))
    )
    out_degrees = np.maximum(
        1, np.round(out_degrees * (mean_out_degree / out_degrees.mean()))
    ).astype(int)

    # ~5% of accounts are isolated lurkers (the paper's Twitter LCC is ~95%).
    lurkers = set(int(i) for i in rng.choice(n_users, size=max(1, n_users // 20), replace=False))

    for index in range(n_users):
        if index in lurkers:
            continue
        k = int(min(out_degrees[index], n_users - 1))
        targets = rng.choice(n_users, size=k, replace=False, p=probabilities)
        for target in targets:
            target = int(target)
            if target != index and target not in lurkers:
                graph.add_edge(nodes[index], nodes[target])
    return graph


@dataclass
class TwitterBaselines:
    """Bundle of the two Twitter comparison datasets."""

    daily_downtime: list[float]
    follower_graph: nx.DiGraph

    @classmethod
    def generate(
        cls,
        days: int = 300,
        n_users: int = 5_000,
        seed: int = 2007,
    ) -> "TwitterBaselines":
        """Generate both baselines with a single seed."""
        return cls(
            daily_downtime=twitter_daily_downtime(days, seed=seed),
            follower_graph=build_twitter_follower_graph(n_users=n_users, seed=seed + 4),
        )

    @property
    def mean_downtime(self) -> float:
        """Average daily downtime fraction of the synthetic uptime series."""
        if not self.daily_downtime:
            return 0.0
        return float(np.mean(self.daily_downtime))
