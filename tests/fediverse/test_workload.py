"""Tests for the scenario generator: shape, calibration and reproducibility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fediverse import ScenarioConfig, ScenarioGenerator, build_scenario
from repro.fediverse.entities import RegistrationPolicy, Software
from repro.stats.distributions import pareto_share
from tests.conftest import TINY_SEED


class TestScenarioConfig:
    def test_presets(self):
        tiny = ScenarioConfig.tiny()
        small = ScenarioConfig.small()
        medium = ScenarioConfig.medium()
        assert tiny.n_instances < small.n_instances < medium.n_instances
        assert tiny.total_users < small.total_users < medium.total_users

    def test_large_preset_targets_a_million_toots(self):
        large = ScenarioConfig.large()
        medium = ScenarioConfig.medium()
        assert large.label == "large"
        assert large.total_users == 2 * medium.total_users
        assert large.total_toots_target >= 1_000_000
        # toots scale harder than instances: the crawl volume grows with
        # instances x federated-timeline length
        assert large.n_instances < 2 * medium.n_instances

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(n_instances=1)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(n_instances=10, total_users=5)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(open_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(window_days=1)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(mean_toots_per_user=0)

    def test_scaled(self):
        config = ScenarioConfig.tiny().scaled(0.5)
        assert config.n_instances == 20
        assert config.total_users == 600
        with pytest.raises(ConfigurationError):
            ScenarioConfig.tiny().scaled(0)

    def test_window_and_target_properties(self):
        config = ScenarioConfig.tiny()
        assert config.window_minutes == config.window_days * 24 * 60
        assert config.total_toots_target == int(
            config.total_users * config.mean_toots_per_user
        )

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            build_scenario("gigantic")


class TestGeneratedPopulation(object):
    """Shape assertions on the session-scoped tiny scenario."""

    def test_sizes_match_config(self, tiny_network):
        config = ScenarioConfig.tiny(seed=TINY_SEED)
        assert len(tiny_network) == config.n_instances
        assert tiny_network.total_users() == config.total_users
        # toot volume lands near the target (boosts add a little on top)
        assert tiny_network.total_toots() == pytest.approx(
            config.total_toots_target, rel=0.35
        )

    def test_every_instance_has_a_user(self, tiny_network):
        assert all(len(instance.users) >= 1 for instance in tiny_network.instances())

    def test_user_population_is_skewed(self, tiny_network):
        users_per_instance = [len(i.users) for i in tiny_network.instances()]
        assert pareto_share(users_per_instance, 0.10) > 0.35
        assert max(users_per_instance) < tiny_network.total_users()

    def test_open_instances_hold_most_users(self, tiny_network):
        open_users = sum(
            len(i.users)
            for i in tiny_network.instances()
            if i.descriptor.registration is RegistrationPolicy.OPEN
        )
        assert open_users / tiny_network.total_users() > 0.5

    def test_software_mix_is_mostly_mastodon(self, tiny_network):
        pleroma = sum(
            1 for i in tiny_network.instances() if i.descriptor.software is Software.PLEROMA
        )
        assert pleroma / len(tiny_network) < 0.2

    def test_hosting_metadata_is_complete(self, tiny_network):
        for instance in tiny_network.instances():
            descriptor = instance.descriptor
            assert descriptor.asn > 0
            assert descriptor.ip_address
            assert descriptor.country
            assert tiny_network.geo.asn_of(descriptor.ip_address) == descriptor.asn

    def test_certificates_issued_for_every_instance(self, tiny_network):
        for instance in tiny_network.instances():
            assert instance.domain in tiny_network.certificates

    def test_follow_edges_and_federation_exist(self, tiny_network):
        stats = tiny_network.stats()
        assert stats["follow_edges"] > stats["users"]  # mean degree above one
        assert stats["federation_edges"] > len(tiny_network)

    def test_some_instances_blocked_and_some_tagged(self, tiny_network):
        blocked = sum(1 for i in tiny_network.instances() if i.descriptor.crawl_blocked)
        tagged = sum(1 for i in tiny_network.instances() if i.descriptor.is_tagged)
        assert blocked >= 1
        assert tagged >= 1

    def test_outages_generated(self, tiny_network):
        with_outages = sum(
            1
            for instance in tiny_network.instances()
            if tiny_network.availability.outages_for(instance.domain)
        )
        assert with_outages > len(tiny_network) * 0.5
        assert len(tiny_network.availability.as_events()) >= 1

    def test_toot_creation_times_inside_window(self, tiny_network):
        window = tiny_network.clock.window_minutes
        for instance in tiny_network.instances():
            for toot in instance.local_toots():
                assert 0 <= toot.created_at <= window

    def test_logins_recorded(self, tiny_network):
        total_logins = sum(i.counters.logins for i in tiny_network.instances())
        assert total_logins > 0


class TestReproducibility:
    def test_same_seed_same_population(self):
        config = ScenarioConfig(
            seed=99, label="repro", n_instances=20, total_users=300,
            mean_toots_per_user=3.0, window_days=30,
        )
        first = ScenarioGenerator(config).generate()
        second = ScenarioGenerator(config).generate()
        assert first.domains() == second.domains()
        assert first.stats() == second.stats()
        first_counts = {d: len(first.get_instance(d).users) for d in first.domains()}
        second_counts = {d: len(second.get_instance(d).users) for d in second.domains()}
        assert first_counts == second_counts

    def test_different_seed_differs(self):
        base = ScenarioConfig(
            seed=1, label="a", n_instances=20, total_users=300,
            mean_toots_per_user=3.0, window_days=30,
        )
        other = ScenarioConfig(
            seed=2, label="b", n_instances=20, total_users=300,
            mean_toots_per_user=3.0, window_days=30,
        )
        first = ScenarioGenerator(base).generate()
        second = ScenarioGenerator(other).generate()
        assert first.stats() != second.stats() or first.domains() != second.domains()
