"""Summary statistics: percentiles, correlation, Gini and box plots."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import AnalysisError


def percentile(sample: Iterable[float], q: float) -> float:
    """Return the ``q``-th percentile (``0 <= q <= 100``) of a sample."""
    values = np.asarray([float(v) for v in sample], dtype=float)
    if values.size == 0:
        raise AnalysisError("cannot compute a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise AnalysisError(f"percentile {q} outside [0, 100]")
    return float(np.percentile(values, q))


def gini_coefficient(sample: Iterable[float]) -> float:
    """Return the Gini coefficient of a non-negative sample.

    0 means perfectly equal allocation, values towards 1 indicate the
    heavy concentration the paper repeatedly observes.
    """
    values = np.asarray(sorted(float(v) for v in sample), dtype=float)
    if values.size == 0:
        raise AnalysisError("cannot compute Gini on an empty sample")
    if np.any(values < 0):
        raise AnalysisError("Gini requires non-negative values")
    total = values.sum()
    if total == 0:
        return 0.0
    n = values.size
    index = np.arange(1, n + 1, dtype=float)
    gini = float((2.0 * np.sum(index * values) - (n + 1) * total) / (n * total))
    # guard against floating-point noise for near-uniform samples
    return min(1.0, max(0.0, gini))


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Return the Pearson correlation coefficient between two sequences."""
    x = np.asarray([float(v) for v in xs], dtype=float)
    y = np.asarray([float(v) for v in ys], dtype=float)
    if x.size != y.size:
        raise AnalysisError("correlation inputs must have equal length")
    if x.size < 2:
        raise AnalysisError("correlation requires at least two observations")
    if np.std(x) == 0 or np.std(y) == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def spearman_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Return the Spearman rank correlation between two sequences."""
    x = np.asarray([float(v) for v in xs], dtype=float)
    y = np.asarray([float(v) for v in ys], dtype=float)
    if x.size != y.size:
        raise AnalysisError("correlation inputs must have equal length")
    if x.size < 2:
        raise AnalysisError("correlation requires at least two observations")

    def _ranks(values: np.ndarray) -> np.ndarray:
        order = np.argsort(values, kind="mergesort")
        ranks = np.empty_like(order, dtype=float)
        ranks[order] = np.arange(1, values.size + 1, dtype=float)
        # average ranks for ties
        unique, inverse, counts = np.unique(values, return_inverse=True, return_counts=True)
        sums = np.zeros(unique.size)
        np.add.at(sums, inverse, ranks)
        return sums[inverse] / counts[inverse]

    return pearson_correlation(_ranks(x), _ranks(y))


@dataclass(frozen=True)
class BoxplotStats:
    """The summary statistics drawn by a box-and-whisker plot."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...] = field(default_factory=tuple)

    @property
    def iqr(self) -> float:
        """Inter-quartile range."""
        return self.q3 - self.q1


def boxplot_stats(sample: Iterable[float], whisker: float = 1.5) -> BoxplotStats:
    """Compute Tukey box-plot statistics (used for Fig. 8)."""
    values = np.asarray(sorted(float(v) for v in sample), dtype=float)
    if values.size == 0:
        raise AnalysisError("cannot compute box-plot statistics on an empty sample")
    q1 = float(np.percentile(values, 25))
    median = float(np.percentile(values, 50))
    q3 = float(np.percentile(values, 75))
    iqr = q3 - q1
    low_fence = q1 - whisker * iqr
    high_fence = q3 + whisker * iqr
    inside = values[(values >= low_fence) & (values <= high_fence)]
    whisker_low = float(inside.min()) if inside.size else q1
    whisker_high = float(inside.max()) if inside.size else q3
    outliers = tuple(float(v) for v in values[(values < low_fence) | (values > high_fence)])
    return BoxplotStats(
        minimum=float(values.min()),
        q1=q1,
        median=median,
        q3=q3,
        maximum=float(values.max()),
        mean=float(values.mean()),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
    )


def summarise(sample: Iterable[float]) -> Mapping[str, float]:
    """Return a dictionary of common summary statistics for a sample."""
    values = np.asarray([float(v) for v in sample], dtype=float)
    if values.size == 0:
        raise AnalysisError("cannot summarise an empty sample")
    return {
        "count": float(values.size),
        "mean": float(values.mean()),
        "std": float(values.std()),
        "min": float(values.min()),
        "p25": float(np.percentile(values, 25)),
        "median": float(np.percentile(values, 50)),
        "p75": float(np.percentile(values, 75)),
        "p95": float(np.percentile(values, 95)),
        "p99": float(np.percentile(values, 99)),
        "max": float(values.max()),
        "sum": float(values.sum()),
    }
