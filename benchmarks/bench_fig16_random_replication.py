"""Fig. 16 — random replication vs subscription replication vs none.

Paper shape: replicating each toot onto n random instances beats
subscription-based replication for the same budget (after removing 25
instances, S-Rep keeps 95% of toots available while a single random
replica already keeps 99.2%); curves for n > 4 are indistinguishable from
full availability.

Thin timing wrapper over the ``fig16`` registry runner: the whole
strategy grid — no replication, subscription, six random replica budgets
and a capacity-weighted variant — is one engine sweep sharing the
``instances/by_toots`` removal schedule (and, via the context's
placement memo, the ``no-rep``/``s-rep`` incidence matrices) with fig15.

``pedantic(rounds=1)``: the context memoises placements/rankings, so
repeated rounds would time cache hits, not the experiment.
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_fig16_random_replication(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: get_experiment("fig16").run(ctx), rounds=1, iterations=1
    )
    emit("Fig. 16 — toot availability when removing top instances (by toots)", result.render_text())

    def at25(strategy: str) -> float:
        return result.scalar(f"at25[{strategy}]")

    # ordering: no replication < subscription replication <= random replication
    assert at25("no-rep") < at25("s-rep")
    assert at25("n=1") >= at25("s-rep") - 0.05
    assert at25("n=4") >= at25("n=1") - 1e-9
    # high replica counts keep nearly everything available (paper: >99%)
    assert at25("n=7") > 0.95
    # weighting towards big instances concentrates replicas on exactly the
    # targets of the removal schedule, so it cannot beat uniform placement
    assert at25("n=2/weighted") <= at25("n=2") + 0.02
