"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A scenario or component was configured with invalid parameters."""


class SimulationError(ReproError):
    """The fediverse simulator was driven into an inconsistent state."""


class UnknownInstanceError(SimulationError):
    """An operation referenced an instance domain that does not exist."""

    def __init__(self, domain: str) -> None:
        super().__init__(f"unknown instance: {domain!r}")
        self.domain = domain


class UnknownUserError(SimulationError):
    """An operation referenced a user handle that does not exist."""

    def __init__(self, handle: str) -> None:
        super().__init__(f"unknown user: {handle!r}")
        self.handle = handle


class RegistrationClosedError(SimulationError):
    """A registration was attempted on a closed instance without an invite."""

    def __init__(self, domain: str) -> None:
        super().__init__(f"registrations are closed on {domain!r}")
        self.domain = domain


class CrawlError(ReproError):
    """Base class for crawler failures."""


class HTTPError(CrawlError):
    """A simulated HTTP request failed with a non-success status code."""

    def __init__(self, url: str, status: int, reason: str = "") -> None:
        message = f"HTTP {status} for {url}"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)
        self.url = url
        self.status = status
        self.reason = reason


class InstanceUnavailableError(HTTPError):
    """The target instance was offline at the time of the request."""

    def __init__(self, url: str) -> None:
        super().__init__(url, 503, "instance unavailable")


class CrawlBlockedError(HTTPError):
    """The target instance blocks crawling of the requested resource."""

    def __init__(self, url: str) -> None:
        super().__init__(url, 403, "crawling blocked by instance policy")


class RateLimitError(HTTPError):
    """The crawler exceeded the per-instance request budget."""

    def __init__(self, url: str, retry_after: float) -> None:
        super().__init__(url, 429, f"rate limited, retry after {retry_after:.1f}s")
        self.retry_after = retry_after


class DatasetError(ReproError):
    """A dataset could not be built, loaded, or validated."""


class AnalysisError(ReproError):
    """An analysis routine received inputs it cannot operate on."""
