"""Tests for the follower-graph crawler."""

from __future__ import annotations

import pytest

from repro.crawler.graph_crawler import FollowEdgeRecord, FollowerGraphCrawler
from repro.crawler.http import SimulatedTransport
from repro.fediverse.uptime import Outage
from repro.simtime import TimeWindow
from tests.conftest import build_mini_network, ref


@pytest.fixture()
def network():
    net = build_mini_network()
    net.follow(ref("bob@beta.example"), ref("alice@alpha.example"))
    net.follow(ref("chloe@gamma.example"), ref("alice@alpha.example"))
    net.follow(ref("akira@alpha.example"), ref("alice@alpha.example"))
    net.follow(ref("alice@alpha.example"), ref("bob@beta.example"))
    # only accounts that tooted are crawled
    net.post_toot(ref("alice@alpha.example"), created_at=10)
    net.post_toot(ref("bob@beta.example"), created_at=20)
    return net


class TestFollowEdgeRecord:
    def test_domain_helpers(self):
        edge = FollowEdgeRecord(follower="a@x.example", followed="b@y.example")
        assert edge.follower_domain == "x.example"
        assert edge.followed_domain == "y.example"
        assert edge.is_remote
        assert not FollowEdgeRecord("a@x.example", "b@x.example").is_remote


class TestAccountDiscovery:
    def test_only_tooting_accounts_listed(self, network):
        crawler = FollowerGraphCrawler(SimulatedTransport(network))
        accounts = crawler.list_accounts("alpha.example", at_minute=5000)
        assert accounts == ["alice"]
        everyone = crawler.list_accounts("alpha.example", at_minute=5000, tooted_only=False)
        assert set(everyone) == {"alice", "akira"}

    def test_directory_paging_used(self, network):
        crawler = FollowerGraphCrawler(SimulatedTransport(network), directory_page_size=1)
        everyone = crawler.list_accounts("alpha.example", at_minute=5000, tooted_only=False)
        assert set(everyone) == {"alice", "akira"}


class TestEgoNetworks:
    def test_crawl_followers_emits_incoming_edges(self, network):
        crawler = FollowerGraphCrawler(SimulatedTransport(network))
        edges = crawler.crawl_followers("alpha.example", "alice", at_minute=5000)
        followers = {edge.follower for edge in edges}
        assert followers == {
            "bob@beta.example",
            "chloe@gamma.example",
            "akira@alpha.example",
        }
        assert all(edge.followed == "alice@alpha.example" for edge in edges)

    def test_crawl_instance_covers_all_tooting_accounts(self, network):
        crawler = FollowerGraphCrawler(SimulatedTransport(network))
        edges = crawler.crawl_instance("alpha.example", at_minute=5000)
        assert len(edges) == 3


class TestFullCrawl:
    def test_crawl_collects_edges_and_accounts(self, network):
        crawler = FollowerGraphCrawler(SimulatedTransport(network), threads=3)
        result = crawler.crawl()
        assert ("bob@beta.example", "alice@alpha.example") in result.unique_edges()
        assert ("alice@alpha.example", "bob@beta.example") in result.unique_edges()
        assert "alice@alpha.example" in result.accounts_seen
        assert result.failures == {}

    def test_offline_instances_skipped(self, network):
        network.availability.add_outage(
            Outage("alpha.example", TimeWindow(0, network.clock.window_minutes))
        )
        crawler = FollowerGraphCrawler(SimulatedTransport(network), threads=3)
        result = crawler.crawl()
        # edges towards alice cannot be observed because alpha is unreachable
        assert all(edge.followed_domain != "alpha.example" for edge in result.edges)
