"""Fig. 3 — distribution of instances, toots and users across categories.

Paper shape: tech/games/art dominate by number of instances; adult
instances are few (12.3%) but attract the most users (61%).
"""

from __future__ import annotations

from repro.core import categories
from repro.reporting import format_percentage, format_table

from benchmarks.conftest import emit


def test_fig03_category_breakdown(benchmark, data):
    shares = benchmark(lambda: categories.category_breakdown(data.instances))
    rows = [
        [
            share.category,
            format_percentage(share.instance_share),
            format_percentage(share.toot_share),
            format_percentage(share.user_share),
        ]
        for share in shares
    ]
    emit("Fig. 3 — category shares (of the tagged subset)",
         format_table(["category", "instances", "toots", "users"], rows))

    by_category = {share.category: share for share in shares}
    if "adult" in by_category and "tech" in by_category:
        adult = by_category["adult"]
        tech = by_category["tech"]
        # the paper's outlier: few adult instances, disproportionate users
        assert adult.instance_share < tech.instance_share
        assert adult.user_share > adult.instance_share
    assert shares[0].instance_share >= shares[-1].instance_share


def test_fig03_tagging_coverage(benchmark, data):
    coverage = benchmark(lambda: categories.tagging_coverage(data.instances))
    emit(
        "Fig. 3 — tagging coverage",
        format_table(
            ["metric", "value"],
            [[key, round(value, 3)] for key, value in coverage.items()],
        ),
    )
    # only a minority of instances self-declare categories (paper: 697/4328)
    assert coverage["instance_coverage"] < 0.5
