"""Fig. 12 — impact of removing the most-connected accounts from G(V,E).

Paper shape: Mastodon's social graph is far more sensitive than Twitter's
— removing the top 1% of accounts shrinks Mastodon's LCC from ~100% to
26% of users, while Twitter retains ~80% even after losing the top 10%.
"""

from __future__ import annotations

from repro.core import resilience
from repro.reporting import format_percentage, format_table

from benchmarks.conftest import emit

ROUNDS = 10


def test_fig12_user_removal_sweep(benchmark, data, twitter):
    def run():
        return (
            resilience.user_removal_sweep(
                data.graphs.follower_graph, rounds=ROUNDS, fraction_per_round=0.01
            ),
            resilience.user_removal_sweep(
                twitter.follower_graph, rounds=ROUNDS, fraction_per_round=0.01
            ),
        )

    mastodon_steps, twitter_steps = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            format_percentage(m.removed_fraction),
            format_percentage(m.lcc_fraction),
            m.components,
            format_percentage(t.lcc_fraction),
            t.components,
        ]
        for m, t in zip(mastodon_steps, twitter_steps)
    ]
    emit(
        "Fig. 12 — removing the top 1% of accounts per round",
        format_table(
            ["removed", "Mastodon LCC", "Mastodon components", "Twitter LCC", "Twitter components"],
            rows,
        ),
    )

    assert mastodon_steps[0].lcc_fraction > 0.9
    # the LCC shrinks monotonically and Mastodon degrades at least as fast as Twitter
    mastodon_drop = mastodon_steps[0].lcc_fraction - mastodon_steps[-1].lcc_fraction
    twitter_drop = twitter_steps[0].lcc_fraction - twitter_steps[-1].lcc_fraction
    assert mastodon_drop > 0.05
    assert mastodon_drop >= twitter_drop - 0.05
