"""Tests for the sweep API: strategy grids, batched curves, reporting glue."""

from __future__ import annotations

import pytest

from repro.core import replication, resilience
from repro.engine import (
    ASRemoval,
    InstanceRemoval,
    StrategySpec,
    random_strategy_grid,
    run_availability_sweep,
)
from repro.errors import AnalysisError
from repro.reporting import format_sweep_table

from tests.engine.test_equivalence import random_scenario


@pytest.fixture(scope="module")
def scenario():
    return random_scenario(5)


@pytest.fixture(scope="module")
def sweep(scenario):
    toots, graphs, domains, asn_of = scenario
    ranking = resilience.rank_instances(
        graphs.federation_graph,
        toots_per_instance=toots.toots_per_instance(),
        by="toots",
    )
    as_ranking = resilience.rank_ases(asn_of, by="instances")
    strategies = [
        StrategySpec.none(),
        StrategySpec.subscription(),
        *random_strategy_grid([1, 3], seeds=[7]),
    ]
    failures = [
        InstanceRemoval(ranking, steps=6, name="instances"),
        ASRemoval(asn_of, as_ranking, steps=2, name="ases"),
    ]
    result = run_availability_sweep(
        toots, strategies, failures, graphs=graphs, candidate_domains=domains
    )
    return result, ranking, as_ranking


class TestSweep:
    def test_grid_is_fully_populated(self, sweep):
        result, _, _ = sweep
        assert set(result.strategy_names) == {"no-rep", "s-rep", "n=1/seed=7", "n=3/seed=7"}
        assert result.failure_names == ("instances", "ases")
        for strategy in result.strategy_names:
            for failure in result.failure_names:
                assert result.curve(strategy, failure)[0].availability == 1.0

    def test_sweep_curves_match_individual_calls(self, scenario, sweep):
        toots, graphs, domains, asn_of = scenario
        result, ranking, as_ranking = sweep
        placements = replication.subscription_replication(toots, graphs)
        assert result.curve("s-rep", "instances") == (
            replication.availability_under_instance_removal(placements, ranking, steps=6)
        )
        random_placements = replication.random_replication(toots, domains, 1, seed=7)
        assert result.curve("n=1/seed=7", "ases") == (
            replication.availability_under_as_removal(
                random_placements, asn_of, as_ranking, steps=2
            )
        )

    def test_compare_orders_strategies(self, sweep):
        result, ranking, _ = sweep
        removed = min(6, len(ranking))
        comparison = result.compare("instances", removed)
        assert comparison["s-rep"] >= comparison["no-rep"]
        assert comparison["n=3/seed=7"] >= comparison["n=1/seed=7"] - 0.05

    def test_unknown_curve_rejected(self, sweep):
        result, _, _ = sweep
        with pytest.raises(AnalysisError):
            result.curve("no-rep", "nonexistent")

    def test_availability_rows_and_formatting(self, sweep):
        result, _, _ = sweep
        rows = result.availability_rows("instances", (0, 2))
        assert [row[0] for row in rows] == list(result.strategy_names)
        assert all(row[1] == 1.0 for row in rows)
        table = format_sweep_table(result, "instances", (0, 2))
        assert "strategy" in table and "top 2 removed" in table and "100.0%" in table

    def test_seed_grid_names_are_distinct(self):
        grid = random_strategy_grid([2], seeds=[0, 1])
        assert {spec.name for spec in grid} == {"n=2", "n=2/seed=1"}

    def test_validation(self, scenario):
        toots, graphs, domains, _ = scenario
        failure = InstanceRemoval(["x"], steps=1)
        with pytest.raises(AnalysisError):
            run_availability_sweep(toots, [], [failure])
        with pytest.raises(AnalysisError):
            run_availability_sweep(
                toots, [StrategySpec.none(), StrategySpec.none()], [failure]
            )
        with pytest.raises(AnalysisError):
            run_availability_sweep(toots, [StrategySpec.subscription()], [failure])
        with pytest.raises(AnalysisError):
            run_availability_sweep(
                toots, [StrategySpec.random(1)], [failure]
            )  # no candidate domains

    def test_weighted_random_strategy_end_to_end(self, scenario):
        """A seeded weighted spec through the sweep: heavier-weighted domains
        must receive proportionally more replicas (no test exercised
        ``weights`` through the sweep path before)."""
        toots, graphs, domains, asn_of = scenario
        heavy = sorted(domains)[0]
        weights = {d: (40.0 if d == heavy else 1.0) for d in domains}
        spec = StrategySpec.random(2, seed=13, weights=weights, name="weighted")
        result = run_availability_sweep(
            toots,
            [StrategySpec.random(2, seed=13, name="uniform"), spec],
            [InstanceRemoval(sorted(domains), steps=3, name="instances")],
            candidate_domains=domains,
            keep_placements=True,
        )
        placements = result.placements["weighted"]
        assert placements.strategy == "random-replication-n2-weighted"
        arrays = placements.arrays
        load = {d: c for d, c in zip(arrays.domains, arrays.domain_replica_load())}
        others = [load.get(d, 0) for d in domains if d != heavy]
        # 40x the weight -> the heavy domain lands on almost every toot it
        # does not already host (draws hitting the home instance collapse)
        heavy_homed = int((arrays.home == arrays.domains.index(heavy)).sum())
        assert load[heavy] > 2 * max(others)
        assert load[heavy] > 0.9 * (len(toots) - heavy_homed)
        # both specs produced full curves through the same sweep call
        for name in ("uniform", "weighted"):
            curve = result.curve(name, "instances")
            assert curve[0].availability == 1.0
            assert len(curve) == 4

    def test_keep_placements_exposes_maps(self, scenario):
        toots, graphs, domains, _ = scenario
        result = run_availability_sweep(
            toots,
            [StrategySpec.none()],
            [InstanceRemoval(domains, steps=2)],
            keep_placements=True,
        )
        assert "no-rep" in result.placements
        assert len(result.placements["no-rep"]) == len(toots)
