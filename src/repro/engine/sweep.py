"""The sweep API: many (strategy, failure, seed) combinations in one call.

The expensive part of an availability experiment is the per-strategy
incidence matrix; every failure schedule after that is a cheap batched
reduction.  ``run_availability_sweep`` exploits exactly that: one
:class:`~repro.engine.incidence.TootIncidence` per placement strategy,
then one :func:`~repro.engine.kernels.kill_steps_batch` pass covering
every failure model.  Seeds are just more strategies
(:meth:`StrategySpec.random` embeds the seed in the spec), so a
(strategy × ranking × seed) grid is a single call that returns every
curve, ready for :mod:`repro.reporting`.

Incidence matrices are memoised per placement map
(:meth:`TootIncidence.from_placements`), so repeated
:func:`availability_curves` calls on the same :class:`PlacementMap` —
across sweeps, wrappers, or ad-hoc experiments — rebuild nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.core.replication import (
    AvailabilityPoint,
    PlacementMap,
    no_replication,
    random_replication,
    subscription_replication,
)
from repro.engine.failures import FailureModel
from repro.engine.incidence import TootIncidence
from repro.engine.kernels import availability_curves_batch


def _to_points(curve: np.ndarray) -> list[AvailabilityPoint]:
    return [
        AvailabilityPoint(removed=step, availability=float(value))
        for step, value in enumerate(curve)
    ]


def availability_curve(
    placements: PlacementMap | TootIncidence, failure: FailureModel
) -> list[AvailabilityPoint]:
    """One availability curve for one placement map and one failure model."""
    return availability_curves(placements, [failure])[failure.name]


def availability_curves(
    placements: PlacementMap | TootIncidence, failures: Sequence[FailureModel]
) -> dict[str, list[AvailabilityPoint]]:
    """Curves for many failure models over one shared incidence matrix."""
    if not failures:
        raise AnalysisError("need at least one failure model")
    names = [failure.name for failure in failures]
    if len(set(names)) != len(names):
        raise AnalysisError("failure models must have distinct names")
    incidence = (
        placements
        if isinstance(placements, TootIncidence)
        else TootIncidence.from_placements(placements)
    )
    steps = np.asarray([failure.effective_steps() for failure in failures], dtype=np.int64)
    removal_matrix = np.column_stack(
        [
            incidence.removal_vector(failure.removal_index(), int(steps[j]))
            for j, failure in enumerate(failures)
        ]
    )
    curves = availability_curves_batch(incidence.matrix, removal_matrix, steps)
    return {name: _to_points(curve) for name, curve in zip(names, curves)}


# -- placement strategies as declarative specs -----------------------------------


@dataclass(frozen=True)
class StrategySpec:
    """A named recipe for building a :class:`PlacementMap`."""

    name: str
    kind: str  # "none" | "subscription" | "random"
    n_replicas: int = 0
    seed: int = 0
    weights: tuple[tuple[str, float], ...] | None = None

    @classmethod
    def none(cls, name: str = "no-rep") -> "StrategySpec":
        return cls(name=name, kind="none")

    @classmethod
    def subscription(cls, name: str = "s-rep") -> "StrategySpec":
        return cls(name=name, kind="subscription")

    @classmethod
    def random(
        cls,
        n_replicas: int,
        seed: int = 0,
        weights: Mapping[str, float] | None = None,
        name: str | None = None,
    ) -> "StrategySpec":
        if name is None:
            name = f"n={n_replicas}" if seed == 0 else f"n={n_replicas}/seed={seed}"
        frozen_weights = tuple(sorted(weights.items())) if weights is not None else None
        return cls(
            name=name, kind="random", n_replicas=n_replicas, seed=seed, weights=frozen_weights
        )

    def build(
        self,
        toots: "TootsDataset",
        graphs: "GraphDataset | None" = None,
        candidate_domains: Sequence[str] | None = None,
    ) -> PlacementMap:
        if self.kind == "none":
            return no_replication(toots)
        if self.kind == "subscription":
            if graphs is None:
                raise AnalysisError("subscription replication needs the graphs dataset")
            return subscription_replication(toots, graphs)
        if self.kind == "random":
            if candidate_domains is None:
                raise AnalysisError("random replication needs candidate domains")
            return random_replication(
                toots,
                candidate_domains,
                self.n_replicas,
                seed=self.seed,
                weights=dict(self.weights) if self.weights is not None else None,
            )
        raise AnalysisError(f"unknown placement strategy kind: {self.kind!r}")


def random_strategy_grid(
    replica_counts: Sequence[int], seeds: Sequence[int] = (0,)
) -> list[StrategySpec]:
    """The (n_replicas × seed) grid as strategy specs."""
    return [
        StrategySpec.random(n_replicas=n, seed=seed)
        for n in replica_counts
        for seed in seeds
    ]


# -- the sweep itself ------------------------------------------------------------


@dataclass
class SweepResult:
    """Every curve of a sweep, keyed by (strategy name, failure name)."""

    curves: dict[tuple[str, str], list[AvailabilityPoint]]
    strategy_names: tuple[str, ...]
    failure_names: tuple[str, ...]
    placements: dict[str, PlacementMap] = field(default_factory=dict)

    def curve(self, strategy: str, failure: str) -> list[AvailabilityPoint]:
        try:
            return self.curves[(strategy, failure)]
        except KeyError as exc:
            raise AnalysisError(f"no curve for {strategy!r} under {failure!r}") from exc

    def compare(self, failure: str, removed: int) -> dict[str, float]:
        """Availability of every strategy after ``removed`` removals."""
        from repro.core.replication import availability_at

        return {
            strategy: availability_at(self.curve(strategy, failure), removed)
            for strategy in self.strategy_names
        }

    def availability_rows(
        self, failure: str, removals: Sequence[int]
    ) -> list[list[object]]:
        """One row per strategy: ``[name, avail@removals[0], ...]`` (raw floats)."""
        from repro.core.replication import availability_at

        return [
            [strategy]
            + [availability_at(self.curve(strategy, failure), r) for r in removals]
            for strategy in self.strategy_names
        ]


def run_availability_sweep(
    toots: "TootsDataset",
    strategies: Sequence[StrategySpec],
    failures: Sequence[FailureModel],
    *,
    graphs: "GraphDataset | None" = None,
    candidate_domains: Sequence[str] | None = None,
    keep_placements: bool = False,
) -> SweepResult:
    """Evaluate every (strategy, failure) combination in one call.

    Builds each strategy's placement map and incidence matrix once, then
    batch-evaluates all failure schedules against it.  Random strategies
    carry their own seeds, so a seed sweep is just more
    :class:`StrategySpec` entries.
    """
    if not strategies:
        raise AnalysisError("need at least one placement strategy")
    names = [spec.name for spec in strategies]
    if len(set(names)) != len(names):
        raise AnalysisError("placement strategies must have distinct names")
    curves: dict[tuple[str, str], list[AvailabilityPoint]] = {}
    placements_by_name: dict[str, PlacementMap] = {}
    for spec in strategies:
        placements = spec.build(toots, graphs=graphs, candidate_domains=candidate_domains)
        if keep_placements:
            placements_by_name[spec.name] = placements
        incidence = TootIncidence.from_placements(placements)
        for failure_name, curve in availability_curves(incidence, failures).items():
            curves[(spec.name, failure_name)] = curve
    return SweepResult(
        curves=curves,
        strategy_names=tuple(names),
        failure_names=tuple(failure.name for failure in failures),
        placements=placements_by_name,
    )
