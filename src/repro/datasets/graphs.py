"""The graphs dataset: the follower graph and the induced federation graph.

The paper induces two graphs from its crawl:

* ``G(V, E)`` — the user-level follower graph: a directed edge from
  ``Vi`` to ``Vj`` when ``Vi`` follows ``Vj`` (853K accounts, 9.25M edges);
* ``GF(I, E)`` — the instance-level federation graph: a directed edge
  from instance ``Ia`` to ``Ib`` when at least one account on ``Ia``
  follows an account on ``Ib``.

Both are represented as :class:`networkx.DiGraph` objects; this module
provides the builders plus the handful of degree/LCC helpers the
resilience analysis relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from repro.errors import DatasetError
from repro.crawler.graph_crawler import FollowEdgeRecord, GraphCrawlResult


def _domain_of(handle: str) -> str:
    if "@" not in handle:
        raise DatasetError(f"handle without a domain part: {handle!r}")
    return handle.rsplit("@", 1)[1]


def build_follower_graph(
    edges: Iterable[FollowEdgeRecord | tuple[str, str]],
) -> nx.DiGraph:
    """Build the user-level follower graph ``G(V, E)``.

    Accepts either :class:`FollowEdgeRecord` objects or plain
    ``(follower, followed)`` handle tuples.  Every node is annotated with
    its instance domain.
    """
    graph = nx.DiGraph()
    for edge in edges:
        if isinstance(edge, FollowEdgeRecord):
            follower, followed = edge.follower, edge.followed
        else:
            follower, followed = edge
        if follower == followed:
            continue
        graph.add_node(follower, domain=_domain_of(follower))
        graph.add_node(followed, domain=_domain_of(followed))
        graph.add_edge(follower, followed)
    return graph


def build_federation_graph(follower_graph: nx.DiGraph) -> nx.DiGraph:
    """Induce the instance-level federation graph ``GF(I, E)``.

    An edge ``(a, b)`` exists when at least one account on instance ``a``
    follows an account on instance ``b``.  Nodes carry ``users`` (number
    of accounts observed on the instance) and edges carry ``weight`` (the
    number of underlying follow relationships).
    """
    federation = nx.DiGraph()
    users_per_instance: dict[str, int] = {}
    for node, data in follower_graph.nodes(data=True):
        domain = data.get("domain") or _domain_of(node)
        users_per_instance[domain] = users_per_instance.get(domain, 0) + 1
    for domain, users in users_per_instance.items():
        federation.add_node(domain, users=users)
    for follower, followed in follower_graph.edges():
        source = follower_graph.nodes[follower].get("domain") or _domain_of(follower)
        target = follower_graph.nodes[followed].get("domain") or _domain_of(followed)
        if source == target:
            continue
        if federation.has_edge(source, target):
            federation[source][target]["weight"] += 1
        else:
            federation.add_edge(source, target, weight=1)
    return federation


@dataclass
class GraphDataset:
    """The follower graph, the induced federation graph and helpers."""

    follower_graph: nx.DiGraph
    federation_graph: nx.DiGraph

    @classmethod
    def from_edges(cls, edges: Iterable[FollowEdgeRecord | tuple[str, str]]) -> "GraphDataset":
        """Build both graphs from raw follower edges."""
        follower_graph = build_follower_graph(edges)
        if follower_graph.number_of_nodes() == 0:
            raise DatasetError("cannot build a graph dataset without edges")
        return cls(
            follower_graph=follower_graph,
            federation_graph=build_federation_graph(follower_graph),
        )

    @classmethod
    def from_crawl(cls, result: GraphCrawlResult) -> "GraphDataset":
        """Build both graphs from a follower-graph crawl."""
        return cls.from_edges(result.edges)

    # -- user-level views -----------------------------------------------------

    def user_count(self) -> int:
        """Number of accounts in the follower graph."""
        return self.follower_graph.number_of_nodes()

    def follow_edge_count(self) -> int:
        """Number of follow edges."""
        return self.follower_graph.number_of_edges()

    def out_degrees(self) -> list[int]:
        """Out-degree (number of accounts followed) of every account."""
        return [degree for _, degree in self.follower_graph.out_degree()]

    def in_degrees(self) -> list[int]:
        """In-degree (number of followers) of every account."""
        return [degree for _, degree in self.follower_graph.in_degree()]

    def users_on_instance(self, domain: str) -> list[str]:
        """Accounts hosted on ``domain`` (as observed in the graph)."""
        return [
            node
            for node, data in self.follower_graph.nodes(data=True)
            if data.get("domain") == domain
        ]

    def users_per_instance(self) -> dict[str, int]:
        """Number of observed accounts per instance."""
        counts: dict[str, int] = {}
        for _, data in self.follower_graph.nodes(data=True):
            domain = data.get("domain", "")
            counts[domain] = counts.get(domain, 0) + 1
        return counts

    # -- instance-level views ------------------------------------------------------

    def instance_count(self) -> int:
        """Number of instances in the federation graph."""
        return self.federation_graph.number_of_nodes()

    def federation_edge_count(self) -> int:
        """Number of instance-to-instance subscription edges."""
        return self.federation_graph.number_of_edges()

    def federation_out_degrees(self) -> list[int]:
        """Out-degree of every instance in the federation graph."""
        return [degree for _, degree in self.federation_graph.out_degree()]

    def instance_degree_table(self) -> dict[str, dict[str, int]]:
        """Per-instance in/out degree and observed user count (Table 2 columns)."""
        table: dict[str, dict[str, int]] = {}
        users = self.users_per_instance()
        for domain in self.federation_graph.nodes():
            table[domain] = {
                "users": users.get(domain, 0),
                "instance_out_degree": self.federation_graph.out_degree(domain),
                "instance_in_degree": self.federation_graph.in_degree(domain),
            }
        return table


# -- LCC helpers shared by the resilience analysis -----------------------------


def largest_connected_component_fraction(graph: nx.Graph | nx.DiGraph) -> float:
    """Fraction of nodes inside the largest weakly connected component."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    if graph.is_directed():
        components = nx.weakly_connected_components(graph)
    else:
        components = nx.connected_components(graph)
    return max((len(c) for c in components), default=0) / n


def connected_component_count(graph: nx.Graph | nx.DiGraph, strongly: bool = False) -> int:
    """Number of (weakly or strongly) connected components."""
    if graph.number_of_nodes() == 0:
        return 0
    if graph.is_directed():
        if strongly:
            return nx.number_strongly_connected_components(graph)
        return nx.number_weakly_connected_components(graph)
    return nx.number_connected_components(graph)


def top_nodes_by(graph: nx.Graph | nx.DiGraph, key: str = "degree", limit: int | None = None) -> list[str]:
    """Rank nodes by ``degree``, ``out_degree``, ``in_degree`` or an attribute."""
    if key == "degree":
        ranking = sorted(graph.degree(), key=lambda kv: kv[1], reverse=True)
    elif key == "out_degree" and graph.is_directed():
        ranking = sorted(graph.out_degree(), key=lambda kv: kv[1], reverse=True)
    elif key == "in_degree" and graph.is_directed():
        ranking = sorted(graph.in_degree(), key=lambda kv: kv[1], reverse=True)
    else:
        ranking = sorted(
            ((node, data.get(key, 0)) for node, data in graph.nodes(data=True)),
            key=lambda kv: kv[1],
            reverse=True,
        )
    nodes = [node for node, _ in ranking]
    return nodes if limit is None else nodes[:limit]
