"""The sweep API: many (strategy, failure, seed) combinations in one call.

The expensive part of an availability experiment is the per-strategy
incidence matrix; every failure schedule after that is a cheap batched
reduction.  ``run_availability_sweep`` exploits exactly that: one
:class:`~repro.engine.incidence.TootIncidence` per placement strategy,
then one :func:`~repro.engine.kernels.kill_steps_batch` pass covering
every failure model.  Seeds are just more strategies
(:meth:`StrategySpec.random` embeds the seed in the spec), so a
(strategy × ranking × seed) grid is a single call that returns every
curve, ready for :mod:`repro.reporting`.

Incidence matrices are memoised per placement map
(:meth:`TootIncidence.from_placements`), so repeated
:func:`availability_curves` calls on the same :class:`PlacementMap` —
across sweeps, wrappers, or ad-hoc experiments — rebuild nothing.

Past a million toots the full incidence matrix itself becomes the
memory ceiling, so :func:`availability_curves` and
:func:`run_availability_sweep` take ``shard_size`` / ``workers`` knobs:
arrays-backed placements are then evaluated shard by shard through
:mod:`repro.engine.sharding` (bit-identical curves, O(shard) peak
memory, optional thread-parallel shards).  Corpora at or above
:data:`~repro.engine.sharding.AUTO_SHARD_THRESHOLD` toots shard
automatically; ``shard_size=0`` forces the monolithic path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro import obs
from repro.errors import AnalysisError
from repro.core.replication import (
    AvailabilityPoint,
    PlacementMap,
    no_replication,
    random_replication,
    subscription_replication,
)
from repro.engine.failures import FailureModel
from repro.engine.incidence import TootIncidence
from repro.engine.kernels import (
    availability_from_losses,
    losses_per_step_batch,
    temporal_availability_from_counts,
    temporal_removal_matrix,
)
from repro.engine.sharding import (
    AUTO_SHARD_THRESHOLD,
    DEFAULT_SHARD_SIZE,
    ShardedIncidence,
    streaming_losses,
)


def _to_points(curve: np.ndarray) -> list[AvailabilityPoint]:
    return [
        AvailabilityPoint(removed=step, availability=float(value))
        for step, value in enumerate(curve)
    ]


def availability_curve(
    placements: PlacementMap | TootIncidence | ShardedIncidence,
    failure: FailureModel,
    *,
    shard_size: int | None = None,
    workers: int | None = None,
) -> list[AvailabilityPoint]:
    """One availability curve for one placement map and one failure model."""
    curves = availability_curves(
        placements, [failure], shard_size=shard_size, workers=workers
    )
    return curves[failure.name]


def _resolve_sharding(
    placements: PlacementMap | TootIncidence | ShardedIncidence,
    shard_size: int | None,
    workers: int | None,
) -> ShardedIncidence | None:
    """Decide whether — and over what backing store — to shard.

    ``shard_size=None`` is automatic: arrays-backed corpora at or above
    :data:`AUTO_SHARD_THRESHOLD` toots shard at :data:`DEFAULT_SHARD_SIZE`,
    as does any request for ``workers > 1`` (parallelism needs shards).
    Backends built from a columnar corpus carry their crawl shard
    boundaries (``PlacementArrays.source_bounds``); automatic sharding
    streams over exactly those shards, so the on-disk layout and the
    evaluation working set line up.  ``shard_size=0`` opts out entirely;
    any other explicit size forces (uniform) sharding.  Arrays-backed
    placements shard without ever building the full incidence matrix;
    built matrices and dict-backed maps shard by row-range views.
    """
    if isinstance(placements, ShardedIncidence):
        return placements
    if shard_size is not None and shard_size < 0:
        raise AnalysisError("shard_size must be a positive number of toots (or 0)")
    if shard_size == 0:
        if workers is not None and workers > 1:
            raise AnalysisError(
                "workers > 1 needs shards to parallelise over — "
                "drop shard_size=0 or the workers request"
            )
        return None
    arrays = (
        None
        if isinstance(placements, TootIncidence)
        else getattr(placements, "arrays", None)
    )
    if shard_size is None:
        auto_shard = (
            arrays is not None and arrays.n_toots >= AUTO_SHARD_THRESHOLD
        ) or (workers is not None and workers > 1)
        if not auto_shard:
            return None
        source_bounds = getattr(arrays, "source_bounds", None)
        if source_bounds:
            return ShardedIncidence.from_arrays(arrays, bounds=source_bounds)
        shard_size = DEFAULT_SHARD_SIZE
    if arrays is not None:
        return ShardedIncidence.from_arrays(arrays, shard_size)
    incidence = (
        placements
        if isinstance(placements, TootIncidence)
        else TootIncidence.from_placements(placements)
    )
    return ShardedIncidence.from_incidence(incidence, shard_size)


def availability_curves(
    placements: PlacementMap | TootIncidence | ShardedIncidence,
    failures: Sequence[FailureModel],
    *,
    shard_size: int | None = None,
    workers: int | None = None,
) -> dict[str, list[AvailabilityPoint]]:
    """Curves for many failure models over one shared incidence matrix.

    ``shard_size`` / ``workers`` route the evaluation through the
    streaming sharded engine (:mod:`repro.engine.sharding`); the curves
    are bit-identical either way, so the knobs trade peak memory and
    wall time only.

    Cumulative models contribute one removal column each; temporal
    models (``failure.temporal``) contribute one single-step column per
    tick, built by :func:`~repro.engine.kernels.temporal_removal_matrix`.
    Both column kinds flow through the same batched loss reduction —
    monolithic or streaming-sharded — before being reassembled into
    cumulative curves and availability time series respectively.
    """
    if not failures:
        raise AnalysisError("need at least one failure model")
    names = [failure.name for failure in failures]
    if len(set(names)) != len(names):
        raise AnalysisError("failure models must have distinct names")
    sharded = _resolve_sharding(placements, shard_size, workers)
    if sharded is not None:
        target: ShardedIncidence | TootIncidence = sharded
    else:
        target = (
            placements
            if isinstance(placements, TootIncidence)
            else TootIncidence.from_placements(placements)
        )
    with obs.span(
        "engine/availability_curves",
        failures=len(failures),
        n_toots=target.n_toots,
        sharded=sharded is not None,
    ):
        lookup = target.lookup
        blocks: list[np.ndarray] = []
        col_steps: list[int] = []
        spans: list[tuple[FailureModel, int, int]] = []  # (model, first column, n columns)
        for failure in failures:
            start = len(col_steps)
            if failure.temporal:
                block = temporal_removal_matrix(failure.down_matrix(lookup))
                blocks.append(block)
                col_steps.extend([1] * block.shape[1])
            else:
                failure_steps = failure.effective_steps()
                blocks.append(
                    lookup.removal_vector(failure.removal_index(), failure_steps)[:, None]
                )
                col_steps.append(failure_steps)
            spans.append((failure, start, len(col_steps) - start))
        removal_matrix = np.concatenate(blocks, axis=1)
        steps = np.asarray(col_steps, dtype=np.int64)
        if sharded is not None:
            losses = streaming_losses(sharded, removal_matrix, steps, workers=workers)
            total = sharded.n_toots
        else:
            losses = losses_per_step_batch(target.matrix, removal_matrix, steps)
            total = target.n_toots
    curves: dict[str, list[AvailabilityPoint]] = {}
    for failure, start, n_cols in spans:
        if failure.temporal:
            curve = temporal_availability_from_counts(
                losses[start : start + n_cols, 1], total
            )
        else:
            curve = availability_from_losses(
                losses[start, : int(steps[start]) + 1], total
            )
        curves[failure.name] = _to_points(curve)
    return curves


# -- placement strategies as declarative specs -----------------------------------


@dataclass(frozen=True)
class StrategySpec:
    """A named recipe for building a :class:`PlacementMap`."""

    name: str
    kind: str  # "none" | "subscription" | "random"
    n_replicas: int = 0
    seed: int = 0
    weights: tuple[tuple[str, float], ...] | None = None

    @classmethod
    def none(cls, name: str = "no-rep") -> "StrategySpec":
        return cls(name=name, kind="none")

    @classmethod
    def subscription(cls, name: str = "s-rep") -> "StrategySpec":
        return cls(name=name, kind="subscription")

    @classmethod
    def random(
        cls,
        n_replicas: int,
        seed: int = 0,
        weights: Mapping[str, float] | None = None,
        name: str | None = None,
    ) -> "StrategySpec":
        if name is None:
            name = f"n={n_replicas}" if seed == 0 else f"n={n_replicas}/seed={seed}"
        frozen_weights = tuple(sorted(weights.items())) if weights is not None else None
        return cls(
            name=name, kind="random", n_replicas=n_replicas, seed=seed, weights=frozen_weights
        )

    def build(
        self,
        toots: "TootsDataset",
        graphs: "GraphDataset | None" = None,
        candidate_domains: Sequence[str] | None = None,
    ) -> PlacementMap:
        if self.kind == "none":
            return no_replication(toots)
        if self.kind == "subscription":
            if graphs is None:
                raise AnalysisError("subscription replication needs the graphs dataset")
            return subscription_replication(toots, graphs)
        if self.kind == "random":
            if candidate_domains is None:
                raise AnalysisError("random replication needs candidate domains")
            return random_replication(
                toots,
                candidate_domains,
                self.n_replicas,
                seed=self.seed,
                weights=dict(self.weights) if self.weights is not None else None,
            )
        raise AnalysisError(f"unknown placement strategy kind: {self.kind!r}")

    def build_from_corpus(
        self,
        store: "CorpusStore",
        graphs: "GraphDataset | GraphStore | None" = None,
        candidate_domains: Sequence[str] | None = None,
    ) -> PlacementMap:
        """Build the same placement map straight from a columnar corpus.

        Dispatches through :meth:`PlacementArrays.from_corpus
        <repro.engine.placement.PlacementArrays.from_corpus>`; the
        resulting map is bit-identical to :meth:`build` on the
        equivalent record-backed dataset, without materialising records.
        """
        from repro.engine.placement import PlacementArrays

        arrays = PlacementArrays.from_corpus(
            store,
            self.kind,
            graphs=graphs,
            candidate_domains=candidate_domains,
            n_replicas=self.n_replicas,
            seed=self.seed,
            weights=dict(self.weights) if self.weights is not None else None,
        )
        return PlacementMap(strategy=arrays.strategy, arrays=arrays)


def random_strategy_grid(
    replica_counts: Sequence[int], seeds: Sequence[int] = (0,)
) -> list[StrategySpec]:
    """The (n_replicas × seed) grid as strategy specs."""
    return [
        StrategySpec.random(n_replicas=n, seed=seed)
        for n in replica_counts
        for seed in seeds
    ]


# -- the sweep itself ------------------------------------------------------------


@dataclass
class SweepResult:
    """Every curve of a sweep, keyed by (strategy name, failure name)."""

    curves: dict[tuple[str, str], list[AvailabilityPoint]]
    strategy_names: tuple[str, ...]
    failure_names: tuple[str, ...]
    placements: dict[str, PlacementMap] = field(default_factory=dict)

    def curve(self, strategy: str, failure: str) -> list[AvailabilityPoint]:
        try:
            return self.curves[(strategy, failure)]
        except KeyError as exc:
            raise AnalysisError(f"no curve for {strategy!r} under {failure!r}") from exc

    def compare(self, failure: str, removed: int) -> dict[str, float]:
        """Availability of every strategy after ``removed`` removals."""
        from repro.core.replication import availability_at

        return {
            strategy: availability_at(self.curve(strategy, failure), removed)
            for strategy in self.strategy_names
        }

    def availability_rows(
        self, failure: str, removals: Sequence[int]
    ) -> list[list[object]]:
        """One row per strategy: ``[name, avail@removals[0], ...]`` (raw floats)."""
        from repro.core.replication import availability_at

        return [
            [strategy]
            + [availability_at(self.curve(strategy, failure), r) for r in removals]
            for strategy in self.strategy_names
        ]


def run_availability_sweep(
    toots: "TootsDataset",
    strategies: Sequence[StrategySpec],
    failures: Sequence[FailureModel],
    *,
    graphs: "GraphDataset | None" = None,
    candidate_domains: Sequence[str] | None = None,
    keep_placements: bool = False,
    shard_size: int | None = None,
    workers: int | None = None,
) -> SweepResult:
    """Evaluate every (strategy, failure) combination in one call.

    Builds each strategy's placement map and incidence matrix once, then
    batch-evaluates all failure schedules against it.  Random strategies
    carry their own seeds, so a seed sweep is just more
    :class:`StrategySpec` entries.  ``shard_size`` / ``workers`` stream
    each strategy's evaluation through the sharded engine (automatic at
    :data:`~repro.engine.sharding.AUTO_SHARD_THRESHOLD` toots) — same
    curves, bounded memory.
    """
    if not strategies:
        raise AnalysisError("need at least one placement strategy")
    names = [spec.name for spec in strategies]
    if len(set(names)) != len(names):
        raise AnalysisError("placement strategies must have distinct names")
    curves: dict[tuple[str, str], list[AvailabilityPoint]] = {}
    placements_by_name: dict[str, PlacementMap] = {}
    for spec in strategies:
        placements = spec.build(toots, graphs=graphs, candidate_domains=candidate_domains)
        if keep_placements:
            placements_by_name[spec.name] = placements
        strategy_curves = availability_curves(
            placements, failures, shard_size=shard_size, workers=workers
        )
        for failure_name, curve in strategy_curves.items():
            curves[(spec.name, failure_name)] = curve
    return SweepResult(
        curves=curves,
        strategy_names=tuple(names),
        failure_names=tuple(failure.name for failure in failures),
        placements=placements_by_name,
    )
