"""Row-subset query kernels: exact equality with slicing the full matrix.

These are the per-query primitives the serving layer composes —
``losses_per_step_rows``, ``PlacementArrays.rows_incidence``,
``TootIncidence.rows_holding`` / ``ShardedIncidence.rows_holding`` —
each checked against the brute-force equivalent over the monolithic
incidence matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import replication
from repro.engine.incidence import TootIncidence
from repro.engine.kernels import losses_per_step_batch, losses_per_step_rows
from repro.engine.sharding import ShardedIncidence
from repro.errors import AnalysisError

from tests.engine.test_equivalence import random_scenario


def scenario_incidences(seed: int):
    """(arrays, monolithic incidence, sharded incidence) for one scenario."""
    toots, graphs, domains, _ = random_scenario(seed)
    placements = replication.subscription_replication(toots, graphs)
    incidence = TootIncidence.from_placements(placements)
    sharded = ShardedIncidence.from_arrays(placements.arrays, 17)
    return placements.arrays, incidence, sharded


def removal_schedule(incidence: TootIncidence, seed: int, steps: int = 6):
    """A removal column over a shuffled slice of the domain universe."""
    rng = np.random.default_rng(seed)
    domains = list(incidence.domains)
    rng.shuffle(domains)
    index = {domain: i + 1 for i, domain in enumerate(domains[:steps])}
    column = incidence.lookup.removal_vector(index, steps)[:, None]
    return column, np.asarray([steps], dtype=np.int64)


class TestLossesPerStepRows:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_slicing_the_full_matrix(self, seed):
        _, incidence, _ = scenario_incidences(seed)
        column, steps = removal_schedule(incidence, seed)
        rng = np.random.default_rng(seed + 100)
        n = incidence.matrix.shape[0]
        for size in (1, 3, n // 2, n):
            rows = rng.integers(0, n, size=size).astype(np.int64)
            got = losses_per_step_rows(incidence.matrix, rows, column, steps)
            want = losses_per_step_batch(incidence.matrix[rows], column, steps)
            assert np.array_equal(got, want)

    def test_repeated_and_unordered_rows(self, ):
        _, incidence, _ = scenario_incidences(0)
        column, steps = removal_schedule(incidence, 0)
        rows = np.asarray([5, 5, 2, 9, 2, 0], dtype=np.int64)
        got = losses_per_step_rows(incidence.matrix, rows, column, steps)
        want = losses_per_step_batch(incidence.matrix[rows], column, steps)
        assert np.array_equal(got, want)

    def test_rejects_empty_and_out_of_range(self):
        _, incidence, _ = scenario_incidences(1)
        column, steps = removal_schedule(incidence, 1)
        with pytest.raises(AnalysisError, match="non-empty"):
            losses_per_step_rows(
                incidence.matrix, np.empty(0, dtype=np.int64), column, steps
            )
        with pytest.raises(AnalysisError, match="outside"):
            losses_per_step_rows(
                incidence.matrix,
                np.asarray([incidence.matrix.shape[0]]),
                column,
                steps,
            )
        with pytest.raises(AnalysisError, match="outside"):
            losses_per_step_rows(incidence.matrix, np.asarray([-1]), column, steps)


class TestRowsIncidence:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_full_matrix_rows(self, seed):
        arrays, incidence, _ = scenario_incidences(seed)
        rng = np.random.default_rng(seed + 200)
        n = incidence.matrix.shape[0]
        for size in (1, 4, n):
            rows = np.unique(rng.integers(0, n, size=size)).astype(np.int64)
            subset = arrays.rows_incidence(rows)
            want = incidence.matrix[rows]
            assert subset.shape == want.shape
            assert (subset != want).nnz == 0

    def test_preserves_row_order_and_repeats(self):
        arrays, incidence, _ = scenario_incidences(2)
        rows = np.asarray([7, 1, 7, 3], dtype=np.int64)
        subset = arrays.rows_incidence(rows)
        want = incidence.matrix[rows]
        assert (subset != want).nnz == 0


class TestRowsHolding:
    @pytest.mark.parametrize("seed", range(5))
    def test_monolithic_equals_sharded_equals_dense_column(self, seed):
        _, incidence, sharded = scenario_incidences(seed)
        dense = np.asarray(incidence.matrix.todense())
        for code, domain in enumerate(incidence.domains):
            want = np.flatnonzero(dense[:, code]).astype(np.int64)
            got_mono = incidence.rows_holding(domain)
            got_sharded = sharded.rows_holding(domain)
            assert np.array_equal(got_mono, want), domain
            assert np.array_equal(got_sharded, want), domain

    def test_unknown_domain_is_empty(self):
        _, incidence, sharded = scenario_incidences(3)
        assert incidence.rows_holding("nowhere.example").size == 0
        assert sharded.rows_holding("nowhere.example").size == 0

    def test_rows_ascend(self):
        _, incidence, _ = scenario_incidences(4)
        for domain in list(incidence.domains)[:5]:
            rows = incidence.rows_holding(domain)
            assert (np.diff(rows) > 0).all()
