"""The on-disk columnar follower graph: edge shards + node intern tables.

:class:`GraphWriter` / :class:`GraphStore` give the social graph the
same ``.npz``-shard treatment :class:`~repro.corpus.writer.CorpusWriter`
/ :class:`~repro.corpus.store.CorpusStore` give the toot corpus: the
graph crawl (or the columnar scenario generator) streams each
instance's follower edges into a per-instance spool, sealed on clean
completion, and :meth:`GraphWriter.finalise` merges the spools —
instances in sorted-domain order, accounts and followers in crawl
order — into fixed-size edge shards plus a node intern table and a
JSON manifest.

Node codes are assigned in first-appearance order over the merged edge
stream (follower before followed within each edge, self-loops skipped),
which is exactly the node insertion order of
:func:`repro.datasets.graphs.build_follower_graph` over the same edges.
That makes :meth:`GraphMatrix.from_graph_store
<repro.engine.resilience.GraphMatrix.from_graph_store>` bit-compatible
with the networkx round-trip, and lets
:meth:`GraphStore.follower_domain_sets` feed
:func:`~repro.engine.placement.subscription_arrays_from_columns`
without a ``networkx`` graph (or a ``FollowEdgeRecord`` list) ever
existing.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.corpus.journal import JOURNAL_NAME, CrawlJournal
from repro.corpus.npzmap import open_npz
from repro.corpus.writer import (
    _PARTIAL_SUFFIX,
    _QUARANTINE_DIR,
    _Interner,
    _SpoolReader,
    _atomic_savez,
    _atomic_write_text,
    _quarantine,
    _string_array,
    _write_strings,
)
from repro.crawler.graph_crawler import split_handle

#: On-disk graph format version.
GRAPH_SCHEMA = "repro.graph/v1"

#: Default follower edges per shard.
DEFAULT_GRAPH_SHARD_SIZE = 1_000_000

#: Rows per merge chunk (decoded-handle working set bound).
_MERGE_CHUNK_ROWS = 200_000

_MANIFEST = "manifest.json"
_TABLES = "tables.npz"
_SPOOL_DIR = "spool"

#: The two integer columns every edge shard carries.
EDGE_COLUMNS = ("follower_code", "followed_code")

#: Manifest keys that must be present (and their JSON types).
_REQUIRED_KEYS = {
    "schema": str,
    "shard_size": int,
    "n_edges": int,
    "n_nodes": int,
    "n_self_loops": int,
    "crawl_minute": int,
    "columns": list,
    "tables": str,
    "shards": list,
    "edges_collected": dict,
}


class _EdgeSpool:
    """Edge buffers for one instance's follower crawl."""

    def __init__(self, domain: str) -> None:
        self.domain = domain
        self.follower: list[str] = []
        self.followed: list[str] = []

    def add_edges(self, edges: Iterable[tuple[str, str]]) -> int:
        added = 0
        for follower, followed in edges:
            self.follower.append(str(follower))
            self.followed.append(str(followed))
            added += 1
        return added

    def seal(self, directory: Path) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        for name in ("follower", "followed"):
            _write_strings(directory, name, getattr(self, name))
            setattr(self, name, [])


class GraphWriter:
    """Streams a follower-graph crawl into an integer-coded edge store.

    Use as the ``sink`` argument of :meth:`FollowerGraphCrawler.crawl
    <repro.crawler.graph_crawler.FollowerGraphCrawler.crawl>`; or feed
    it directly via :meth:`add_edges` + :meth:`end_instance`, then
    :meth:`finalise` once every instance is in.  Edge ingestion is
    thread-safe at instance granularity, mirroring
    :class:`~repro.corpus.writer.CorpusWriter`.
    """

    def __init__(
        self,
        path: str | Path,
        shard_size: int = DEFAULT_GRAPH_SHARD_SIZE,
        resume: bool = False,
    ) -> None:
        if shard_size < 1:
            raise DatasetError("graph shard_size must be a positive number of edges")
        self.path = Path(path)
        self.shard_size = shard_size
        self.path.mkdir(parents=True, exist_ok=True)
        self._spool_dir = self.path / _SPOOL_DIR
        self._lock = threading.Lock()
        self._spools: dict[str, _EdgeSpool] = {}
        self._sealed: dict[str, Path] = {}
        self._resumed: set[str] = set()
        self._resumed_rows: dict[str, int] = {}
        self._finalised = False
        self._journal = CrawlJournal(self.path / JOURNAL_NAME)
        if resume:
            self._recover()
        elif self._journal.path.exists():
            raise DatasetError(
                f"{self.path} holds an interrupted crawl journal; "
                f"open the writer with resume=True or clear the directory"
            )
        self._spool_dir.mkdir(exist_ok=True)

    def _recover(self) -> None:
        """Trust journal-sealed spools; quarantine every partial write."""
        replay = CrawlJournal.replay(self._journal.path)
        trusted = replay.sealed_domains()
        quarantine = self.path / _QUARANTINE_DIR
        if self._spool_dir.exists():
            for entry in sorted(self._spool_dir.iterdir()):
                if entry.is_dir() and entry.name in trusted:
                    self._sealed[entry.name] = entry
                    self._resumed.add(entry.name)
                    progress = replay.progress.get(entry.name)
                    self._resumed_rows[entry.name] = progress.rows if progress else 0
                else:
                    _quarantine(entry, quarantine)
        if not (self.path / _MANIFEST).exists():
            for pattern in ("edges-*.npz", _TABLES, f"*{_PARTIAL_SUFFIX}"):
                for entry in sorted(self.path.glob(pattern)):
                    _quarantine(entry, quarantine)
        if self._resumed:
            self._journal.note("resumed", trusted=sorted(self._resumed))

    def sealed_domains(self) -> set[str]:
        """Instances whose spools are sealed on disk (resumed ones included)."""
        with self._lock:
            return set(self._sealed)

    def resumed_domains(self) -> set[str]:
        """Sealed instances recovered from a previous run's journal."""
        with self._lock:
            return set(self._resumed)

    def resumed_rows(self) -> dict[str, int]:
        """Journal-recorded edge counts of the resumed instances."""
        with self._lock:
            return dict(self._resumed_rows)

    # -- streaming ingestion ---------------------------------------------------

    def _spool(self, domain: str) -> _EdgeSpool:
        if self._finalised:
            raise DatasetError("the graph writer has already been finalised")
        with self._lock:
            spool = self._spools.get(domain)
            if spool is None:
                if domain in self._sealed:
                    raise DatasetError(f"instance {domain!r} was already sealed")
                spool = self._spools[domain] = _EdgeSpool(domain)
            return spool

    def add_edges(self, domain: str, edges: Iterable[tuple[str, str]]) -> int:
        """Buffer ``(follower, followed)`` handle pairs observed on ``domain``."""
        added = self._spool(domain).add_edges(edges)
        self._journal.page(domain, added)
        return added

    def end_instance(self, domain: str) -> None:
        """Seal ``domain``'s spool (its crawl completed cleanly).

        An instance crawled without a single follower edge still seals
        (empty) so it appears in ``edges_collected`` with a zero count —
        the graph analogue of the corpus' ``(0, 0)`` observation.
        """
        if self._finalised:
            raise DatasetError("the graph writer has already been finalised")
        with self._lock:
            spool = self._spools.pop(domain, None)
            if spool is None:
                if domain in self._sealed:
                    return
                spool = _EdgeSpool(domain)
            target = self._spool_dir / domain
            self._sealed[domain] = target
        staging = target.with_name(target.name + _PARTIAL_SUFFIX)
        spool.seal(staging)
        os.replace(staging, target)
        self._journal.sealed(domain)

    def discard_instance(self, domain: str) -> None:
        """Drop everything buffered for ``domain`` (its crawl failed)."""
        with self._lock:
            self._spools.pop(domain, None)
            sealed = self._sealed.pop(domain, None)
            self._resumed.discard(domain)
        if sealed is not None:
            shutil.rmtree(sealed, ignore_errors=True)
        self._journal.discarded(domain)

    # -- the merge -------------------------------------------------------------

    def finalise(
        self,
        crawl_minute: int = 0,
        coverage: Mapping[str, Any] | None = None,
    ) -> "GraphStore":
        """Merge every sealed spool into edge shards + tables + manifest.

        Instances merge in sorted-domain order (the scheduler returns
        outcomes in that order too, so this reproduces the legacy
        ``GraphCrawlResult.edges`` stream); nodes intern first-seen,
        follower before followed, and self-loop edges are skipped with a
        count — exactly ``build_follower_graph``'s behaviour.  Returns
        the opened :class:`GraphStore`.
        """
        if self._finalised:
            raise DatasetError("the graph writer has already been finalised")
        with self._lock:
            if self._spools:
                unsealed = ", ".join(sorted(self._spools))
                raise DatasetError(
                    f"cannot finalise with open instance spools: {unsealed}"
                )
            self._finalised = True
        self._journal.note("finalise_started")

        nodes = _Interner()
        domains = _Interner()
        node_domains: list[int] = []

        def node_code(handle: str) -> int:
            known = nodes.code.get(handle)
            if known is None:
                known = nodes.intern_one(handle)
                node_domains.append(domains.intern_one(split_handle(handle)[1]))
            return known

        pending: dict[str, list[np.ndarray]] = {name: [] for name in EDGE_COLUMNS}
        pending_rows = 0
        shards: list[dict[str, object]] = []
        flushed_rows = 0

        def flush(everything: bool = False) -> None:
            nonlocal pending_rows, flushed_rows
            while pending_rows >= self.shard_size or (everything and pending_rows):
                take = min(self.shard_size, pending_rows)
                shard_arrays: dict[str, np.ndarray] = {}
                for name, chunks in pending.items():
                    merged = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
                    shard_arrays[name] = merged[:take]
                    pending[name] = [merged[take:]]
                file_name = f"edges-{len(shards):05d}.npz"
                _atomic_savez(self.path / file_name, **shard_arrays)
                shards.append(
                    {"file": file_name, "start": flushed_rows, "stop": flushed_rows + take}
                )
                flushed_rows += take
                pending_rows -= take

        edges_collected: dict[str, int] = {}
        self_loops = 0
        for domain in sorted(self._sealed):
            spool = _SpoolReader(self._sealed[domain], length_column="follower")
            n_rows = spool.n_rows
            edges_collected[domain] = n_rows
            for start in range(0, n_rows, _MERGE_CHUNK_ROWS):
                stop = min(start + _MERGE_CHUNK_ROWS, n_rows)
                followers = spool.strings("follower", start, stop)
                followed = spool.strings("followed", start, stop)
                src: list[int] = []
                dst: list[int] = []
                for follower, target in zip(followers, followed):
                    if follower == target:
                        self_loops += 1
                        continue
                    src.append(node_code(follower))
                    dst.append(node_code(target))
                if not src:
                    continue
                pending["follower_code"].append(np.asarray(src, dtype=np.int32))
                pending["followed_code"].append(np.asarray(dst, dtype=np.int32))
                pending_rows += len(src)
                flush()
        flush(everything=True)

        _atomic_savez(
            self.path / _TABLES,
            handles=_string_array(nodes.values),
            node_domains=np.asarray(node_domains, dtype=np.int32),
            domains=_string_array(domains.values),
        )
        manifest = {
            "schema": GRAPH_SCHEMA,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "shard_size": self.shard_size,
            "n_edges": flushed_rows,
            "n_nodes": len(nodes),
            "n_self_loops": self_loops,
            "crawl_minute": crawl_minute,
            "columns": list(EDGE_COLUMNS),
            "tables": _TABLES,
            "shards": shards,
            "edges_collected": {
                domain: int(count) for domain, count in sorted(edges_collected.items())
            },
        }
        if coverage is not None:
            manifest["coverage"] = dict(coverage)
        _atomic_write_text(
            self.path / _MANIFEST, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        shutil.rmtree(self._spool_dir, ignore_errors=True)
        self._journal.remove()
        return GraphStore(self.path)


class GraphStore:
    """Read-side handle on a columnar follower-graph directory."""

    def __init__(self, path: str | Path, *, mmap: bool = False) -> None:
        self.path = Path(path)
        self.mmap = bool(mmap)
        manifest_path = self.path / _MANIFEST
        if not manifest_path.exists():
            raise DatasetError(f"no graph manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise DatasetError(f"{manifest_path}: invalid JSON") from exc
        self.manifest = self._validated(manifest)
        self._tables: Any = None
        self._node_index: dict[str, int] | None = None

    # -- manifest validation ---------------------------------------------------

    def _validated(self, manifest: Any) -> dict[str, Any]:
        where = f"{self.path}: graph manifest"
        if not isinstance(manifest, dict):
            raise DatasetError(f"{where} must be a JSON object")
        for key, expected in _REQUIRED_KEYS.items():
            if key not in manifest:
                raise DatasetError(f"{where} is missing {key!r}")
            if not isinstance(manifest[key], expected):
                raise DatasetError(f"{where} field {key!r} has the wrong type")
        if manifest["schema"] != GRAPH_SCHEMA:
            raise DatasetError(
                f"{where} key 'schema': unsupported graph schema "
                f"{manifest['schema']!r} (expected {GRAPH_SCHEMA!r})"
            )
        if list(manifest["columns"]) != list(EDGE_COLUMNS):
            raise DatasetError(
                f"{where} key 'columns' declares an unexpected column set"
            )
        if not (self.path / manifest["tables"]).exists():
            raise DatasetError(
                f"{where} key 'tables': graph tables file "
                f"{manifest['tables']!r} is missing"
            )
        cursor = 0
        for entry in manifest["shards"]:
            if not isinstance(entry, dict) or {"file", "start", "stop"} - set(entry):
                raise DatasetError(
                    f"{where} key 'shards': graph shard entries need file/start/stop"
                )
            if entry["start"] != cursor or entry["stop"] <= entry["start"]:
                raise DatasetError(
                    f"{where} key 'shards': graph shard ranges must be "
                    f"contiguous from zero: "
                    f"[{entry['start']}, {entry['stop']}) after {cursor}"
                )
            if not (self.path / entry["file"]).exists():
                raise DatasetError(
                    f"{where} key 'shards': graph shard file "
                    f"{entry['file']!r} is missing"
                )
            cursor = entry["stop"]
        if cursor != manifest["n_edges"]:
            raise DatasetError(
                f"{where} key 'n_edges': graph shards cover {cursor} edges "
                f"but the manifest declares {manifest['n_edges']}"
            )
        return manifest

    # -- structure -------------------------------------------------------------

    @property
    def n_edges(self) -> int:
        return self.manifest["n_edges"]

    @property
    def n_nodes(self) -> int:
        return self.manifest["n_nodes"]

    @property
    def n_self_loops(self) -> int:
        return self.manifest["n_self_loops"]

    @property
    def crawl_minute(self) -> int:
        return self.manifest["crawl_minute"]

    @property
    def shard_size(self) -> int:
        return self.manifest["shard_size"]

    @property
    def n_shards(self) -> int:
        return len(self.manifest["shards"])

    def shard_bounds(self) -> list[tuple[int, int]]:
        """The ``[start, stop)`` edge range of every shard, in order."""
        return [(entry["start"], entry["stop"]) for entry in self.manifest["shards"]]

    def nbytes(self) -> int:
        """Total on-disk footprint (shards + tables + manifest)."""
        names = [entry["file"] for entry in self.manifest["shards"]]
        names += [self.manifest["tables"], _MANIFEST]
        return sum((self.path / name).stat().st_size for name in names)

    @property
    def coverage(self) -> dict[str, Any] | None:
        """The crawl-coverage accounting stamped at finalise (if any)."""
        return self.manifest.get("coverage")

    def content_digest(self) -> str:
        """SHA-256 over the graph *content*, independent of file bytes.

        The graph analogue of :meth:`CorpusStore.content_digest
        <repro.corpus.store.CorpusStore.content_digest>`: decompressed
        edge columns + node tables + the manifest minus volatile keys.
        """
        import hashlib

        from repro.corpus.store import digest_array, stable_manifest_digest

        digest = hashlib.sha256()
        for name in ("handles", "node_domains", "domains"):
            digest_array(digest, name, self._table(name))
        for index in range(self.n_shards):
            follower, followed = self.shard_edges(index)
            digest_array(digest, f"shard{index}:follower_code", follower)
            digest_array(digest, f"shard{index}:followed_code", followed)
        stable_manifest_digest(digest, self.manifest)
        return digest.hexdigest()

    @property
    def edges_collected(self) -> dict[str, int]:
        """Edges observed per cleanly-crawled instance (zeroes included)."""
        return {domain: int(n) for domain, n in self.manifest["edges_collected"].items()}

    # -- intern tables ---------------------------------------------------------

    def _table(self, name: str) -> np.ndarray:
        if self._tables is None:
            self._tables = open_npz(self.path / self.manifest["tables"], mmap=self.mmap)
        return self._tables[name]

    @property
    def handles(self) -> np.ndarray:
        """Every account handle in the graph (node intern order)."""
        return self._table("handles")

    @property
    def node_domain_codes(self) -> np.ndarray:
        """Per-node domain code into :attr:`domains` (node intern order)."""
        return self._table("node_domains")

    @property
    def domains(self) -> np.ndarray:
        """Every domain hosting at least one node (intern order)."""
        return self._table("domains")

    def node_index(self) -> dict[str, int]:
        """Handle → node code (built once, cached)."""
        if self._node_index is None:
            self._node_index = {
                handle: code for code, handle in enumerate(self.handles.tolist())
            }
        return self._node_index

    # -- shard access ----------------------------------------------------------

    def shard_edges(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """One shard's ``(follower_code, followed_code)`` columns."""
        entry = self.manifest["shards"][index]
        handle = open_npz(self.path / entry["file"], mmap=self.mmap)
        return handle["follower_code"], handle["followed_code"]

    def iter_edges(self) -> Iterator[tuple[tuple[int, int], np.ndarray, np.ndarray]]:
        """Stream ``((start, stop), follower_code, followed_code)`` per shard."""
        for index, bounds in enumerate(self.shard_bounds()):
            follower, followed = self.shard_edges(index)
            yield bounds, follower, followed

    def iter_edge_handles(self) -> Iterator[tuple[str, str]]:
        """Stream decoded ``(follower, followed)`` handle pairs, shard by shard.

        The compatibility escape hatch for networkx consumers
        (:meth:`GraphDataset.from_edges
        <repro.datasets.graphs.GraphDataset.from_edges>`); the scale
        paths use the integer columns directly.
        """
        handles = self.handles.tolist()
        for _, follower, followed in self.iter_edges():
            for src, dst in zip(follower.tolist(), followed.tolist()):
                yield handles[src], handles[dst]

    # -- columnar consumers ----------------------------------------------------

    def follower_domain_sets(self, authors: Sequence[str]) -> dict[str, set[str]]:
        """Author → follower-domain sets, straight from the edge columns.

        Equivalent to :func:`repro.engine.placement.follower_domain_sets`
        over the networkx graph of the same edges: keys keep
        first-appearance order over ``authors`` (duplicates collapse),
        authors absent from the graph get empty sets, and follower
        domains are *not* filtered against the author's own home (the
        subscription expansion drops those later).
        """
        result: dict[str, set[str]] = {author: set() for author in authors}
        if not result or self.n_nodes == 0:
            return result
        index = self.node_index()
        author_flag = np.zeros(self.n_nodes, dtype=bool)
        author_of_code: dict[int, str] = {}
        for author in result:
            code = index.get(author)
            if code is not None:
                author_flag[code] = True
                author_of_code[code] = author
        if not author_of_code:
            return result
        node_domains = self.node_domain_codes
        domain_values = self.domains.tolist()
        n_domains = max(1, len(domain_values))
        for _, follower, followed in self.iter_edges():
            mask = author_flag[followed]
            if not mask.any():
                continue
            keys = followed[mask].astype(np.int64) * n_domains + node_domains[
                follower[mask]
            ].astype(np.int64)
            for key in np.unique(keys).tolist():
                result[author_of_code[key // n_domains]].add(
                    domain_values[key % n_domains]
                )
        return result

    def users_per_instance(self) -> dict[str, int]:
        """Accounts observed in the graph per domain (node counts)."""
        counts = np.bincount(self.node_domain_codes, minlength=self.domains.shape[0])
        return {
            str(domain): int(count)
            for domain, count in zip(self.domains.tolist(), counts.tolist())
        }

    def federation_edge_counts(self) -> dict[tuple[str, str], int]:
        """Cross-instance follow counts ``(follower_domain, followed_domain)``.

        Same-domain edges are skipped, mirroring
        :func:`repro.datasets.graphs.build_federation_graph`.
        """
        domain_values = self.domains.tolist()
        n_domains = max(1, len(domain_values))
        node_domains = self.node_domain_codes
        totals: dict[int, int] = {}
        for _, follower, followed in self.iter_edges():
            src = node_domains[follower].astype(np.int64)
            dst = node_domains[followed].astype(np.int64)
            mask = src != dst
            if not mask.any():
                continue
            keys, counts = np.unique(src[mask] * n_domains + dst[mask], return_counts=True)
            for key, count in zip(keys.tolist(), counts.tolist()):
                totals[key] = totals.get(key, 0) + count
        return {
            (domain_values[key // n_domains], domain_values[key % n_domains]): count
            for key, count in totals.items()
        }
