"""The consolidated bench recorder rejects corrupt measurements."""

from __future__ import annotations

import json

import pytest

from benchmarks.perf_log import SCHEMA, _check_metrics, diff_documents, main, record


class TestMetricValidation:
    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="'p50_ms' is NaN"):
            _check_metrics({"p50_ms": float("nan")})

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="'qps' is negative"):
            _check_metrics({"qps": -1.5})

    def test_nested_keys_are_dotted(self):
        with pytest.raises(ValueError, match="'latency.p99_ms' is NaN"):
            _check_metrics({"latency": {"p99_ms": float("nan")}})

    def test_bools_strings_and_none_pass(self):
        _check_metrics({
            "hard_gates": False,
            "preset": "large",
            "note": None,
            "count": 0,
            "ratio": 3.5,
        })

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            _check_metrics({"n_queries": -1})


class TestRecord:
    def test_rejected_payload_writes_nothing(self, tmp_path):
        target = tmp_path / "bench.json"
        with pytest.raises(ValueError, match="NaN"):
            record("broken", {"p50_ms": float("nan")}, path=target)
        assert not target.exists()

    def test_valid_payload_merges_by_section(self, tmp_path):
        target = tmp_path / "bench.json"
        record("first", {"seconds": 1.5}, path=target)
        record("second", {"qps": 100.0}, path=target)
        record("first", {"seconds": 2.0}, path=target)
        document = json.loads(target.read_text())
        assert document["schema"] == SCHEMA
        assert set(document["entries"]) == {"first", "second"}
        assert document["entries"]["first"]["seconds"] == 2.0
        assert document["entries"]["first"]["cpu_count"] >= 1


class TestDiff:
    def write(self, tmp_path, name, sections) -> str:
        target = tmp_path / name
        for section, payload in sections.items():
            record(section, payload, path=target)
        return str(target)

    def test_changed_metrics_print_signed_deltas(self):
        old_doc = {"entries": {"engine": {"seconds": 2.0, "speedup": 3.0}}}
        new_doc = {"entries": {"engine": {"seconds": 1.0, "speedup": 3.0}}}
        lines = diff_documents(old_doc, new_doc)
        assert lines == ["engine.seconds: 2 -> 1 (-50.0%)"]

    def test_nested_metrics_and_one_sided_sections(self, tmp_path):
        old_doc = {"entries": {
            "engine": {"latency": {"p50_ms": 10.0}},
            "gone": {"x": 1},
        }}
        new_doc = {"entries": {
            "engine": {"latency": {"p50_ms": 12.0, "p99_ms": 20.0}},
            "fresh": {"y": 2},
        }}
        lines = diff_documents(old_doc, new_doc)
        assert "engine.latency.p50_ms: 10 -> 12 (+20.0%)" in lines
        assert "engine.latency.p99_ms: (absent) -> 20" in lines
        assert "fresh: only in NEW" in lines
        assert "gone: only in OLD" in lines

    def test_machine_context_is_not_a_regression(self, tmp_path):
        old = self.write(tmp_path, "old.json", {"engine": {"seconds": 1.0}})
        new = self.write(tmp_path, "new.json", {"engine": {"seconds": 1.0}})
        # recorded_at/python/machine context may differ; metrics do not
        old_doc = json.loads((tmp_path / "old.json").read_text())
        new_doc = json.loads((tmp_path / "new.json").read_text())
        new_doc["entries"]["engine"]["cpu_count"] = 999
        assert diff_documents(old_doc, new_doc) == []

    def test_cli_prints_deltas(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", {"engine": {"seconds": 4.0}})
        new = self.write(tmp_path, "new.json", {"engine": {"seconds": 5.0}})
        assert main(["--diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "engine.seconds: 4 -> 5 (+25.0%)" in out

    def test_cli_reports_no_changes(self, tmp_path, capsys):
        path = self.write(tmp_path, "same.json", {"engine": {"seconds": 4.0}})
        assert main(["--diff", path, path]) == 0
        assert "no metric changes" in capsys.readouterr().out
