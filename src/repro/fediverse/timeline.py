"""Timelines: ordered, pageable collections of toots.

Mastodon presents three timelines (home, local, federated).  The crawler
in the paper iterated over the *federated* timeline of every instance via
the public API, paging backwards with ``max_id``.  This module provides a
single :class:`Timeline` class with exactly that paging behaviour.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator

import numpy as np

from repro.fediverse.entities import Toot

#: Default page size used by the Mastodon public timeline API.
DEFAULT_PAGE_SIZE = 40


class Timeline:
    """An append-only, id-ordered collection of toots with API-style paging.

    Toots are kept sorted by ``toot_id`` (ids are allocated monotonically
    by the network, so id order equals chronological order).  Paging uses
    the Mastodon convention: ``page(max_id=x)`` returns the ``limit``
    newest toots whose id is strictly smaller than ``x``.
    """

    def __init__(self) -> None:
        self._toots: list[Toot] = []
        self._ids: set[int] = set()

    def __len__(self) -> int:
        return len(self._toots)

    def __iter__(self) -> Iterator[Toot]:
        return iter(self._toots)

    def __contains__(self, toot_id: int) -> bool:
        return toot_id in self._ids

    def add(self, toot: Toot) -> bool:
        """Insert a toot, keeping id order.  Returns ``False`` on duplicates."""
        if toot.toot_id in self._ids:
            return False
        self._ids.add(toot.toot_id)
        insort(self._toots, toot, key=lambda t: t.toot_id)
        return True

    def newest_id(self) -> int | None:
        """Return the largest toot id on the timeline, or ``None`` if empty."""
        return self._toots[-1].toot_id if self._toots else None

    def oldest_id(self) -> int | None:
        """Return the smallest toot id on the timeline, or ``None`` if empty."""
        return self._toots[0].toot_id if self._toots else None

    def page(
        self,
        max_id: int | None = None,
        limit: int = DEFAULT_PAGE_SIZE,
        public_only: bool = True,
    ) -> list[Toot]:
        """Return up to ``limit`` toots older than ``max_id``, newest first.

        With ``max_id=None`` the newest toots are returned.  Setting
        ``public_only`` filters out private toots, matching what the public
        timeline API exposes to an unauthenticated crawler.
        """
        if limit <= 0:
            return []
        # the list is id-sorted, so the page boundary is a binary search —
        # paging a whole timeline stays O(T log T), not O(T^2 / limit)
        if max_id is None:
            stop = len(self._toots)
        else:
            stop = bisect_left(self._toots, max_id, key=lambda t: t.toot_id)
        results: list[Toot] = []
        for index in range(stop - 1, -1, -1):
            toot = self._toots[index]
            if public_only and not toot.is_public:
                continue
            results.append(toot)
            if len(results) >= limit:
                break
        return results

    def all_toots(self, public_only: bool = False) -> list[Toot]:
        """Return every toot on the timeline in chronological order."""
        if not public_only:
            return list(self._toots)
        return [toot for toot in self._toots if toot.is_public]

    def count(self, public_only: bool = False) -> int:
        """Return the number of (optionally public) toots on the timeline."""
        if not public_only:
            return len(self._toots)
        return sum(1 for toot in self._toots if toot.is_public)


class ColumnarTimeline:
    """Paging over a timeline held as numpy columns instead of objects.

    The columnar scenario generator never builds :class:`Toot` objects,
    so its federated timelines are just an ascending ``toot_id`` array
    plus a public-visibility mask.  This class reproduces
    :meth:`Timeline.page` boundary behaviour — newest first, strictly
    below ``max_id``, public-only filtering — but returns *positions*
    into the backing columns; the scenario handle renders those rows
    into payloads on demand.
    """

    def __init__(self, toot_ids: np.ndarray, is_public: np.ndarray) -> None:
        self._ids = np.asarray(toot_ids, dtype=np.int64)
        if self._ids.size > 1 and not bool(np.all(self._ids[1:] > self._ids[:-1])):
            raise ValueError("columnar timelines require strictly ascending toot ids")
        self._public = np.asarray(is_public, dtype=bool)
        if self._public.shape != self._ids.shape:
            raise ValueError("toot_ids and is_public must align")
        # positions of public rows, ascending — a page is a reversed slice
        self._public_positions = np.flatnonzero(self._public)
        self._public_ids = self._ids[self._public_positions]

    def __len__(self) -> int:
        return int(self._ids.size)

    def newest_id(self) -> int | None:
        return int(self._ids[-1]) if self._ids.size else None

    def oldest_id(self) -> int | None:
        return int(self._ids[0]) if self._ids.size else None

    def count(self, public_only: bool = False) -> int:
        if not public_only:
            return int(self._ids.size)
        return int(self._public_positions.size)

    def page_positions(
        self,
        max_id: int | None = None,
        limit: int = DEFAULT_PAGE_SIZE,
        public_only: bool = True,
    ) -> np.ndarray:
        """Positions of up to ``limit`` rows older than ``max_id``, newest first."""
        if limit <= 0:
            return np.empty(0, dtype=np.int64)
        ids = self._public_ids if public_only else self._ids
        stop = ids.size if max_id is None else int(np.searchsorted(ids, max_id, side="left"))
        start = max(0, stop - limit)
        window = np.arange(stop - 1, start - 1, -1, dtype=np.int64)
        if public_only:
            return self._public_positions[window]
        return window

    def page_ids(
        self,
        max_id: int | None = None,
        limit: int = DEFAULT_PAGE_SIZE,
        public_only: bool = True,
    ) -> np.ndarray:
        """Toot ids of a page, newest first (mirrors :meth:`Timeline.page`)."""
        return self._ids[self.page_positions(max_id, limit, public_only)]
