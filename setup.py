"""Shim for legacy editable installs (``pip install -e . --no-use-pep517``).

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs are unavailable; this file lets ``setup.py
develop`` work instead.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
