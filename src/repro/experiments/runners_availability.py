"""Runners for the availability experiments (Figs. 7-10, Table 1).

Section 4.2's results: downtime distributions, popularity bins vs the
Twitter 2007 baseline, certificate-driven outages, continuous outage
durations and the AS-wide failure table.
"""

from __future__ import annotations

import numpy as np

from repro.core import availability
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import register_runner
from repro.experiments.results import ExperimentResult, ResultSeries, ResultTable
from repro.reporting import format_percentage

#: Minimum co-located instances for an AS-wide failure report (the paper
#: uses 8 at full 4,328-instance scale; 3 matches the benchmark scenarios).
TABLE1_MIN_INSTANCES = 3


@register_runner("fig7")
def run_fig7(ctx: ExperimentContext) -> ExperimentResult:
    cdf = availability.downtime_cdf(ctx.data.instances)
    headlines = availability.downtime_headlines(ctx.data.instances)
    impacts = availability.unavailability_impact(ctx.data.instances)
    correlation = availability.popularity_downtime_correlation(ctx.data.instances)
    users = [impact.users for impact in impacts]
    toots = [impact.toots for impact in impacts]
    xs, ys = cdf.series()
    return ExperimentResult.build(
        "fig7",
        "Instance downtime CDF",
        tables=[
            ResultTable.build(
                "Fig. 7 — downtime distribution",
                ["metric", "measured", "paper"],
                [
                    ["share with <5% downtime",
                     format_percentage(headlines["share_below_5pct_downtime"]), "~50%"],
                    ["share with >50% downtime",
                     format_percentage(headlines["share_above_50pct_downtime"]), "11%"],
                    ["mean downtime", format_percentage(headlines["mean_downtime"]), "10.95%"],
                    ["median downtime", format_percentage(headlines["median_downtime"]), "<5%"],
                ],
            ),
            ResultTable.build(
                "Fig. 7 — users/toots unavailable when a failing instance is down",
                ["quantity", "p50", "p95", "max"],
                [
                    ["users", int(np.percentile(users, 50)), int(np.percentile(users, 95)),
                     max(users)],
                    ["toots", int(np.percentile(toots, 50)), int(np.percentile(toots, 95)),
                     max(toots)],
                ],
            ),
        ],
        series=[
            ResultSeries.build("downtime_cdf", xs, ys,
                               x_label="downtime fraction", y_label="CDF"),
        ],
        scalars={
            "cdf_at_5pct_downtime": cdf.evaluate(0.05),
            "share_above_50pct_downtime": headlines["share_above_50pct_downtime"],
            "mean_downtime": headlines["mean_downtime"],
            "median_downtime": headlines["median_downtime"],
            "popularity_downtime_correlation": correlation,
            "impact_toots_p50": int(np.percentile(toots, 50)),
            "impact_toots_max": max(toots),
        },
    )


@register_runner("fig8")
def run_fig8(ctx: ExperimentContext) -> ExperimentResult:
    edges = availability.scaled_toot_bins(ctx.data.instances)
    bins = availability.daily_downtime_by_popularity(ctx.data.instances, bin_edges=edges)
    comparison = availability.twitter_downtime_comparison(
        ctx.data.instances, ctx.twitter.daily_downtime
    )
    return ExperimentResult.build(
        "fig8",
        "Per-day downtime by instance popularity vs Twitter",
        tables=[
            ResultTable.build(
                "Fig. 8 — per-day downtime by toot-count bin (scaled bin edges)",
                ["bin (toots)", "instances", "mean", "median", "p75"],
                [
                    [bin_.label, bin_.instance_count, format_percentage(bin_.stats.mean),
                     format_percentage(bin_.stats.median), format_percentage(bin_.stats.q3)]
                    for bin_ in bins
                ],
            ),
            ResultTable.build(
                "Fig. 8 — Mastodon vs Twitter (2007) daily downtime",
                ["system", "mean daily downtime", "paper"],
                [
                    ["Mastodon", format_percentage(comparison["mastodon_mean_downtime"]),
                     "10.95%"],
                    ["Twitter 2007", format_percentage(comparison["twitter_mean_downtime"]),
                     "1.25%"],
                    ["ratio", round(comparison["ratio"], 2), "~8.8x"],
                ],
            ),
        ],
        scalars={
            "bin_count": len(bins),
            "smallest_bin_mean_downtime": bins[0].stats.mean,
            "min_bin_mean_downtime": min(bin_.stats.mean for bin_ in bins),
            "mastodon_mean_downtime": comparison["mastodon_mean_downtime"],
            "twitter_mean_downtime": comparison["twitter_mean_downtime"],
            "downtime_ratio": comparison["ratio"],
        },
    )


@register_runner("fig9")
def run_fig9(ctx: ExperimentContext) -> ExperimentResult:
    footprint = availability.certificate_footprint(ctx.data.instances)
    window_days = ctx.network.clock.window_days
    expiry_series = availability.certificate_expiry_outages(ctx.network.certificates, window_days)
    outage_share = availability.certificate_outage_share(
        ctx.data.instances, ctx.network.certificates
    )
    worst_day = max(expiry_series, key=lambda day: expiry_series[day])
    busy_days = [(day, count) for day, count in expiry_series.items() if count > 0]
    return ExperimentResult.build(
        "fig9",
        "Certificate authorities and expiry outages",
        tables=[
            ResultTable.build(
                "Fig. 9(a) — certificate authority footprint",
                ["authority", "share of instances"],
                [[authority, format_percentage(share)] for authority, share in footprint.items()],
            ),
            ResultTable.build(
                "Fig. 9(b) — instances with a lapsed certificate per day (busy days)",
                ["day", "instances lapsed"],
                busy_days[:15],
            ),
        ],
        series=[
            ResultSeries.build(
                "lapsed_certificates",
                list(expiry_series.keys()),
                list(expiry_series.values()),
                x_label="day",
                y_label="instances lapsed",
            )
        ],
        scalars={
            "lets_encrypt_share": footprint["Let's Encrypt"],
            "max_footprint_share": max(footprint.values()),
            "worst_expiry_day": worst_day,
            "worst_expiry_day_count": expiry_series[worst_day],
            "certificate_outage_share": outage_share,
        },
    )


@register_runner("fig10")
def run_fig10(ctx: ExperimentContext) -> ExperimentResult:
    report = availability.outage_durations(ctx.data.instances, min_days=1.0)
    durations = report.durations_days
    return ExperimentResult.build(
        "fig10",
        "Continuous outage durations",
        tables=[
            ResultTable.build(
                "Fig. 10 — continuous outage durations",
                ["metric", "measured", "paper"],
                [
                    ["instances down at least once",
                     format_percentage(report.share_of_instances_down_at_least_once), "98%"],
                    ["instances down >= 1 day",
                     format_percentage(report.share_down_at_least_one_day), "~25%"],
                    ["longest outage (days)",
                     round(max(durations), 1) if durations else 0, ">30"],
                    ["median long outage (days)",
                     round(float(np.median(durations)), 1) if durations else 0, "-"],
                    ["users affected by >=1-day outages", report.affected_users, "-"],
                    ["toots affected by >=1-day outages", report.affected_toots, "-"],
                ],
            )
        ],
        scalars={
            "share_down_at_least_once": report.share_of_instances_down_at_least_once,
            "share_down_at_least_one_day": report.share_down_at_least_one_day,
            "longest_outage_days": max(durations) if durations else 0.0,
            "affected_users": report.affected_users,
            "affected_toots": report.affected_toots,
        },
    )


@register_runner("table1")
def run_table1(ctx: ExperimentContext) -> ExperimentResult:
    reports = availability.detect_as_failures(
        ctx.data.instances, geo=ctx.network.geo, min_instances=TABLE1_MIN_INSTANCES
    )
    return ExperimentResult.build(
        "table1",
        "AS-wide failures",
        tables=[
            ResultTable.build(
                "Table 1 — AS failures (all co-located instances down simultaneously)",
                ["ASN", "Instances", "Failures", "IPs", "Users", "Toots",
                 "Org.", "Rank", "Peers"],
                [
                    [f"AS{r.asn}", r.instances, r.failures, r.ips, r.users, r.toots,
                     r.organisation, r.caida_rank, r.peers]
                    for r in reports
                ],
            )
        ],
        scalars={
            "failure_report_count": len(reports),
            "min_instances_threshold": TABLE1_MIN_INSTANCES,
            "min_report_instances": min((r.instances for r in reports), default=0),
            "min_report_failures": min((r.failures for r in reports), default=0),
            "max_report_toots": max((r.toots for r in reports), default=0),
        },
    )
