"""Tests for handle pseudonymisation."""

from __future__ import annotations

from repro.crawler.graph_crawler import FollowEdgeRecord
from repro.crawler.toot_crawler import TootRecord
from repro.datasets.anonymise import Anonymiser


def make_record() -> TootRecord:
    return TootRecord(
        toot_id=1,
        url="https://a.example/@alice/1",
        account="alice@a.example",
        author_domain="a.example",
        collected_from="b.example",
        created_at=10,
    )


class TestPseudonyms:
    def test_deterministic_for_same_salt(self):
        anonymiser = Anonymiser(salt="fixed")
        assert anonymiser.pseudonym("alice@a.example") == anonymiser.pseudonym("alice@a.example")

    def test_different_salt_differs(self):
        first = Anonymiser(salt="one").pseudonym("alice@a.example")
        second = Anonymiser(salt="two").pseudonym("alice@a.example")
        assert first != second

    def test_domain_preserved_username_hidden(self):
        pseudonym = Anonymiser(salt="s").pseudonym("alice@a.example")
        assert pseudonym.endswith("@a.example")
        assert "alice" not in pseudonym

    def test_distinct_users_get_distinct_pseudonyms(self):
        anonymiser = Anonymiser(salt="s")
        assert anonymiser.pseudonym("alice@a.example") != anonymiser.pseudonym("bob@a.example")

    def test_random_salt_generated(self):
        anonymiser = Anonymiser()
        assert len(anonymiser.salt) >= 16

    def test_handle_without_domain(self):
        token = Anonymiser(salt="s").pseudonym("justalocalname")
        assert "@" not in token


class TestRecordAnonymisation:
    def test_toot_record(self):
        anonymiser = Anonymiser(salt="s")
        record = anonymiser.anonymise_toot(make_record())
        assert record.account != "alice@a.example"
        assert record.account.endswith("@a.example")
        assert "alice" not in record.url
        assert record.author_domain == "a.example"
        assert record.toot_id == 1

    def test_toots_batch(self):
        anonymiser = Anonymiser(salt="s")
        records = anonymiser.anonymise_toots([make_record(), make_record()])
        assert records[0].account == records[1].account

    def test_edges(self):
        anonymiser = Anonymiser(salt="s")
        edge = anonymiser.anonymise_edge(
            FollowEdgeRecord(follower="alice@a.example", followed="bob@b.example")
        )
        assert edge.follower.endswith("@a.example")
        assert edge.followed.endswith("@b.example")
        assert "alice" not in edge.follower
        batch = anonymiser.anonymise_edges(
            [FollowEdgeRecord(follower="alice@a.example", followed="bob@b.example")]
        )
        assert batch[0] == edge

    def test_consistency_between_toots_and_edges(self):
        anonymiser = Anonymiser(salt="s")
        toot = anonymiser.anonymise_toot(make_record())
        edge = anonymiser.anonymise_edge(
            FollowEdgeRecord(follower="alice@a.example", followed="bob@b.example")
        )
        assert toot.account == edge.follower
