"""Toot replication strategies and content availability (Figs. 15-16).

The paper asks how many toots survive instance or AS failures under three
placement strategies:

* **no replication** — every toot lives only on its home instance;
* **subscription replication** — a toot is also stored (and globally
  indexed) on every instance hosting a follower of its author, i.e. the
  instances that already receive it through federation;
* **random replication** — a toot is copied onto ``n`` random instances.

A toot is considered available as long as at least one instance holding a
copy is still up (the paper assumes a global index such as a DHT to find
replicas).

Placement construction and availability curves are both computed by the
sparse-matrix failure-simulation engine: the vectorised builders in
:mod:`repro.engine.placement` produce an integer-coded
:class:`~repro.engine.placement.PlacementArrays` backend (one batched
draw for every toot instead of one ``rng.choice`` per toot), the
placement map becomes a toot×instance CSR incidence matrix — memoised
per map, see :meth:`repro.engine.incidence.TootIncidence.from_placements`
— and each removal schedule is one batched reduction.  The pure-Python
loops are kept as the ``_*_python`` reference implementations the
differential suite checks the engine against.  Note the batched draw
consumes the RNG stream in a different order, so seeded *random*
placements legitimately differ from :func:`_random_replication_python`
toot-by-toot while staying deterministic per seed and distributionally
equivalent.  For parameter sweeps (many strategies × rankings × seeds)
use :func:`repro.engine.run_availability_sweep`, which reuses one
incidence matrix per strategy across every failure schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.datasets.graphs import GraphDataset
from repro.datasets.toots import TootsDataset


class PlacementMap:
    """For every toot (by URL), the set of instances holding a copy.

    Two interchangeable backends: the legacy dict-of-frozensets
    (``placements``) and the engine's integer-coded
    :class:`~repro.engine.placement.PlacementArrays` (``arrays``).  The
    vectorised builders hand over only the arrays; the dict view is
    materialised lazily on first access, so the fast paths (incidence
    construction, replica statistics) never pay for it.

    Maps hash by object identity — the engine memoises one incidence
    matrix per map — so treat a map as immutable once built.
    """

    def __init__(
        self,
        strategy: str,
        placements: Mapping[str, frozenset[str]] | None = None,
        *,
        arrays: "PlacementArrays | None" = None,
    ) -> None:
        if placements is None and arrays is None:
            raise AnalysisError(
                "a placement map needs a placements dict or an arrays backend"
            )
        self.strategy = strategy
        self.arrays = arrays
        self._placements = dict(placements) if placements is not None else None

    @property
    def placements(self) -> dict[str, frozenset[str]]:
        """The dict-of-frozensets view (materialised lazily from arrays)."""
        if self._placements is None:
            self._placements = self.arrays.to_placement_dict()
        return self._placements

    def __repr__(self) -> str:
        backend = "dict" if self.arrays is None else "arrays"
        return (
            f"PlacementMap(strategy={self.strategy!r}, toots={len(self)}, "
            f"backend={backend})"
        )

    def __len__(self) -> int:
        if self._placements is not None:
            return len(self._placements)
        return self.arrays.n_toots

    def replica_counts(self) -> list[int]:
        """Number of copies *beyond the home instance* for every toot."""
        return self._replica_count_array().tolist()

    def _replica_count_array(self) -> np.ndarray:
        if self.arrays is not None:
            return self.arrays.replica_counts()
        return np.asarray(
            [max(0, len(holders) - 1) for holders in self.placements.values()],
            dtype=np.int64,
        )

    def replication_summary(self) -> dict[str, float]:
        """Share of toots with no replica and with more than ten replicas.

        The paper reports that under subscription replication 9.7% of
        toots have no replica while 23% have more than ten.
        """
        counts = self._replica_count_array()
        if counts.size == 0:
            raise AnalysisError("the placement map is empty")
        return {
            "mean_replicas": float(np.mean(counts)),
            "share_without_replica": int((counts == 0).sum()) / counts.size,
            "share_with_more_than_10": int((counts > 10).sum()) / counts.size,
        }


def no_replication(toots: TootsDataset) -> PlacementMap:
    """Each toot is stored only on its author's home instance."""
    from repro.engine.placement import build_no_replication

    arrays = build_no_replication(toots)
    return PlacementMap(strategy=arrays.strategy, arrays=arrays)


def subscription_replication(toots: TootsDataset, graphs: GraphDataset) -> PlacementMap:
    """Each toot is replicated to the instances hosting the author's followers.

    Dispatches to the vectorised builder (one pass over the follower
    graph, array expansion per toot); the original per-record loop is
    retained as :func:`_subscription_replication_python` and the
    differential suite holds the two to identical placements.
    """
    from repro.engine.placement import build_subscription_replication

    arrays = build_subscription_replication(toots, graphs)
    return PlacementMap(strategy=arrays.strategy, arrays=arrays)


def random_replication(
    toots: TootsDataset,
    candidate_domains: Sequence[str],
    n_replicas: int,
    seed: int = 0,
    weights: Mapping[str, float] | None = None,
) -> PlacementMap:
    """Each toot is replicated onto ``n_replicas`` random instances.

    ``weights`` optionally biases the replica placement (e.g. towards
    instances with more storage capacity) — the resource-weighted variant
    discussed at the end of Section 5.2.  Placement is one batched draw
    for all toots (Gumbel top-k for the weighted case); see
    :func:`repro.engine.placement.build_random_replication`.  Seeded
    output is deterministic but differs from the retained
    :func:`_random_replication_python` loop, which consumes the RNG
    stream one toot at a time.
    """
    from repro.engine.placement import build_random_replication

    arrays = build_random_replication(
        toots, candidate_domains, n_replicas, seed=seed, weights=weights
    )
    return PlacementMap(strategy=arrays.strategy, arrays=arrays)


# -- retained pure-Python reference implementations ------------------------------


def _no_replication_python(toots: TootsDataset) -> PlacementMap:
    """The original dict comprehension — reference for the differential suite."""
    placements = {
        record.url: frozenset({record.author_domain}) for record in toots.records()
    }
    return PlacementMap(strategy="no-replication", placements=placements)


def _subscription_replication_python(
    toots: TootsDataset, graphs: GraphDataset
) -> PlacementMap:
    """The original per-record loop — reference for the differential suite."""
    follower_domains: dict[str, frozenset[str]] = {}
    follower_graph = graphs.follower_graph
    placements: dict[str, frozenset[str]] = {}
    for record in toots.records():
        author = record.account
        if author not in follower_domains:
            domains: set[str] = set()
            if follower_graph.has_node(author):
                for follower, _ in follower_graph.in_edges(author):
                    domain = follower_graph.nodes[follower].get("domain")
                    if domain:
                        domains.add(domain)
            follower_domains[author] = frozenset(domains)
        placements[record.url] = frozenset({record.author_domain}) | follower_domains[author]
    return PlacementMap(strategy="subscription-replication", placements=placements)


def _random_replication_python(
    toots: TootsDataset,
    candidate_domains: Sequence[str],
    n_replicas: int,
    seed: int = 0,
    weights: Mapping[str, float] | None = None,
) -> PlacementMap:
    """The original one-``rng.choice``-per-toot loop — reference implementation.

    The statistical half of the differential suite holds the batched
    builder to the same replica-count distribution as this loop.
    """
    if n_replicas < 0:
        raise AnalysisError("the number of replicas cannot be negative")
    candidates = sorted(set(candidate_domains))
    if not candidates:
        raise AnalysisError("no candidate instances to replicate onto")
    rng = np.random.default_rng(seed)
    k = min(n_replicas, len(candidates))
    probabilities: np.ndarray | None = None
    if weights is not None:
        from repro.engine.placement import _normalised_log_weights

        # shares the vectorised path's validation (positive mass, enough
        # positive-weight candidates for k distinct picks)
        probabilities = np.exp(_normalised_log_weights(candidates, weights, k))

    placements: dict[str, frozenset[str]] = {}
    for record in toots.records():
        if k == 0:
            placements[record.url] = frozenset({record.author_domain})
            continue
        picks = rng.choice(len(candidates), size=k, replace=False, p=probabilities)
        replicas = {candidates[int(i)] for i in picks}
        placements[record.url] = frozenset({record.author_domain}) | replicas
    label = f"random-replication-n{n_replicas}"
    if weights is not None:
        label += "-weighted"
    return PlacementMap(strategy=label, placements=placements)


# -- availability under failures -------------------------------------------------


@dataclass(frozen=True, slots=True)
class AvailabilityPoint:
    """Toot availability after removing the top-N entities."""

    removed: int
    availability: float


def _availability_curve(
    placements: PlacementMap,
    removal_index: Mapping[str, int],
    steps: int,
) -> list[AvailabilityPoint]:
    """Compute the availability curve given per-domain removal steps.

    ``removal_index[d] = k`` means domain ``d`` disappears at step ``k``
    (1-based); domains absent from the mapping never disappear.  A toot
    becomes unavailable at the step when its *last* holding domain is
    removed.

    Dispatches to the vectorised engine kernels; the legacy loop lives on
    as :func:`_availability_curve_python` for differential testing.
    """
    from repro.engine.incidence import TootIncidence
    from repro.engine.kernels import availability_curve_array

    incidence = TootIncidence.from_placements(placements)
    curve = availability_curve_array(
        incidence.matrix, incidence.removal_vector(removal_index, steps), steps
    )
    return [
        AvailabilityPoint(removed=step, availability=float(value))
        for step, value in enumerate(curve)
    ]


def _availability_curve_python(
    placements: PlacementMap,
    removal_index: Mapping[str, int],
    steps: int,
) -> list[AvailabilityPoint]:
    """The original per-toot loop — the engine's reference implementation."""
    total = len(placements.placements)
    if total == 0:
        raise AnalysisError("the placement map is empty")
    losses_at_step = np.zeros(steps + 1, dtype=int)
    for holders in placements.placements.values():
        kill_step = 0
        for domain in holders:
            index = removal_index.get(domain)
            if index is None or index > steps:
                kill_step = None
                break
            kill_step = max(kill_step, index)
        if kill_step is not None and kill_step > 0:
            losses_at_step[kill_step] += 1
    curve: list[AvailabilityPoint] = []
    lost = 0
    for step in range(steps + 1):
        lost += int(losses_at_step[step])
        curve.append(AvailabilityPoint(removed=step, availability=1.0 - lost / total))
    return curve


def availability_under_instance_removal(
    placements: PlacementMap,
    instance_ranking: Sequence[str],
    steps: int = 100,
) -> list[AvailabilityPoint]:
    """Toot availability while removing the top-N instances (Figs. 15b/d, 16)."""
    from repro.engine.failures import InstanceRemoval
    from repro.engine.sweep import availability_curve

    return availability_curve(placements, InstanceRemoval(instance_ranking, steps=steps))


def availability_under_as_removal(
    placements: PlacementMap,
    asn_of_instance: Mapping[str, int],
    as_ranking: Sequence[int],
    steps: int = 25,
) -> list[AvailabilityPoint]:
    """Toot availability while removing the top-N ASes (Figs. 15a/c, 16)."""
    from repro.engine.failures import ASRemoval
    from repro.engine.sweep import availability_curve

    return availability_curve(placements, ASRemoval(asn_of_instance, as_ranking, steps=steps))


def availability_at(curve: Iterable[AvailabilityPoint], removed: int) -> float:
    """Availability after exactly ``removed`` removals (convenience accessor)."""
    if removed < 0:
        raise AnalysisError(
            f"the number of removed entities cannot be negative (got {removed})"
        )
    best = None
    empty = True
    for point in curve:
        empty = False
        if point.removed <= removed:
            best = point
    if best is None:
        if empty:
            raise AnalysisError("the availability curve is empty")
        raise AnalysisError(
            f"the availability curve has no point at or before removed={removed}"
        )
    return best.availability


def compare_strategies(
    curves: Mapping[str, Sequence[AvailabilityPoint]], removed: int
) -> dict[str, float]:
    """Availability of every strategy after ``removed`` removals (Fig. 16)."""
    return {name: availability_at(curve, removed) for name, curve in curves.items()}
