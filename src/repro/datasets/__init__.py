"""The paper's three datasets (instances, toots, graphs) plus baselines.

Each dataset class wraps the raw crawler output with the indexes and
derived measures the analysis layer needs, mirroring how the paper joins
its instance snapshots with Maxmind/CAIDA metadata and its toot crawl
with the follower graphs.
"""

from repro.datasets.instances import InstanceMetadata, InstancesDataset
from repro.datasets.toots import TootsDataset
from repro.datasets.graphs import (
    GraphDataset,
    build_federation_graph,
    build_follower_graph,
)
from repro.datasets.twitter import TwitterBaselines, build_twitter_follower_graph, twitter_daily_downtime
from repro.datasets.io import (
    read_jsonl,
    write_jsonl,
    load_edges,
    load_snapshots,
    load_toot_records,
    save_edges,
    save_snapshots,
    save_toot_records,
)
from repro.datasets.anonymise import Anonymiser

__all__ = [
    "Anonymiser",
    "GraphDataset",
    "InstanceMetadata",
    "InstancesDataset",
    "TootsDataset",
    "TwitterBaselines",
    "build_federation_graph",
    "build_follower_graph",
    "build_twitter_follower_graph",
    "load_edges",
    "load_snapshots",
    "load_toot_records",
    "read_jsonl",
    "save_edges",
    "save_snapshots",
    "save_toot_records",
    "twitter_daily_downtime",
    "write_jsonl",
]
