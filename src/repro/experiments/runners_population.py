"""Runners for the population/centralisation experiments (Figs. 1-6, headlines).

Each runner reproduces one figure of Section 4 (growth, registrations,
categories, activities, hosting, federation flows) from the shared
:class:`~repro.experiments.context.ExperimentContext` pipeline and
returns a structured :class:`~repro.experiments.results.ExperimentResult`.
"""

from __future__ import annotations

from repro.core import categories, centralisation, growth, hosting
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import register_runner
from repro.experiments.results import ExperimentResult, ResultSeries, ResultTable
from repro.reporting import format_percentage


@register_runner("fig1")
def run_fig1(ctx: ExperimentContext) -> ExperimentResult:
    series = growth.growth_timeseries(ctx.data.instances)
    summary = growth.growth_summary(ctx.data.instances)
    sampled = series[:: max(1, len(series) // 12)]
    days = [point.day for point in series]
    return ExperimentResult.build(
        "fig1",
        "Instances, users and toots over time",
        tables=[
            ResultTable.build(
                "Fig. 1 — population growth (sampled days)",
                ["day", "instances", "users", "toots"],
                [[p.day, p.instances, p.users, p.toots] for p in sampled],
            ),
            ResultTable.build(
                "Fig. 1 — growth summary",
                ["metric", "value"],
                [[key, round(value, 3)] for key, value in summary.items()],
            ),
        ],
        series=[
            ResultSeries.build(name, days, [getattr(p, name) for p in series],
                               x_label="day", y_label=name)
            for name in ("instances", "users", "toots")
        ],
        scalars={
            "initial_instances": series[0].instances,
            "final_instances": series[-1].instances,
            "initial_users": series[0].users,
            "final_users": series[-1].users,
            "final_toots": series[-1].toots,
        },
    )


@register_runner("fig2")
def run_fig2(ctx: ExperimentContext) -> ExperimentResult:
    count_cdfs = centralisation.per_instance_count_cdfs(ctx.data.instances)
    split = centralisation.registration_split(ctx.data.instances)
    activity_cdfs = centralisation.activity_level_cdfs(ctx.data.instances)
    return ExperimentResult.build(
        "fig2",
        "Open vs closed registrations",
        tables=[
            ResultTable.build(
                "Fig. 2(a) — users/toots per instance by registration policy",
                ["series", "instances", "median", "p95"],
                [
                    [name, len(cdf), round(cdf.quantile(0.5), 1), round(cdf.quantile(0.95), 1)]
                    for name, cdf in sorted(count_cdfs.items())
                ],
            ),
            ResultTable.build(
                "Fig. 2(b) — share of instances/users/toots by registration policy",
                ["registration", "instances", "users", "toots", "toots per user"],
                [
                    ["open", split.open_instances, split.open_users, split.open_toots,
                     round(split.toots_per_user_open, 1)],
                    ["closed", split.closed_instances, split.closed_users, split.closed_toots,
                     round(split.toots_per_user_closed, 1)],
                ],
            ),
            ResultTable.build(
                "Fig. 2(c) — per-instance activity levels (max weekly active share)",
                ["group", "median", "p90"],
                [
                    [name, round(cdf.quantile(0.5), 2), round(cdf.quantile(0.9), 2)]
                    for name, cdf in sorted(activity_cdfs.items())
                ],
            ),
        ],
        scalars={
            "users_open_median": count_cdfs["users_open"].quantile(0.5),
            "users_closed_median": count_cdfs["users_closed"].quantile(0.5),
            "open_user_share": split.open_user_share,
            "mean_users_open": split.mean_users_open,
            "mean_users_closed": split.mean_users_closed,
            "toots_per_user_open": split.toots_per_user_open,
            "toots_per_user_closed": split.toots_per_user_closed,
            "activity_median_open": activity_cdfs["open"].quantile(0.5),
            "activity_median_closed": activity_cdfs["closed"].quantile(0.5),
        },
    )


@register_runner("fig3")
def run_fig3(ctx: ExperimentContext) -> ExperimentResult:
    shares = categories.category_breakdown(ctx.data.instances)
    coverage = categories.tagging_coverage(ctx.data.instances)
    by_category = {share.category: share for share in shares}
    scalars: dict[str, object] = {
        "category_count": len(shares),
        "largest_instance_share": shares[0].instance_share,
        "smallest_instance_share": shares[-1].instance_share,
        "instance_coverage": coverage["instance_coverage"],
    }
    if "adult" in by_category:
        scalars["adult_instance_share"] = by_category["adult"].instance_share
        scalars["adult_user_share"] = by_category["adult"].user_share
    if "tech" in by_category:
        scalars["tech_instance_share"] = by_category["tech"].instance_share
    return ExperimentResult.build(
        "fig3",
        "Instance categories",
        tables=[
            ResultTable.build(
                "Fig. 3 — category shares (of the tagged subset)",
                ["category", "instances", "toots", "users"],
                [
                    [s.category, format_percentage(s.instance_share),
                     format_percentage(s.toot_share), format_percentage(s.user_share)]
                    for s in shares
                ],
            ),
            ResultTable.build(
                "Fig. 3 — tagging coverage",
                ["metric", "value"],
                [[key, round(value, 3)] for key, value in coverage.items()],
            ),
        ],
        scalars=scalars,
    )


@register_runner("fig4")
def run_fig4(ctx: ExperimentContext) -> ExperimentResult:
    shares = categories.activity_breakdown(ctx.data.instances)
    coverage = categories.policy_coverage(ctx.data.instances)
    by_prohibited = sorted(shares, key=lambda s: s.prohibit_instance_share, reverse=True)
    spam = next((share for share in shares if share.activity == "spam"), None)
    scalars: dict[str, object] = {
        "activity_count": len(shares),
        "allow_all_share": coverage["allow_all_share"],
    }
    if spam is not None:
        scalars["spam_prohibit_share"] = spam.prohibit_instance_share
        scalars["spam_prohibit_rank"] = by_prohibited.index(spam) + 1
    return ExperimentResult.build(
        "fig4",
        "Prohibited and allowed activities",
        tables=[
            ResultTable.build(
                "Fig. 4 — prohibited/allowed activities",
                ["activity", "prohibited (instances)", "allowed (instances)",
                 "allowed (users)", "allowed (toots)"],
                [
                    [s.activity, format_percentage(s.prohibit_instance_share),
                     format_percentage(s.allow_instance_share),
                     format_percentage(s.allow_user_share),
                     format_percentage(s.allow_toot_share)]
                    for s in shares
                ],
            ),
            ResultTable.build(
                "Fig. 4 — activity-policy coverage",
                ["metric", "value"],
                [[key, round(value, 3)] for key, value in coverage.items()],
            ),
        ],
        scalars=scalars,
    )


@register_runner("fig5")
def run_fig5(ctx: ExperimentContext) -> ExperimentResult:
    countries = hosting.country_breakdown(ctx.data.instances, top=5)
    ases = hosting.asn_breakdown(ctx.data.instances, top=5)
    top3_as = hosting.top_as_user_share(ctx.data.instances, top=3)

    def share_rows(shares):
        return [
            [s.key, format_percentage(s.instance_share),
             format_percentage(s.toot_share), format_percentage(s.user_share)]
            for s in shares
        ]

    return ExperimentResult.build(
        "fig5",
        "Hosting countries and ASes",
        tables=[
            ResultTable.build(
                "Fig. 5 (top) — top-5 countries",
                ["country", "instances", "toots", "users"],
                share_rows(countries),
            ),
            ResultTable.build(
                "Fig. 5 (bottom) — top-5 ASes",
                ["AS", "instances", "toots", "users"],
                share_rows(ases),
            ),
        ],
        scalars={
            "top_country": countries[0].key,
            "top_country_instance_share": countries[0].instance_share,
            "top_country_user_share": countries[0].user_share,
            "top_as_instance_share": ases[0].instance_share,
            "top_as_user_share": ases[0].user_share,
            "top3_as_user_share": top3_as,
        },
    )


@register_runner("fig6")
def run_fig6(ctx: ExperimentContext) -> ExperimentResult:
    flows = hosting.country_federation_flows(
        ctx.data.graphs.federation_graph, ctx.data.instances, top_sources=5
    )
    metrics = hosting.federation_homophily(ctx.data.graphs.federation_graph, ctx.data.instances)
    return ExperimentResult.build(
        "fig6",
        "Cross-country federation flows",
        tables=[
            ResultTable.build(
                "Fig. 6 — cross-country federation flows (top sources)",
                ["from", "to", "links", "share of source"],
                [
                    [flow.source_country, flow.target_country, flow.links,
                     format_percentage(flow.share_of_source)]
                    for flow in flows[:20]
                ],
            ),
            ResultTable.build(
                "Fig. 6 — homophily summary",
                ["metric", "value", "paper"],
                [
                    ["same-country link share",
                     format_percentage(metrics["same_country_share"]), "32%"],
                    ["top-5 country link share",
                     format_percentage(metrics["top5_country_link_share"]), "93.7%"],
                    ["total federated links", int(metrics["total_links"]), "-"],
                ],
            ),
        ],
        scalars={
            "flow_count": len(flows),
            "same_country_share": metrics["same_country_share"],
            "top5_country_link_share": metrics["top5_country_link_share"],
            "total_links": int(metrics["total_links"]),
        },
    )


@register_runner("headline")
def run_headline(ctx: ExperimentContext) -> ExperimentResult:
    metrics = centralisation.concentration_metrics(ctx.data.instances)
    half_fraction = centralisation.smallest_fraction_hosting_share(ctx.data.instances, share=0.5)
    return ExperimentResult.build(
        "headline",
        "Section 4.1 concentration headlines",
        tables=[
            ResultTable.build(
                "Section 4.1 — concentration headlines",
                ["metric", "measured", "paper"],
                [
                    ["top 5% instances: user share",
                     format_percentage(metrics["top5pct_user_share"]), "90.6%"],
                    ["top 5% instances: toot share",
                     format_percentage(metrics["top5pct_toot_share"]), "94.8%"],
                    ["top 10% instances: user share",
                     format_percentage(metrics["top10pct_user_share"]), ">=50%"],
                    ["instances needed for 50% of users",
                     format_percentage(half_fraction), "<=10%"],
                    ["user Gini coefficient", round(metrics["user_gini"], 2), "-"],
                    ["toot Gini coefficient", round(metrics["toot_gini"], 2), "-"],
                ],
            )
        ],
        scalars={
            "top5pct_user_share": metrics["top5pct_user_share"],
            "top5pct_toot_share": metrics["top5pct_toot_share"],
            "top10pct_user_share": metrics["top10pct_user_share"],
            "half_user_fraction": half_fraction,
            "user_gini": metrics["user_gini"],
            "toot_gini": metrics["toot_gini"],
        },
    )
