"""Tests for the per-instance server behaviour."""

from __future__ import annotations

import pytest

from repro.errors import RegistrationClosedError, SimulationError, UnknownUserError
from repro.fediverse.entities import (
    InstanceDescriptor,
    RegistrationPolicy,
    Toot,
    UserRef,
    Visibility,
)
from repro.fediverse.instance import FOLLOWERS_PAGE_SIZE, InstanceServer
from repro.simtime import MINUTES_PER_DAY


def make_instance(registration: RegistrationPolicy = RegistrationPolicy.OPEN) -> InstanceServer:
    return InstanceServer(
        InstanceDescriptor(domain="alpha.example", registration=registration)
    )


class TestRegistration:
    def test_register_and_lookup(self):
        instance = make_instance()
        user = instance.register_user("alice", created_at=5)
        assert instance.has_user("alice")
        assert instance.get_user("alice") is user
        assert user.ref.domain == "alpha.example"

    def test_duplicate_username_rejected(self):
        instance = make_instance()
        instance.register_user("alice")
        with pytest.raises(SimulationError):
            instance.register_user("alice")

    def test_closed_instance_requires_invite(self):
        instance = make_instance(RegistrationPolicy.CLOSED)
        with pytest.raises(RegistrationClosedError):
            instance.register_user("alice")
        instance.register_user("alice", invited=True)
        assert instance.has_user("alice")

    def test_unknown_user_lookup(self):
        instance = make_instance()
        with pytest.raises(UnknownUserError):
            instance.get_user("ghost")


class TestTooting:
    def test_post_toot_lands_on_all_timelines(self):
        instance = make_instance()
        instance.register_user("alice")
        toot = instance.post_toot("alice", toot_id=1, created_at=10)
        assert toot.toot_id in instance.toots
        assert len(instance.local_timeline) == 1
        assert len(instance.federated_timeline) == 1
        assert len(instance.home_timelines["alice"]) == 1
        assert instance.counters.toots_posted == 1

    def test_boost_counter(self):
        instance = make_instance()
        instance.register_user("alice")
        instance.post_toot("alice", toot_id=1, created_at=10)
        instance.post_toot("alice", toot_id=2, created_at=11, boost_of=1)
        assert instance.counters.boosts_posted == 1
        assert instance.counters.toots_posted == 1

    def test_counts_at_time(self):
        instance = make_instance()
        instance.register_user("alice", created_at=0)
        instance.register_user("bob", created_at=100)
        instance.post_toot("alice", toot_id=1, created_at=50)
        instance.post_toot("bob", toot_id=2, created_at=150)
        assert instance.user_count_at(0) == 1
        assert instance.user_count_at(100) == 2
        assert instance.toot_count_at(50) == 1
        assert instance.toot_count_at(200) == 2

    def test_local_toot_count_public_only(self):
        instance = make_instance()
        instance.register_user("alice")
        instance.post_toot("alice", toot_id=1, created_at=1, visibility=Visibility.PRIVATE)
        instance.post_toot("alice", toot_id=2, created_at=2)
        assert instance.local_toot_count() == 2
        assert instance.local_toot_count(public_only=True) == 1

    def test_post_from_unknown_user(self):
        instance = make_instance()
        with pytest.raises(UnknownUserError):
            instance.post_toot("ghost", toot_id=1, created_at=0)


class TestRemoteToots:
    def test_receive_remote_toot(self):
        instance = make_instance()
        remote = Toot(toot_id=9, author=UserRef("bob", "beta.example"), created_at=3)
        assert instance.receive_remote_toot(remote)
        assert not instance.receive_remote_toot(remote)  # duplicate
        assert instance.remote_toot_count() == 1
        assert instance.home_toot_count() == 0
        assert instance.counters.remote_toots_received == 1

    def test_local_toot_through_federation_rejected(self):
        instance = make_instance()
        instance.register_user("alice")
        local = Toot(toot_id=9, author=UserRef("alice", "alpha.example"), created_at=3)
        with pytest.raises(SimulationError):
            instance.receive_remote_toot(local)


class TestFollows:
    def test_follower_and_following_tracking(self):
        instance = make_instance()
        instance.register_user("alice")
        remote = UserRef("bob", "beta.example")
        instance.add_follower("alice", remote)
        instance.add_following("alice", remote)
        assert remote in instance.followers_of("alice")
        assert remote in instance.following_of("alice")
        assert "beta.example" in instance.subscribers
        assert "beta.example" in instance.subscriptions
        assert instance.subscription_count() == 1

    def test_follow_unknown_user_rejected(self):
        instance = make_instance()
        with pytest.raises(UnknownUserError):
            instance.add_follower("ghost", UserRef("bob", "beta.example"))
        with pytest.raises(UnknownUserError):
            instance.followers_of("ghost")

    def test_followers_page(self):
        instance = make_instance()
        instance.register_user("alice")
        for index in range(FOLLOWERS_PAGE_SIZE + 3):
            instance.add_follower("alice", UserRef(f"user{index:03d}", "beta.example"))
        first = instance.followers_page("alice", page=1)
        second = instance.followers_page("alice", page=2)
        assert len(first) == FOLLOWERS_PAGE_SIZE
        assert len(second) == 3
        assert set(first).isdisjoint(second)

    def test_followers_page_rejects_bad_page(self):
        instance = make_instance()
        instance.register_user("alice")
        with pytest.raises(SimulationError):
            instance.followers_page("alice", page=0)


class TestActivityAndAPI:
    def test_logins_and_activity_fraction(self):
        instance = make_instance()
        instance.register_user("alice")
        instance.register_user("bob")
        instance.record_login("alice", minute=10)
        instance.record_login("alice", minute=20)
        instance.record_login("bob", minute=8 * MINUTES_PER_DAY)
        assert instance.weekly_active_fraction() == pytest.approx(0.5)

    def test_login_unknown_user(self):
        instance = make_instance()
        with pytest.raises(UnknownUserError):
            instance.record_login("ghost", 0)

    def test_activity_fraction_empty(self):
        instance = make_instance()
        assert instance.weekly_active_fraction() == 0.0
        instance.register_user("alice")
        assert instance.weekly_active_fraction() == 0.0

    def test_instance_api_document(self):
        instance = make_instance()
        instance.register_user("alice", created_at=0)
        instance.post_toot("alice", toot_id=1, created_at=5)
        instance.record_login("alice", minute=10)
        document = instance.instance_api_document(minute=100)
        assert document["uri"] == "alpha.example"
        assert document["registrations"] is True
        assert document["stats"]["user_count"] == 1
        assert document["stats"]["status_count"] == 1
        assert document["logins_week"] == 1
        assert document["software"] == "mastodon"
