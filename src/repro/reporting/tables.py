"""Plain-text table rendering for benchmark and example output."""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import AnalysisError


def format_percentage(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string (``0.123`` -> ``"12.3%"``)."""
    return f"{value * 100:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table.

    Numbers are right-aligned, everything else left-aligned.  The result
    is what the benchmark harnesses print so that regenerated tables can
    be compared with the paper side by side.
    """
    if not headers:
        raise AnalysisError("a table needs at least one column")
    str_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        rendered: list[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(f"{value:,.2f}")
            elif isinstance(value, int) and not isinstance(value, bool):
                rendered.append(f"{value:,}")
            else:
                rendered.append(str(value))
        str_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def _align(cell: str, index: int, original: Any) -> str:
        if isinstance(original, (int, float)) and not isinstance(original, bool):
            return cell.rjust(widths[index])
        return cell.ljust(widths[index])

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row, originals in zip(str_rows, rows):
        lines.append(" | ".join(_align(cell, i, originals[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
