"""Rendering helpers: text tables, figure series and the experiment index."""

from repro.reporting.tables import format_table, format_percentage
from repro.reporting.figures import FigureSeries, cdf_series, curve_series
from repro.reporting.experiments import EXPERIMENTS, Experiment, get_experiment
from repro.reporting.sweeps import format_sweep_table

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "FigureSeries",
    "cdf_series",
    "curve_series",
    "format_percentage",
    "format_sweep_table",
    "format_table",
    "get_experiment",
]
