"""Tests for the instances dataset (snapshots + metadata joins)."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.crawler.monitor import InstanceSnapshot, MonitoringLog
from repro.datasets.instances import InstanceMetadata, InstancesDataset
from repro.simtime import MINUTES_PER_DAY


def make_log() -> MonitoringLog:
    """Two instances, four six-hourly probes per day over two days."""
    log = MonitoringLog(interval_minutes=360)
    for tick in range(8):
        minute = tick * 360
        # alpha is down for the whole of day 0 afternoon (ticks 2 and 3)
        alpha_online = tick not in (2, 3)
        log.snapshots.append(
            InstanceSnapshot(
                domain="alpha.example",
                minute=minute,
                online=alpha_online,
                user_count=100 + tick,
                toot_count=1000 + 10 * tick,
                registrations_open=True,
                logins_week=40,
            )
        )
        # beta only comes into existence at tick 4 (day 1)
        exists = tick >= 4
        log.snapshots.append(
            InstanceSnapshot(
                domain="beta.example",
                minute=minute,
                online=exists,
                exists=exists,
                user_count=10 if exists else 0,
                toot_count=50 if exists else 0,
                registrations_open=False,
                logins_week=9 if exists else 0,
            )
        )
    return log


def make_dataset() -> InstancesDataset:
    metadata = {
        "alpha.example": InstanceMetadata(
            domain="alpha.example",
            registration_open=True,
            country="JP",
            asn=9370,
            as_name="SAKURA Internet Inc.",
            ip_address="10.0.0.1",
            categories=("tech",),
            certificate_authority="Let's Encrypt",
        ),
        "beta.example": InstanceMetadata(
            domain="beta.example",
            registration_open=False,
            country="US",
            asn=16509,
            as_name="Amazon.com, Inc.",
            ip_address="10.0.1.1",
        ),
    }
    return InstancesDataset(log=make_log(), metadata=metadata)


class TestConstruction:
    def test_empty_log_rejected(self):
        with pytest.raises(DatasetError):
            InstancesDataset(MonitoringLog(interval_minutes=5))

    def test_metadata_defaults_for_unknown_domains(self):
        dataset = InstancesDataset(log=make_log())
        assert dataset.metadata_for("alpha.example").domain == "alpha.example"

    def test_unknown_domain_accessors(self):
        dataset = make_dataset()
        with pytest.raises(DatasetError):
            dataset.snapshots_for("ghost.example")
        with pytest.raises(DatasetError):
            dataset.metadata_for("ghost.example")

    def test_build_from_network(self, tiny_network, datasets):
        dataset = datasets.instances
        assert len(dataset) == len(tiny_network)
        some_domain = dataset.domains()[0]
        metadata = dataset.metadata_for(some_domain)
        assert metadata.country
        assert metadata.asn > 0
        assert metadata.certificate_authority


class TestCounts:
    def test_latest_counts_from_last_online_snapshot(self):
        dataset = make_dataset()
        assert dataset.users_per_instance()["alpha.example"] == 107
        assert dataset.toots_per_instance()["alpha.example"] == 1070
        assert dataset.total_users() == 117
        assert dataset.total_toots() == 1120

    def test_open_closed_partition(self):
        dataset = make_dataset()
        assert dataset.open_domains() == ["alpha.example"]
        assert dataset.closed_domains() == ["beta.example"]

    def test_activity_level(self):
        dataset = make_dataset()
        assert dataset.activity_level("alpha.example") == pytest.approx(40 / 100, rel=0.1)
        assert dataset.activity_level("beta.example") == pytest.approx(0.9)


class TestAvailability:
    def test_downtime_fraction(self):
        dataset = make_dataset()
        assert dataset.downtime_fraction("alpha.example") == pytest.approx(2 / 8)
        # beta's pre-existence probes are excluded entirely
        assert dataset.downtime_fraction("beta.example") == 0.0

    def test_daily_downtime(self):
        dataset = make_dataset()
        daily = dataset.daily_downtime("alpha.example")
        assert daily[0] == pytest.approx(0.5)
        assert daily[1] == 0.0

    def test_outage_intervals(self):
        dataset = make_dataset()
        intervals = dataset.outage_intervals("alpha.example")
        assert len(intervals) == 1
        assert intervals[0].start_minute == 720
        assert intervals[0].end_minute == 4 * 360
        assert intervals[0].duration_minutes == 720
        assert intervals[0].duration_days == pytest.approx(0.5)

    def test_trailing_outage_dropped_by_default(self):
        log = MonitoringLog(interval_minutes=60)
        log.snapshots.append(InstanceSnapshot("x.example", 0, online=True))
        log.snapshots.append(InstanceSnapshot("x.example", 60, online=False))
        dataset = InstancesDataset(log)
        assert dataset.outage_intervals("x.example") == []
        trailing = dataset.outage_intervals("x.example", drop_trailing=False)
        assert len(trailing) == 1

    def test_existing_snapshots_skips_pre_creation(self):
        dataset = make_dataset()
        snapshots = dataset.existing_snapshots("beta.example")
        assert len(snapshots) == 4
        assert all(s.exists for s in snapshots)


class TestGrowthAndHosting:
    def test_growth_series_monotone_instances(self):
        dataset = make_dataset()
        series = dataset.growth_series()
        assert [row["instances"] for row in series][:2] == [1, 1]
        assert series[-1]["instances"] == 2
        assert series[-1]["users"] == 117

    def test_growth_series_carries_last_known_counts_through_outages(self):
        dataset = make_dataset()
        series = dataset.growth_series()
        # during alpha's outage the last known counts are carried forward
        assert series[2]["users"] >= 101

    def test_by_country_and_asn(self):
        dataset = make_dataset()
        assert dataset.by_country() == {
            "JP": ["alpha.example"],
            "US": ["beta.example"],
        }
        assert set(dataset.by_asn()) == {9370, 16509}
        assert dataset.as_name(9370) == "SAKURA Internet Inc."
        assert dataset.as_name(424242) == "AS424242"

    def test_daily_boundaries_use_probe_day(self):
        log = MonitoringLog(interval_minutes=MINUTES_PER_DAY)
        log.snapshots.append(InstanceSnapshot("x.example", 0, online=False))
        log.snapshots.append(InstanceSnapshot("x.example", MINUTES_PER_DAY, online=True))
        dataset = InstancesDataset(log)
        daily = dataset.daily_downtime("x.example")
        assert daily == {0: 1.0, 1: 0.0}
