"""Serving-layer latency gates (the PR 8 gate).

The serving subsystem (:mod:`repro.serve`) claims its one-time build is
amortised and that per-query work is O(answer).  This benchmark builds
(or reuses) a columnar corpus + graph store at the ``large`` preset,
warms one :class:`~repro.serve.AvailabilityService` over it, and gates
three claims:

1. **identity** — the warm service's full-corpus curve is bit-identical
   to :func:`~repro.engine.sweep.availability_curves` over the same
   placement arrays (the batch sweep, monolithic path);
2. **latency** — single-user availability queries from the warm service
   answer at ``p50 <= 10 ms`` and ``p99 <= 100 ms``;
3. **throughput** — the same stream sustains ``>= 200`` queries/sec.

The hard thresholds apply at the ``large`` preset on hosts with 4+
cores; smaller presets, ``--relaxed``, or 1-core CI runners gate the
same invariants at relaxed thresholds (the committed
``BENCH_engine.json`` carries the recorded ``large`` baseline).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve_latency.py [--preset tiny --relaxed]

Reusing an existing store skips the build::

    PYTHONPATH=src python benchmarks/bench_serve_latency.py \\
        --corpus corpus/ --graph graph/
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.replication import PlacementMap
from repro.engine.sweep import availability_curves
from repro.fediverse import build_columnar_scenario
from repro.serve import AvailabilityService

#: Hard gates: the `large`-preset / 4+ core contract.
HARD_P50_MS = 10.0
HARD_P99_MS = 100.0
HARD_MIN_QPS = 200.0

#: Relaxed gates for hosted 1-core runners and small presets: the same
#: invariants, an order of magnitude of headroom.
RELAXED_P50_MS = 100.0
RELAXED_P99_MS = 1_000.0
RELAXED_MIN_QPS = 20.0

WARMUP_QUERIES = 50
DEFAULT_QUERIES = 2_000
QUERY_SEED = 42


def build_stores(preset: str, corpus_dir: Path, graph_dir: Path, seed: int = 7) -> None:
    """Stream a columnar scenario into fresh corpus + graph stores."""
    from repro.corpus import CorpusWriter, GraphWriter

    scenario = build_columnar_scenario(preset, seed=seed)
    minute = scenario.config.window_minutes - 1
    writer = CorpusWriter(corpus_dir)
    scenario.write_corpus(writer, at_minute=minute)
    writer.finalise(crawl_minute=minute)
    graph_writer = GraphWriter(graph_dir)
    scenario.write_graph(graph_writer, at_minute=minute)
    graph_writer.finalise(crawl_minute=minute)


def check_identity(service: AvailabilityService) -> None:
    """The warm curve must equal the batch sweep's, float for float."""
    state = service.state_for("no-rep")
    failure = service.failure("instances/by_toots")
    batch = availability_curves(
        PlacementMap(strategy=state.arrays.strategy, arrays=state.arrays),
        [failure],
        shard_size=0,
    )[failure.name]
    batch_curve = np.asarray([point.availability for point in batch])
    serve_curve = service.curve("no-rep", "instances/by_toots")
    assert serve_curve.shape == batch_curve.shape, (
        f"curve lengths differ: serve {serve_curve.shape} vs batch {batch_curve.shape}"
    )
    assert (serve_curve == batch_curve).all(), (
        "serve curve differs from the batch sweep"
    )


def run_queries(
    service: AvailabilityService, n_queries: int, strategies: list[str]
) -> dict[str, float]:
    """Timed single-user availability queries against the warm service."""
    rng = np.random.default_rng(QUERY_SEED)
    authors = [str(a) for a in service.corpus.authors.tolist()]
    picks = rng.integers(0, len(authors), size=WARMUP_QUERIES + n_queries)
    ks = rng.integers(0, service.removal_steps + 1, size=picks.size)
    strategy_picks = rng.integers(0, len(strategies), size=picks.size)

    def one(i: int) -> None:
        service.availability(
            user=authors[int(picks[i])],
            strategy=strategies[int(strategy_picks[i])],
            failure="instances/by_toots",
            k=int(ks[i]),
        )

    for i in range(WARMUP_QUERIES):
        one(i)
    durations = np.empty(n_queries, dtype=np.float64)
    begin = time.perf_counter()
    for j in range(n_queries):
        t0 = time.perf_counter()
        one(WARMUP_QUERIES + j)
        durations[j] = time.perf_counter() - t0
    total = time.perf_counter() - begin
    return {
        "p50_ms": float(np.percentile(durations, 50) * 1000),
        "p99_ms": float(np.percentile(durations, 99) * 1000),
        "qps": n_queries / total,
        "total_seconds": total,
    }


def run_gates(
    preset: str,
    corpus_dir: Path,
    graph_dir: Path,
    n_queries: int,
    relaxed: bool,
) -> dict[str, object]:
    built_stores = not (corpus_dir / "manifest.json").exists()
    if built_stores:
        t0 = time.perf_counter()
        build_stores(preset, corpus_dir, graph_dir)
        store_seconds = time.perf_counter() - t0
    else:
        store_seconds = 0.0

    t0 = time.perf_counter()
    service = AvailabilityService(corpus_dir, graph_dir, mmap=True)
    strategies = ["no-rep", "s-rep"]
    service.warm(strategies)
    build_seconds = time.perf_counter() - t0

    check_identity(service)
    measured = run_queries(service, n_queries, strategies)

    cores = os.cpu_count() or 1
    hard = preset == "large" and cores >= 4 and not relaxed
    gates = {
        "p50_ms": HARD_P50_MS if hard else RELAXED_P50_MS,
        "p99_ms": HARD_P99_MS if hard else RELAXED_P99_MS,
        "min_qps": HARD_MIN_QPS if hard else RELAXED_MIN_QPS,
    }
    return {
        "preset": preset,
        "n_toots": service.corpus.n_toots,
        "n_queries": n_queries,
        "identity_batch_sweep": True,
        "store_build_seconds": round(store_seconds, 3),
        "service_build_seconds": round(build_seconds, 3),
        "hard_gates": hard,
        **{key: round(value, 4) for key, value in measured.items()},
        "gate_p50_ms": gates["p50_ms"],
        "gate_p99_ms": gates["p99_ms"],
        "gate_min_qps": gates["min_qps"],
    }


def _assert_gates(measured: dict[str, object]) -> None:
    assert measured["p50_ms"] <= measured["gate_p50_ms"], (
        f"p50 {measured['p50_ms']:.2f} ms exceeds {measured['gate_p50_ms']} ms"
    )
    assert measured["p99_ms"] <= measured["gate_p99_ms"], (
        f"p99 {measured['p99_ms']:.2f} ms exceeds {measured['gate_p99_ms']} ms"
    )
    assert measured["qps"] >= measured["gate_min_qps"], (
        f"{measured['qps']:.0f} qps under the {measured['gate_min_qps']} floor"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="large")
    parser.add_argument("--corpus", default=None, metavar="DIR")
    parser.add_argument("--graph", default=None, metavar="DIR")
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument(
        "--relaxed", action="store_true",
        help="gate at the relaxed thresholds regardless of preset/cores",
    )
    args = parser.parse_args()

    scratch = None
    if args.corpus is None or args.graph is None:
        scratch = tempfile.TemporaryDirectory(prefix="bench-serve-")
    corpus_dir = Path(args.corpus) if args.corpus else Path(scratch.name) / "corpus"
    graph_dir = Path(args.graph) if args.graph else Path(scratch.name) / "graph"
    try:
        measured = run_gates(
            args.preset, corpus_dir, graph_dir, args.queries, args.relaxed
        )
    finally:
        if scratch is not None:
            scratch.cleanup()

    mode = "hard" if measured["hard_gates"] else "relaxed"
    print(f"serve latency gates: {measured['n_toots']:,} toots "
          f"('{measured['preset']}' preset), {measured['n_queries']:,} queries, "
          f"{mode} thresholds")
    print("  identity            : warm curve == batch sweep (bit-identical)")
    print(f"  one-time build      : stores {measured['store_build_seconds']}s, "
          f"service {measured['service_build_seconds']}s")
    print(f"  latency             : p50 {measured['p50_ms']:.2f} ms "
          f"(<= {measured['gate_p50_ms']}), p99 {measured['p99_ms']:.2f} ms "
          f"(<= {measured['gate_p99_ms']})")
    print(f"  throughput          : {measured['qps']:,.0f} qps "
          f"(>= {measured['gate_min_qps']})")
    _assert_gates(measured)

    try:
        from benchmarks.perf_log import record
    except ImportError:  # run as a script: benchmarks/ itself is on sys.path
        from perf_log import record

    path = record("serve_latency", measured)
    print(f"  recorded            : {path}")


if __name__ == "__main__":
    main()
