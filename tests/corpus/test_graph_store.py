"""The on-disk follower graph: writer/store roundtrip, validation, and
equivalence with the networkx-backed dataset over the same crawl."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.corpus import DEFAULT_GRAPH_SHARD_SIZE, GRAPH_SCHEMA, GraphStore, GraphWriter
from repro.crawler import FollowerGraphCrawler, SimulatedTransport
from repro.datasets import GraphDataset
from repro.engine.placement import follower_domain_sets
from repro.engine.resilience import GraphMatrix
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def graph_crawl(tiny_network):
    """The record-path follower crawl of the tiny fediverse."""
    return FollowerGraphCrawler(SimulatedTransport(tiny_network), threads=4).crawl()


@pytest.fixture(scope="module")
def graph_store(tiny_network, tmp_path_factory):
    """The same crawl streamed into an edge-shard store (multiple shards)."""
    writer = GraphWriter(tmp_path_factory.mktemp("tiny-graph"), shard_size=500)
    result = FollowerGraphCrawler(SimulatedTransport(tiny_network), threads=4).crawl(
        sink=writer
    )
    return writer.finalise(crawl_minute=result.crawl_minute)


@pytest.fixture(scope="module")
def graph_dataset(graph_crawl):
    return GraphDataset.from_crawl(graph_crawl)


class TestRoundtrip:
    def test_edge_and_node_counts(self, graph_store, graph_dataset):
        assert graph_store.n_edges == graph_dataset.follow_edge_count()
        assert graph_store.n_nodes == graph_dataset.user_count()
        assert graph_store.n_shards == -(-graph_store.n_edges // 500)

    def test_edge_stream_matches_the_record_path(self, graph_store, graph_dataset):
        decoded = list(graph_store.iter_edge_handles())
        assert set(decoded) == set(graph_dataset.follower_graph.edges())
        # node intern order == networkx insertion order (the resilience
        # sweeps' tie-breaking depends on it)
        assert graph_store.handles.tolist() == list(graph_dataset.follower_graph.nodes())

    def test_edge_counts_recorded_per_instance(self, graph_store, graph_crawl):
        assert sum(graph_store.edges_collected.values()) == len(graph_crawl.edges)

    def test_shard_bounds_contiguous(self, graph_store):
        bounds = graph_store.shard_bounds()
        cursor = 0
        for start, stop in bounds:
            assert start == cursor
            cursor = stop
        assert cursor == graph_store.n_edges
        for (start, stop), (follower, followed) in zip(
            bounds, (graph_store.shard_edges(i) for i in range(graph_store.n_shards))
        ):
            assert follower.shape == followed.shape == (stop - start,)
            assert follower.dtype == followed.dtype == np.int32

    def test_node_domains_align_with_handles(self, graph_store):
        domains = graph_store.domains.tolist()
        for handle, code in zip(
            graph_store.handles.tolist(), graph_store.node_domain_codes.tolist()
        ):
            assert handle.rpartition("@")[2] == domains[code]

    def test_nbytes_positive(self, graph_store):
        assert graph_store.nbytes() > 0

    def test_reopen(self, graph_store):
        reopened = GraphStore(graph_store.path)
        assert reopened.n_edges == graph_store.n_edges
        assert reopened.manifest["schema"] == GRAPH_SCHEMA


class TestColumnarQueries:
    def test_follower_domain_sets_match_networkx(self, graph_store, graph_dataset):
        authors = graph_store.handles.tolist()[:200]
        authors += authors[:10]  # duplicates must collapse, order kept
        authors += ["ghost@nowhere.example"]  # absent authors get empty sets
        expected = follower_domain_sets(authors, graph_dataset)
        got = graph_store.follower_domain_sets(authors)
        assert list(got) == list(expected)
        assert got == expected

    def test_dispatch_through_the_engine_helper(self, graph_store, graph_dataset):
        authors = graph_store.handles.tolist()[:50]
        assert follower_domain_sets(authors, graph_store) == follower_domain_sets(
            authors, graph_dataset
        )

    def test_users_per_instance_match(self, graph_store, graph_dataset):
        assert graph_store.users_per_instance() == graph_dataset.users_per_instance()

    def test_federation_edge_counts_match(self, graph_store, graph_dataset):
        federation = graph_dataset.federation_graph
        expected = {
            (source, target): data["weight"]
            for source, target, data in federation.edges(data=True)
        }
        assert graph_store.federation_edge_counts() == expected

    def test_graph_matrix_bit_compatible(self, graph_store, graph_dataset):
        from_nx = GraphMatrix.from_networkx(graph_dataset.follower_graph)
        from_store = GraphMatrix.from_graph_store(graph_store)
        assert from_store.nodes == from_nx.nodes
        assert from_store.directed is True
        assert (from_store.adjacency != from_nx.adjacency).nnz == 0

    def test_removal_sweep_accepts_the_store(self, graph_store, graph_dataset):
        from repro.engine.resilience import user_removal_sweep_matrix

        from_store = user_removal_sweep_matrix(graph_store, rounds=3)
        from_nx = user_removal_sweep_matrix(graph_dataset.follower_graph, rounds=3)
        assert from_store == from_nx

    def test_empty_store_rejected_by_the_matrix(self, tmp_path):
        from repro.errors import AnalysisError

        writer = GraphWriter(tmp_path / "empty")
        writer.end_instance("quiet.example")
        store = writer.finalise()
        with pytest.raises(AnalysisError, match="empty graph"):
            GraphMatrix.from_graph_store(store)


class TestWriterBehaviour:
    def test_self_loops_skipped_but_counted(self, tmp_path):
        writer = GraphWriter(tmp_path / "g")
        writer.add_edges(
            "x.example",
            [("a@x.example", "b@x.example"), ("b@x.example", "b@x.example")],
        )
        writer.end_instance("x.example")
        store = writer.finalise()
        assert store.n_edges == 1
        assert store.n_self_loops == 1

    def test_malformed_handle_raises(self, tmp_path):
        writer = GraphWriter(tmp_path / "g")
        writer.add_edges("x.example", [("no-at-sign", "b@x.example")])
        writer.end_instance("x.example")
        with pytest.raises(DatasetError, match="malformed account handle"):
            writer.finalise()

    def test_discarded_instance_leaves_no_trace(self, tmp_path):
        writer = GraphWriter(tmp_path / "g")
        writer.add_edges("keep.example", [("a@other.example", "b@keep.example")])
        writer.end_instance("keep.example")
        writer.add_edges("drop.example", [("c@other.example", "d@drop.example")])
        writer.discard_instance("drop.example")
        store = writer.finalise()
        assert store.n_edges == 1
        assert "drop.example" not in store.edges_collected

    def test_empty_instance_still_collected(self, tmp_path):
        writer = GraphWriter(tmp_path / "g")
        writer.end_instance("quiet.example")
        store = writer.finalise()
        assert store.n_edges == 0
        assert store.edges_collected == {"quiet.example": 0}
        assert store.follower_domain_sets(["a@quiet.example"]) == {
            "a@quiet.example": set()
        }

    def test_finalise_refuses_open_spools(self, tmp_path):
        writer = GraphWriter(tmp_path / "g")
        writer.add_edges("open.example", [("a@x.example", "b@open.example")])
        with pytest.raises(DatasetError, match="open instance spools"):
            writer.finalise()

    def test_finalised_writer_rejects_further_use(self, tmp_path):
        writer = GraphWriter(tmp_path / "g")
        writer.end_instance("x.example")
        writer.finalise()
        with pytest.raises(DatasetError):
            writer.add_edges("x.example", [("a@y.example", "b@x.example")])
        with pytest.raises(DatasetError):
            writer.finalise()

    def test_invalid_shard_size(self, tmp_path):
        with pytest.raises(DatasetError):
            GraphWriter(tmp_path / "g", shard_size=0)

    def test_default_shard_size(self, tmp_path):
        assert GraphWriter(tmp_path / "g").shard_size == DEFAULT_GRAPH_SHARD_SIZE


class TestManifestValidation:
    def _write(self, tmp_path):
        writer = GraphWriter(tmp_path)
        writer.add_edges("x.example", [("a@y.example", "b@x.example")])
        writer.end_instance("x.example")
        return writer.finalise()

    def _mutate(self, store, **changes):
        manifest = json.loads((store.path / "manifest.json").read_text())
        manifest.update(changes)
        (store.path / "manifest.json").write_text(json.dumps(manifest))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DatasetError, match="no graph manifest"):
            GraphStore(tmp_path)

    def test_wrong_schema(self, tmp_path):
        store = self._write(tmp_path)
        self._mutate(store, schema="repro.graph/v0")
        with pytest.raises(DatasetError, match="unsupported graph schema"):
            GraphStore(store.path)

    def test_missing_key(self, tmp_path):
        store = self._write(tmp_path)
        manifest = json.loads((store.path / "manifest.json").read_text())
        del manifest["n_edges"]
        (store.path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="missing 'n_edges'"):
            GraphStore(store.path)

    def test_wrong_columns(self, tmp_path):
        store = self._write(tmp_path)
        self._mutate(store, columns=["a", "b"])
        with pytest.raises(DatasetError, match="unexpected column set"):
            GraphStore(store.path)

    def test_shard_coverage_mismatch(self, tmp_path):
        store = self._write(tmp_path)
        self._mutate(store, n_edges=99)
        with pytest.raises(DatasetError, match="declares 99"):
            GraphStore(store.path)

    def test_missing_shard_file(self, tmp_path):
        store = self._write(tmp_path)
        (store.path / "edges-00000.npz").unlink()
        with pytest.raises(DatasetError, match="is missing"):
            GraphStore(store.path)

    def test_invalid_json(self, tmp_path):
        store = self._write(tmp_path)
        (store.path / "manifest.json").write_text("{not json")
        with pytest.raises(DatasetError, match="invalid JSON"):
            GraphStore(store.path)
