"""Content federation: feeder instances and the top-instance table.

Covers Fig. 14 (the home/remote composition of federated timelines — most
instances mostly re-show content generated elsewhere) and Table 2 (the
ten instances generating the most home toots, with their degrees in the
user and federation graphs, operator and hosting AS).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.datasets.graphs import GraphDataset
from repro.datasets.instances import InstancesDataset
from repro.datasets.toots import TootsDataset
from repro.stats.summary import pearson_correlation


@dataclass(frozen=True, slots=True)
class HomeRemotePoint:
    """One instance's federated-timeline composition, as plotted in Fig. 14."""

    domain: str
    home_share: float
    remote_share: float
    total_toots: int


def home_remote_series(toots: TootsDataset) -> list[HomeRemotePoint]:
    """Per-instance home/remote toot shares, ordered by home share (Fig. 14)."""
    compositions = toots.timeline_compositions()
    if not compositions:
        raise AnalysisError("the toots dataset has no per-instance observations")
    points = [
        HomeRemotePoint(
            domain=c.domain,
            home_share=c.home_fraction,
            remote_share=c.remote_fraction,
            total_toots=c.total,
        )
        for c in compositions
        if c.total > 0
    ]
    points.sort(key=lambda p: p.home_share)
    return points


def feeder_summary(toots: TootsDataset) -> dict[str, float]:
    """Headline feeder statistics from Section 5.2.

    * the share of instances generating under 10% of their own federated
      timeline (paper: 78%);
    * the share entirely reliant on remote toots (paper: 5%);
    * the correlation between how many toots an instance generates and
      how often its toots are replicated elsewhere (paper: 0.97).
    """
    points = home_remote_series(toots)
    under_10 = sum(1 for p in points if p.home_share < 0.10) / len(points)
    fully_remote = sum(1 for p in points if p.home_share == 0.0) / len(points)

    replication = toots.replication_counts()
    produced: dict[str, int] = {}
    replicated: dict[str, int] = {}
    for record in toots.records():
        produced[record.author_domain] = produced.get(record.author_domain, 0) + 1
        replicated[record.author_domain] = (
            replicated.get(record.author_domain, 0) + replication.get(record.url, 0)
        )
    domains = sorted(produced)
    correlation = 0.0
    if len(domains) >= 2:
        correlation = pearson_correlation(
            [produced[d] for d in domains], [replicated[d] for d in domains]
        )
    return {
        "share_under_10pct_home": under_10,
        "share_fully_remote": fully_remote,
        "toots_vs_replication_correlation": correlation,
    }


@dataclass(frozen=True, slots=True)
class TopInstanceRow:
    """One row of Table 2."""

    domain: str
    home_toots: int
    users: int
    user_out_degree: int
    user_in_degree: int
    toot_out_degree: int
    toot_in_degree: int
    instance_out_degree: int
    instance_in_degree: int
    operator: str
    as_name: str
    country: str


def top_instances_report(
    toots: TootsDataset,
    graphs: GraphDataset,
    instances: InstancesDataset,
    top: int = 10,
) -> list[TopInstanceRow]:
    """Reproduce Table 2: the top instances by home-timeline toots.

    Degree columns follow the paper's convention:

    * *user* out/in degree — accounts on other instances followed by /
      following accounts on this instance;
    * *toot* out/in degree — toots flowing out to / in from other
      instances along those follow edges (approximated by the authors'
      toot counts);
    * *instance* out/in degree — degree of the instance in the federation
      graph.
    """
    if top < 1:
        raise AnalysisError("top must be positive")
    home_counts = toots.toots_per_instance()
    ranked = sorted(home_counts, key=lambda d: home_counts[d], reverse=True)[:top]
    toots_per_author = toots.toots_per_author()

    rows: list[TopInstanceRow] = []
    for domain in ranked:
        local_accounts = set(graphs.users_on_instance(domain))
        user_out = 0
        user_in = 0
        toot_out = 0
        toot_in = 0
        for account in local_accounts:
            for _, followed in graphs.follower_graph.out_edges(account):
                if graphs.follower_graph.nodes[followed].get("domain") != domain:
                    user_out += 1
                    toot_in += toots_per_author.get(followed, 0)
            for follower, _ in graphs.follower_graph.in_edges(account):
                if graphs.follower_graph.nodes[follower].get("domain") != domain:
                    user_in += 1
                    toot_out += toots_per_author.get(account, 0)
        metadata = None
        if domain in instances.metadata:
            metadata = instances.metadata_for(domain)
        federation = graphs.federation_graph
        rows.append(
            TopInstanceRow(
                domain=domain,
                home_toots=home_counts[domain],
                users=len(local_accounts),
                user_out_degree=user_out,
                user_in_degree=user_in,
                toot_out_degree=toot_out,
                toot_in_degree=toot_in,
                instance_out_degree=(
                    federation.out_degree(domain) if federation.has_node(domain) else 0
                ),
                instance_in_degree=(
                    federation.in_degree(domain) if federation.has_node(domain) else 0
                ),
                operator=metadata.operator if metadata else "unknown",
                as_name=metadata.as_name if metadata else "",
                country=metadata.country if metadata else "",
            )
        )
    return rows
