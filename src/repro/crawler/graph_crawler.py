"""The follower-graph crawler.

The paper built the follower graph ``G(V, E)`` by iterating over the
public users of every instance and paging through each user's follower
list.  :class:`FollowerGraphCrawler` performs the same ego-network
collection over the simulated transport: it discovers accounts through
the public directory endpoint, pages their follower lists, and emits
directed edges ``follower -> followed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import HTTPError
from repro.crawler.http import SimulatedTransport
from repro.crawler.scheduler import CrawlScheduler, RateLimiter


@dataclass(frozen=True, slots=True)
class FollowEdgeRecord:
    """A directed follower edge observed by the crawler."""

    follower: str
    followed: str

    @property
    def follower_domain(self) -> str:
        """Domain part of the follower handle."""
        return self.follower.rsplit("@", 1)[1]

    @property
    def followed_domain(self) -> str:
        """Domain part of the followed handle."""
        return self.followed.rsplit("@", 1)[1]

    @property
    def is_remote(self) -> bool:
        """Whether the edge crosses instances (a federated subscription)."""
        return self.follower_domain != self.followed_domain


@dataclass
class GraphCrawlResult:
    """The outcome of a follower-graph crawl."""

    crawl_minute: int
    edges: list[FollowEdgeRecord] = field(default_factory=list)
    accounts_seen: set[str] = field(default_factory=set)
    failures: dict[str, str] = field(default_factory=dict)

    def unique_edges(self) -> set[tuple[str, str]]:
        """Return the de-duplicated set of (follower, followed) pairs."""
        return {(edge.follower, edge.followed) for edge in self.edges}


class FollowerGraphCrawler:
    """Scrapes follower lists to reconstruct the social graph."""

    def __init__(
        self,
        transport: SimulatedTransport,
        threads: int = 10,
        politeness_delay: float = 0.0,
        directory_page_size: int = 80,
    ) -> None:
        self._transport = transport
        self._scheduler = CrawlScheduler(threads=threads)
        self._rate_limiter = RateLimiter(delay_seconds=politeness_delay)
        self.directory_page_size = directory_page_size

    # -- account discovery ------------------------------------------------------

    def list_accounts(self, domain: str, at_minute: int, tooted_only: bool = True) -> list[str]:
        """Enumerate the public accounts of an instance via its directory.

        With ``tooted_only=True`` only accounts that have posted at least
        one toot are returned — the paper scraped followers only for the
        239K accounts observed tooting.
        """
        usernames: list[str] = []
        page = 1
        while True:
            self._rate_limiter.acquire(domain)
            url = (
                f"https://{domain}/api/v1/directory?page={page}"
                f"&per_page={self.directory_page_size}"
            )
            response = self._transport.get(url, at_minute=at_minute)
            entries = response.payload
            if not entries:
                break
            for entry in entries:
                if tooted_only and entry.get("statuses_count", 0) == 0:
                    continue
                usernames.append(str(entry["username"]))
            if len(entries) < self.directory_page_size:
                break
            page += 1
        return usernames

    # -- ego networks -------------------------------------------------------------

    def crawl_followers(self, domain: str, username: str, at_minute: int) -> list[FollowEdgeRecord]:
        """Page the follower list of one account, emitting edges."""
        edges: list[FollowEdgeRecord] = []
        handle = f"{username}@{domain}"
        page = 1
        while True:
            self._rate_limiter.acquire(domain)
            url = f"https://{domain}/users/{username}/followers?page={page}"
            response = self._transport.get(url, at_minute=at_minute)
            payload = response.payload
            for follower_handle in payload.get("followers", []):
                edges.append(FollowEdgeRecord(follower=str(follower_handle), followed=handle))
            if not payload.get("has_more", False):
                break
            page += 1
        return edges

    def crawl_instance(self, domain: str, at_minute: int) -> list[FollowEdgeRecord]:
        """Collect the ego networks of every tooting account on one instance."""
        edges: list[FollowEdgeRecord] = []
        for username in self.list_accounts(domain, at_minute):
            edges.extend(self.crawl_followers(domain, username, at_minute))
        return edges

    # -- full crawl -----------------------------------------------------------------

    def crawl(
        self,
        domains: Iterable[str] | None = None,
        at_minute: int | None = None,
    ) -> GraphCrawlResult:
        """Crawl follower lists across every reachable instance."""
        network = self._transport.network
        if at_minute is None:
            at_minute = network.clock.window_minutes - 1
        if domains is None:
            domains = self._transport.known_domains()

        reachable: list[str] = []
        for domain in sorted(set(domains)):
            try:
                self._transport.get(f"https://{domain}/api/v1/instance", at_minute=at_minute)
            except HTTPError:
                continue
            reachable.append(domain)

        result = GraphCrawlResult(crawl_minute=at_minute)
        report = self._scheduler.run(
            reachable, lambda domain: self.crawl_instance(domain, at_minute)
        )
        for outcome in report.outcomes:
            if outcome.ok:
                edges: list[FollowEdgeRecord] = outcome.result  # type: ignore[assignment]
                result.edges.extend(edges)
                for edge in edges:
                    result.accounts_seen.add(edge.follower)
                    result.accounts_seen.add(edge.followed)
            else:
                result.failures[outcome.key] = str(outcome.error)
        return result
