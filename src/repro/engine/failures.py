"""Failure models: who disappears, at which removal step — or for how long.

A failure model reduces to something the kernels understand.  **Cumulative**
models (the paper's Figs. 15b/d, 16 instance removal and Figs. 15a/c AS
removal) name a mapping ``domain -> 1-based removal step`` plus the
schedule length: removed domains stay removed, and the availability curve
is a cumulative sum of per-step losses.  **Correlated** models are the
same contract applied to whole infrastructure groups — the paper's real
headline risk (Figs. 5/13, Tables 1-2): a handful of hosting providers
and countries sit behind most instances, so one hoster outage removes a
correlated instance set in a single step.  **Temporal** models drop the
monotone assumption entirely: ``steps`` become simulated time ticks,
each tick carries its own per-domain down set, and instances go down
*and come back* — churn sampled from the empirical outage distributions
of :mod:`repro.fediverse.uptime` (Figs. 7-10).

Everything still flows through the same batch kernels.  A cumulative
model contributes one removal column; a temporal model contributes one
single-step column *per tick*, built by
:func:`repro.engine.kernels.temporal_removal_matrix` — down domains get
step 1, up domains get ``inf``, so the per-row ``maximum.reduceat`` rule
("a toot dies only when its *last* replica disappears") computes exactly
"every holder is down at this tick".  Loss counts stay additive across
disjoint toot ranges, so the sharded streaming fold
(:mod:`repro.engine.sharding`) evaluates temporal schedules unchanged
and bit-identically.

To plug in a new model:

1. subclass :class:`FailureModel` (cumulative / correlated) or
   :class:`TemporalFailureModel` (churn-style);
2. implement :meth:`FailureModel.removal_index` — or, for temporal
   models, :meth:`TemporalFailureModel.down_intervals` — plus
   :meth:`effective_steps` if the realised schedule can be shorter;
3. hand it to :func:`repro.engine.sweep.availability_curve` or a sweep.

Nothing else in the engine needs to change.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.simtime import MINUTES_PER_DAY


def _check_unique(ranking: Sequence[Hashable], what: str) -> None:
    """Reject rankings with duplicate entries.

    A duplicated domain/ASN/group would silently let the *last*
    occurrence win when the ranking is folded into ``removal_index`` —
    the earlier (higher-ranked) removal step would be overwritten — so
    duplicates are a hard error rather than a quiet reordering.
    """
    seen: set[Hashable] = set()
    duplicates: list[Hashable] = []
    for entry in ranking:
        if entry in seen and entry not in duplicates:
            duplicates.append(entry)
        seen.add(entry)
    if duplicates:
        listed = ", ".join(repr(d) for d in duplicates[:5])
        raise AnalysisError(f"duplicate {what} in removal ranking: {listed}")


class FailureModel:
    """Base class: a named, fixed-length removal schedule."""

    #: Cumulative models remove monotonically; temporal subclasses flip
    #: this and reinterpret ``steps`` as simulated time ticks.
    temporal: bool = False

    def __init__(self, name: str, steps: int) -> None:
        if steps < 1:
            raise AnalysisError("steps must be positive")
        self.name = name
        self.steps = steps

    def removal_index(self) -> dict[str, int]:
        """Map each failing domain to its 1-based removal step."""
        raise NotImplementedError

    def effective_steps(self) -> int:
        """The realised schedule length (rankings may be shorter)."""
        return self.steps

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, steps={self.steps})"


class InstanceRemoval(FailureModel):
    """Remove the top-``steps`` instances of ``ranking``, one per step."""

    def __init__(
        self, ranking: Sequence[str], steps: int = 100, name: str = "instance-removal"
    ) -> None:
        super().__init__(name=name, steps=steps)
        self.ranking = tuple(ranking)
        _check_unique(self.ranking, "domains")

    def removal_index(self) -> dict[str, int]:
        return {domain: i + 1 for i, domain in enumerate(self.ranking[: self.steps])}

    def effective_steps(self) -> int:
        return min(self.steps, len(self.ranking))


class GroupedRemoval(FailureModel):
    """Remove whole infrastructure groups of ``ranking``, one per step.

    Step ``k`` takes down every instance mapped to ``ranking[k - 1]`` —
    the correlated-failure shape of the paper's AS analysis (Table 1),
    generalised to any grouping key: hosting provider, country,
    datacentre, certificate authority.  Instances whose group never
    appears in the (truncated) ranking survive the whole schedule.
    """

    #: Human label for the grouping key, used in error messages.
    group_label = "groups"

    def __init__(
        self,
        group_of_instance: Mapping[str, Hashable],
        ranking: Sequence[Hashable],
        steps: int,
        name: str,
    ) -> None:
        super().__init__(name=name, steps=steps)
        self.ranking = tuple(ranking)
        _check_unique(self.ranking, self.group_label)
        self.group_of_instance = dict(group_of_instance)

    def removal_index(self) -> dict[str, int]:
        group_index = {
            group: i + 1 for i, group in enumerate(self.ranking[: self.steps])
        }
        return {
            domain: group_index[group]
            for domain, group in self.group_of_instance.items()
            if group in group_index
        }

    def effective_steps(self) -> int:
        return min(self.steps, len(self.ranking))


class ASRemoval(GroupedRemoval):
    """Remove the top-``steps`` ASes of ``ranking`` with every instance they host."""

    group_label = "ASNs"

    def __init__(
        self,
        asn_of_instance: Mapping[str, int],
        ranking: Sequence[int],
        steps: int = 25,
        name: str = "as-removal",
    ) -> None:
        super().__init__(asn_of_instance, ranking, steps=steps, name=name)

    @property
    def asn_of_instance(self) -> dict[str, int]:
        """The instance → hosting-ASN mapping (alias of the group mapping)."""
        return self.group_of_instance


class HosterRemoval(GroupedRemoval):
    """Remove hosting providers in ranked order, each with every instance it hosts.

    The paper's headline correlated risk: Figs. 5/13 and Tables 1-2 show
    a handful of hosters (Amazon, Cloudflare, OVH, Sakura) behind most
    instances.  ``hoster_of_instance`` groups domains by provider label
    (see :func:`repro.fediverse.geo.hoster_of_asn`, which collapses
    sibling ASNs of one provider into a single hoster).
    """

    group_label = "hosters"

    def __init__(
        self,
        hoster_of_instance: Mapping[str, str],
        ranking: Sequence[str],
        steps: int = 10,
        name: str = "hoster-removal",
    ) -> None:
        super().__init__(hoster_of_instance, ranking, steps=steps, name=name)

    @property
    def hoster_of_instance(self) -> dict[str, str]:
        """The instance → hosting-provider mapping (alias of the group mapping)."""
        return self.group_of_instance


class CountryRemoval(GroupedRemoval):
    """Remove hosting countries in ranked order — national-scale outages/blocks.

    Fig. 5's concentration makes this the widest correlated blast radius:
    three countries (JP/US/FR) host most of the fediverse, so a single
    country-level event removes a majority of instances in one step.
    """

    group_label = "countries"

    def __init__(
        self,
        country_of_instance: Mapping[str, str],
        ranking: Sequence[str],
        steps: int = 10,
        name: str = "country-removal",
    ) -> None:
        super().__init__(country_of_instance, ranking, steps=steps, name=name)

    @property
    def country_of_instance(self) -> dict[str, str]:
        """The instance → hosting-country mapping (alias of the group mapping)."""
        return self.group_of_instance


# -- temporal models --------------------------------------------------------------


class TemporalFailureModel(FailureModel):
    """Base class for churn-style models: ``steps`` are simulated time ticks.

    A temporal model describes *when* each domain is down — 1-based tick
    intervals ``[start, stop)`` with ``1 <= start < stop <= steps + 1``
    — instead of a single monotone removal step; a domain can be down,
    recover, and go down again.  The resulting curve is an availability
    *time series*: index ``t`` is the fraction of toots with at least one
    live holder at tick ``t`` (index 0 is the no-outage baseline 1.0),
    and it is not monotone.
    """

    temporal = True

    def removal_index(self) -> dict[str, int]:
        raise AnalysisError(
            f"{self.name!r} is a temporal model: it describes down intervals "
            "per tick, not monotone removal steps — use down_intervals()"
        )

    def down_intervals(self) -> dict[str, list[tuple[int, int]]]:
        """Per-domain outage intervals as 1-based tick ranges ``[start, stop)``."""
        raise NotImplementedError

    def down_matrix(self, lookup: "DomainLookup") -> np.ndarray:
        """Boolean ``(n_domains, ticks)``: is the domain down at tick ``t``?

        Columns are ticks ``1..effective_steps()`` aligned with the
        lookup's domain universe; domains outside the universe are
        ignored (they cannot affect any toot), exactly mirroring
        :meth:`DomainLookup.removal_vector`.
        """
        ticks = self.effective_steps()
        down = np.zeros((lookup.n_domains, ticks), dtype=bool)
        intervals = self.down_intervals()
        if not intervals:
            return down
        codes = lookup.codes(list(intervals.keys()))
        for code, windows in zip(codes, intervals.values()):
            if code < 0:
                continue
            for start, stop in windows:
                lo = max(int(start), 1)
                hi = min(int(stop), ticks + 1)
                if lo < hi:
                    down[code, lo - 1 : hi - 1] = True
        return down


class ScheduledDowntime(TemporalFailureModel):
    """Explicit per-domain outage intervals over a fixed tick horizon.

    The deterministic temporal primitive: tests and what-if scenarios
    name exactly which domain is down at which ticks.  The degenerate
    configuration — every domain's interval running to the horizon, one
    new domain per tick — reproduces :class:`InstanceRemoval` curves bit
    for bit (the differential suite holds it to that).
    """

    def __init__(
        self,
        intervals: Mapping[str, Sequence[tuple[int, int]]],
        steps: int,
        name: str = "scheduled-downtime",
    ) -> None:
        super().__init__(name=name, steps=steps)
        validated: dict[str, list[tuple[int, int]]] = {}
        for domain, windows in intervals.items():
            cleaned: list[tuple[int, int]] = []
            for window in windows:
                start, stop = int(window[0]), int(window[1])
                if start < 1 or stop <= start or stop > steps + 1:
                    raise AnalysisError(
                        f"outage interval [{start}, {stop}) for {domain!r} falls "
                        f"outside ticks 1..{steps}"
                    )
                cleaned.append((start, stop))
            validated[domain] = sorted(cleaned)
        self._intervals = validated

    def down_intervals(self) -> dict[str, list[tuple[int, int]]]:
        return {domain: list(windows) for domain, windows in self._intervals.items()}


class TemporalChurn(TemporalFailureModel):
    """Stochastic churn sampled from the empirical outage distributions.

    For every domain, outage durations are bootstrap-resampled from the
    pooled empirical continuous-outage sample (Fig. 10,
    :meth:`AvailabilitySchedule.continuous_outage_days`) until the
    domain's accumulated downtime reaches its empirical downtime
    fraction (Figs. 7-8) of the horizon; each outage starts uniformly at
    random within the horizon.  Outages are then discretised onto
    ``steps`` probe ticks — a domain is down at tick ``t`` iff an outage
    covers the tick's probe instant, mirroring the paper's periodic
    probing (outages shorter than the probe spacing can be missed,
    exactly as they were by the five-minute prober).

    Sampling is fully determined by ``seed`` and the constructor
    arguments; two models built from the same inputs produce identical
    schedules.  :meth:`sampled_outage_days` and
    :meth:`realised_downtime_fractions` expose the raw draws so the
    statistical suite can hold the sampler to the source distributions
    (two-sample KS in ``tests/engine/test_failure_models.py``).
    """

    #: Bootstrap draws per domain are capped; a domain whose target
    #: downtime cannot be filled within the cap keeps what it has (only
    #: pathological duration/horizon ratios ever hit this).
    MAX_DRAWS_PER_DOMAIN = 256

    def __init__(
        self,
        domains: Sequence[str],
        outage_durations_days: Sequence[float],
        downtime_fraction_of: Mapping[str, float],
        steps: int = 96,
        horizon_days: float = 30.0,
        seed: int = 0,
        name: str = "temporal-churn",
    ) -> None:
        super().__init__(name=name, steps=steps)
        self.domains = tuple(domains)
        durations = np.asarray(list(outage_durations_days), dtype=np.float64)
        if durations.size == 0:
            raise AnalysisError("temporal churn needs a non-empty empirical outage sample")
        if not np.all(durations > 0):
            raise AnalysisError("empirical outage durations must be positive")
        if horizon_days <= 0:
            raise AnalysisError("the churn horizon must be positive")
        self.horizon_days = float(horizon_days)
        self.seed = seed
        self._durations = durations
        self._downtime = {
            str(domain): float(fraction)
            for domain, fraction in downtime_fraction_of.items()
        }
        for domain, fraction in self._downtime.items():
            if not 0.0 <= fraction <= 1.0:
                raise AnalysisError(
                    f"downtime fraction for {domain!r} must be in [0, 1], got {fraction}"
                )
        self._sampled: dict[str, list[tuple[float, float]]] | None = None
        self._drawn_durations: np.ndarray | None = None

    @classmethod
    def from_schedule(
        cls,
        schedule: "AvailabilitySchedule",
        domains: Sequence[str],
        steps: int = 96,
        horizon_days: float | None = None,
        seed: int = 0,
        name: str = "temporal-churn",
    ) -> "TemporalChurn":
        """Build churn straight from a scenario's ground-truth availability.

        The empirical sample pools every *recovered* merged outage across
        ``domains`` (outages still running at the end of the window are
        excluded, matching Fig. 10's only-came-back rule); per-domain
        downtime targets are the schedule's whole-window downtime
        fractions (the mean of its per-day fractions, Figs. 7-8).
        """
        durations: list[float] = []
        for domain in domains:
            for window in schedule.merged_outage_windows(domain):
                if window.end < schedule.window_minutes:
                    durations.append(window.duration / MINUTES_PER_DAY)
        if not durations:
            raise AnalysisError(
                "the availability schedule records no recovered outages to sample from"
            )
        downtime = {domain: schedule.downtime_fraction(domain) for domain in domains}
        horizon = (
            schedule.window_minutes / MINUTES_PER_DAY
            if horizon_days is None
            else horizon_days
        )
        return cls(
            domains,
            durations,
            downtime,
            steps=steps,
            horizon_days=horizon,
            seed=seed,
            name=name,
        )

    # -- sampling -------------------------------------------------------------

    def _sample(self) -> dict[str, list[tuple[float, float]]]:
        """Draw (and memoise) raw outage windows in days per domain."""
        if self._sampled is not None:
            return self._sampled
        rng = np.random.default_rng(self.seed)
        horizon = self.horizon_days
        sampled: dict[str, list[tuple[float, float]]] = {}
        drawn: list[float] = []
        for domain in self.domains:
            target = self._downtime.get(domain, 0.0)
            budget = target * horizon
            if budget <= 0.0:
                continue
            windows: list[tuple[float, float]] = []
            accumulated = 0.0
            for _ in range(self.MAX_DRAWS_PER_DOMAIN):
                if accumulated >= budget:
                    break
                duration = float(rng.choice(self._durations))
                start = float(rng.uniform(0.0, horizon))
                end = min(start + duration, horizon)
                if end > start:
                    windows.append((start, end))
                drawn.append(duration)
                accumulated += duration
            if windows:
                sampled[domain] = sorted(windows)
        self._sampled = sampled
        self._drawn_durations = np.asarray(drawn, dtype=np.float64)
        return sampled

    def sampled_outage_days(self) -> np.ndarray:
        """Every bootstrap-drawn outage duration (days), before clipping.

        The sample the statistical suite compares against the empirical
        source distribution: draws are with replacement from the source,
        so a two-sample KS test must not distinguish them.
        """
        self._sample()
        assert self._drawn_durations is not None
        return self._drawn_durations

    def realised_downtime_fractions(self) -> dict[str, float]:
        """Per-domain fraction of the horizon covered by sampled outages."""
        from repro.simtime import TimeWindow, merge_windows, total_duration

        scale = 10_000  # merge_windows works on integer minutes-like units
        fractions: dict[str, float] = {}
        for domain, windows in self._sample().items():
            merged = merge_windows(
                [
                    TimeWindow(int(start * scale), max(int(end * scale), int(start * scale) + 1))
                    for start, end in windows
                ]
            )
            fractions[domain] = total_duration(merged) / (self.horizon_days * scale)
        return fractions

    def down_intervals(self) -> dict[str, list[tuple[int, int]]]:
        """Sampled outages discretised to probe ticks.

        Tick ``t`` probes the instant ``(t - 0.5) * horizon / steps``; an
        outage ``[s, e)`` covers ticks ``ceil(s/dt + 0.5) ..
        ceil(e/dt + 0.5) - 1``.
        """
        ticks = self.steps
        dt = self.horizon_days / ticks
        intervals: dict[str, list[tuple[int, int]]] = {}
        for domain, windows in self._sample().items():
            converted: list[tuple[int, int]] = []
            for start, end in windows:
                first = int(np.ceil(start / dt + 0.5))
                stop = int(np.ceil(end / dt + 0.5))
                first = max(first, 1)
                stop = min(stop, ticks + 1)
                if first < stop:
                    converted.append((first, stop))
            if converted:
                intervals[domain] = sorted(converted)
        return intervals
