"""Differential suite for the sharded streaming engine.

Sharded evaluation must be **bit-identical** to the monolithic path for
every shard size — the composition law (per-step losses are additive
integer counts across toot ranges) admits no tolerance.  The grid here
crosses shard sizes {1, a prime, n_toots, n_toots + 7} (the prime forces
a ragged tail shard) with every placement backend — no-replication,
unweighted and weighted random, subscription, and dict-backed maps — and
the ``workers > 1`` thread path, which must be deterministic under any
thread scheduling because the loss tables are folded in shard order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import replication
from repro.engine import (
    ASRemoval,
    InstanceRemoval,
    ShardedIncidence,
    TootIncidence,
    availability_curves,
    kill_steps_batch,
    losses_per_step,
    run_availability_sweep,
    streaming_losses,
)
from repro.engine.sweep import StrategySpec
from repro.errors import AnalysisError

from tests.engine.test_equivalence import random_scenario
from tests.engine.test_placement import flat_toots

N_TOOTS = 97
PRIME_SHARD = 13  # 97 = 7 * 13 + 6: ragged tail shard of 6 toots
SHARD_SIZES = (1, PRIME_SHARD, N_TOOTS, N_TOOTS + 7)


@pytest.fixture(scope="module")
def corpus():
    """One small corpus shared by the grid: toots, domains, weights, failures."""
    domains = [f"d{i}.example" for i in range(17)]
    toots = flat_toots(N_TOOTS, domains, seed=5)
    rng = np.random.default_rng(5)
    weights = {domain: float(w) for domain, w in zip(domains, rng.random(len(domains)) + 0.05)}
    asn_of = {domain: int(asn) for domain, asn in zip(domains, rng.integers(1, 6, len(domains)))}
    failures = [
        InstanceRemoval(domains, steps=10, name="forward"),
        InstanceRemoval(domains[::-1], steps=17, name="reverse"),
        ASRemoval(asn_of, sorted(set(asn_of.values())), steps=4, name="ases"),
    ]
    return toots, domains, weights, failures


def backends(corpus):
    """Every placement backend the engine supports, freshly built."""
    toots, domains, weights, _ = corpus
    return {
        "no-rep": replication.no_replication(toots),
        "random": replication.random_replication(toots, domains, 3, seed=2),
        "weighted-random": replication.random_replication(
            toots, domains, 3, seed=2, weights=weights
        ),
    }


# -- shard geometry ---------------------------------------------------------------


class TestShardGeometry:
    def test_bounds_partition_the_corpus(self, corpus):
        toots, domains, _, _ = corpus
        arrays = replication.no_replication(toots).arrays
        for shard_size in SHARD_SIZES:
            sharded = ShardedIncidence.from_arrays(arrays, shard_size)
            bounds = sharded.shard_bounds()
            assert bounds[0][0] == 0 and bounds[-1][1] == N_TOOTS
            assert all(a < b for a, b in bounds)
            assert all(prev[1] == cur[0] for prev, cur in zip(bounds, bounds[1:]))
            assert sharded.n_shards == len(bounds) == -(-N_TOOTS // shard_size)

    def test_prime_shard_size_leaves_ragged_tail(self, corpus):
        toots, _, _, _ = corpus
        arrays = replication.no_replication(toots).arrays
        sharded = ShardedIncidence.from_arrays(arrays, PRIME_SHARD)
        *full, tail = [stop - start for start, stop in sharded.shard_bounds()]
        assert set(full) == {PRIME_SHARD}
        assert tail == N_TOOTS % PRIME_SHARD

    def test_shards_reassemble_the_full_matrix(self, corpus):
        toots, domains, _, _ = corpus
        placements = replication.random_replication(toots, domains, 2, seed=9)
        full = TootIncidence.from_placements(placements)
        sharded = ShardedIncidence.from_arrays(placements.arrays, PRIME_SHARD)
        from scipy import sparse

        stacked = sparse.vstack([shard.matrix for shard in sharded.shards()], format="csr")
        assert (stacked != full.matrix).nnz == 0

    def test_invalid_geometry_raises(self, corpus):
        toots, _, _, _ = corpus
        arrays = replication.no_replication(toots).arrays
        with pytest.raises(AnalysisError):
            ShardedIncidence.from_arrays(arrays, 0)
        sharded = ShardedIncidence.from_arrays(arrays, PRIME_SHARD)
        with pytest.raises(AnalysisError):
            sharded.shard(-1, 5)
        with pytest.raises(AnalysisError):
            sharded.shard(0, N_TOOTS + 1)


# -- differential grid: sharded == unsharded, bit for bit -------------------------


class TestShardedEquivalence:
    @pytest.mark.parametrize("shard_size", SHARD_SIZES)
    def test_every_backend_matches_unsharded(self, corpus, shard_size):
        _, _, _, failures = corpus
        for label, placements in backends(corpus).items():
            expected = availability_curves(placements, failures, shard_size=0)
            got = availability_curves(placements, failures, shard_size=shard_size)
            assert got == expected, (label, shard_size)

    @pytest.mark.parametrize("shard_size", SHARD_SIZES)
    def test_subscription_backend_matches_unsharded(self, shard_size):
        toots, graphs, domains, asn_of = random_scenario(3)
        placements = replication.subscription_replication(toots, graphs)
        failures = [
            InstanceRemoval(domains, steps=min(10, len(domains)), name="rank"),
            ASRemoval(asn_of, sorted(set(asn_of.values())), steps=3, name="ases"),
        ]
        expected = availability_curves(placements, failures, shard_size=0)
        got = availability_curves(placements, failures, shard_size=shard_size)
        assert got == expected

    def test_dict_backed_map_shards_via_row_views(self, corpus):
        _, _, _, failures = corpus
        arrays_backed = backends(corpus)["random"]
        dict_backed = replication.PlacementMap(
            strategy="dict", placements=dict(arrays_backed.placements)
        )
        expected = availability_curves(dict_backed, failures)
        got = availability_curves(dict_backed, failures, shard_size=PRIME_SHARD)
        assert got == expected

    def test_sweep_api_threads_the_knobs(self, corpus):
        toots, domains, _, failures = corpus
        strategies = [StrategySpec.none(), StrategySpec.random(2, seed=4)]
        baseline = run_availability_sweep(
            toots, strategies, failures, candidate_domains=domains
        )
        sharded = run_availability_sweep(
            toots,
            strategies,
            failures,
            candidate_domains=domains,
            shard_size=PRIME_SHARD,
            workers=2,
        )
        assert sharded.curves == baseline.curves


# -- the parallel path: deterministic under thread scheduling ---------------------


class TestWorkers:
    @pytest.mark.parametrize("shard_size", (1, PRIME_SHARD))
    def test_threaded_matches_serial_bit_identically(self, corpus, shard_size):
        _, _, _, failures = corpus
        placements = backends(corpus)["weighted-random"]
        serial = availability_curves(placements, failures, shard_size=shard_size)
        for _ in range(5):  # five runs: thread scheduling must never matter
            threaded = availability_curves(
                placements, failures, shard_size=shard_size, workers=3
            )
            assert threaded == serial

    def test_workers_alone_trigger_sharding(self, corpus, monkeypatch):
        _, _, _, failures = corpus
        placements = backends(corpus)["random"]
        expected = availability_curves(placements, failures, shard_size=0)

        def forbidden(cls, maps):
            raise AssertionError("workers>1 on an arrays backend must not build the full matrix")

        monkeypatch.setattr(
            TootIncidence, "from_placements", classmethod(forbidden)
        )
        got = availability_curves(placements, failures, workers=2)
        assert got == expected


# -- auto-shard threshold and knob validation -------------------------------------


class TestResolution:
    def test_auto_threshold_shards_without_full_incidence(self, corpus, monkeypatch):
        _, _, _, failures = corpus
        placements = backends(corpus)["random"]
        expected = availability_curves(placements, failures, shard_size=0)
        monkeypatch.setattr("repro.engine.sweep.AUTO_SHARD_THRESHOLD", 50)
        monkeypatch.setattr("repro.engine.sweep.DEFAULT_SHARD_SIZE", PRIME_SHARD)

        def forbidden(cls, maps):
            raise AssertionError("auto-sharding must not build the full matrix")

        monkeypatch.setattr(TootIncidence, "from_placements", classmethod(forbidden))
        got = availability_curves(placements, failures)
        assert got == expected

    def test_below_threshold_stays_monolithic(self, corpus):
        _, _, _, failures = corpus
        placements = backends(corpus)["random"]
        # default threshold is far above 97 toots: the memoised incidence
        # cache must still be hit (object identity via from_placements)
        availability_curves(placements, failures)
        assert TootIncidence.from_placements(placements) is TootIncidence.from_placements(
            placements
        )

    def test_negative_shard_size_raises(self, corpus):
        _, _, _, failures = corpus
        placements = backends(corpus)["random"]
        with pytest.raises(AnalysisError):
            availability_curves(placements, failures, shard_size=-1)

    def test_unsharded_with_workers_is_rejected(self, corpus):
        _, _, _, failures = corpus
        placements = backends(corpus)["random"]
        with pytest.raises(AnalysisError, match="workers > 1 needs shards"):
            availability_curves(placements, failures, shard_size=0, workers=4)


# -- new failure models: correlated groups and temporal schedules -----------------


class TestNewModelSharding:
    """The additive loss fold covers the correlated/temporal models too.

    Temporal schedules are non-monotone — domains go down and come back —
    yet each tick is one single-step column of integer losses, so the
    sharded streaming path must stay bit-identical at every shard size.
    """

    def _models(self, corpus):
        from repro.engine import CountryRemoval, HosterRemoval, ScheduledDowntime, TemporalChurn

        toots, domains, _, _ = corpus
        rng = np.random.default_rng(7)
        asn_of = {d: int(a) for d, a in zip(domains, rng.integers(1, 6, len(domains)))}
        hoster_of = {d: f"H{a % 3}" for d, a in asn_of.items()}
        country_of = {d: ("JP", "US", "FR")[i % 3] for i, d in enumerate(domains)}
        return [
            HosterRemoval(hoster_of, sorted(set(hoster_of.values())), steps=3, name="hosters"),
            CountryRemoval(country_of, ("JP", "US", "FR"), steps=3, name="countries"),
            ScheduledDowntime(
                # non-monotone: overlapping outages with recoveries
                {
                    domains[0]: [(1, 4), (8, 11)],
                    domains[1]: [(2, 3)],
                    domains[5]: [(5, 12)],
                    domains[9]: [(3, 6), (7, 9)],
                },
                steps=12,
                name="scheduled",
            ),
            TemporalChurn(
                domains,
                (0.5, 1.0, 2.0, 4.0),
                {d: 0.1 + 0.04 * i for i, d in enumerate(domains)},
                steps=15,
                horizon_days=20.0,
                seed=4,
                name="churn",
            ),
        ]

    @pytest.mark.parametrize("shard_size", SHARD_SIZES)
    def test_every_backend_matches_unsharded(self, corpus, shard_size):
        models = self._models(corpus)
        for label, placements in backends(corpus).items():
            expected = availability_curves(placements, models, shard_size=0)
            got = availability_curves(placements, models, shard_size=shard_size)
            assert got == expected, (label, shard_size)

    @pytest.mark.parametrize("shard_size", (1, PRIME_SHARD))
    def test_threaded_temporal_matches_serial(self, corpus, shard_size):
        models = self._models(corpus)
        placements = backends(corpus)["weighted-random"]
        serial = availability_curves(placements, models, shard_size=shard_size)
        threaded = availability_curves(
            placements, models, shard_size=shard_size, workers=3
        )
        assert threaded == serial

    def test_temporal_loss_table_matches_monolithic(self, corpus):
        """streaming_losses over tick columns == the monolithic batch, bit for bit."""
        from repro.engine import temporal_removal_matrix
        from repro.engine.kernels import losses_per_step_batch

        models = self._models(corpus)
        temporal = [m for m in models if m.temporal]
        placements = backends(corpus)["random"]
        incidence = TootIncidence.from_placements(placements)
        sharded = ShardedIncidence.from_arrays(placements.arrays, PRIME_SHARD)
        for model in temporal:
            removal_matrix = temporal_removal_matrix(model.down_matrix(incidence.lookup))
            steps = np.ones(removal_matrix.shape[1], dtype=np.int64)
            expected = losses_per_step_batch(incidence.matrix, removal_matrix, steps)
            got = streaming_losses(sharded, removal_matrix, steps)
            assert np.array_equal(got, expected), model.name


# -- streaming losses: the additive composition law -------------------------------


class TestStreamingLosses:
    def test_accumulated_losses_match_monolithic_kill_matrix(self, corpus):
        _, _, _, failures = corpus
        placements = backends(corpus)["weighted-random"]
        incidence = TootIncidence.from_placements(placements)
        steps = np.asarray([f.effective_steps() for f in failures], dtype=np.int64)
        removal_matrix = np.column_stack(
            [
                incidence.removal_vector(failure.removal_index(), int(steps[j]))
                for j, failure in enumerate(failures)
            ]
        )
        kill = kill_steps_batch(incidence.matrix, removal_matrix)
        sharded = ShardedIncidence.from_arrays(placements.arrays, PRIME_SHARD)
        losses = streaming_losses(sharded, removal_matrix, steps)
        assert losses.shape == (len(failures), int(steps.max()) + 1)
        for j in range(len(failures)):
            expected = losses_per_step(kill[:, j], int(steps[j]))
            assert np.array_equal(losses[j, : int(steps[j]) + 1], expected)
            assert not losses[j, int(steps[j]) + 1 :].any()

    def test_domain_vectors_match_the_unsharded_incidence(self, corpus):
        _, domains, _, _ = corpus
        placements = backends(corpus)["random"]
        incidence = TootIncidence.from_placements(placements)
        sharded = ShardedIncidence.from_arrays(placements.arrays, PRIME_SHARD)
        removal_index = {domains[0]: 1, domains[3]: 2, "unknown.example": 1, domains[5]: 99}
        assert np.array_equal(
            sharded.removal_vector(removal_index, steps=10),
            incidence.removal_vector(removal_index, steps=10),
        )
        asn_of = {domains[0]: 64512, domains[4]: 64513, "unknown.example": 7}
        assert np.array_equal(
            sharded.as_assignment(asn_of), incidence.as_assignment(asn_of)
        )
