"""Golden-number pins for the correlated and temporal failure experiments.

Measured once on the seeded tiny scenario (``build_scenario("tiny",
seed=11)`` via the session ``datasets`` fixture, the same environment as
``tests/engine/test_golden_numbers.py``) and pinned exactly: the whole
correlated/temporal pipeline — hoster/country grouping, ranked group
removal, bootstrap churn sampling, tick discretisation, the mixed
cumulative/temporal schedule assembly, and the batched loss reduction —
is deterministic, so any drift in these numbers is an unintended
semantic change, not noise.  Re-measure and update deliberately if a
change is *meant* to alter them.
"""

from __future__ import annotations

import pytest

from repro.experiments.context import ExperimentContext
from repro.reporting.experiments import get_experiment

EXACT = dict(rel=1e-12, abs=0.0)

# Measured on the seeded tiny scenario; update only on deliberate changes.
GOLDEN_CORRELATED = {
    "top1_hosters/by_users[no-rep]": 0.7339531557303773,
    "top1_hosters/by_users[s-rep]": 0.8710888610763454,
    "top1_hosters/by_users[n=2]": 0.990523869122117,
    "top1_countries/by_users[no-rep]": 0.6011085285177902,
    "top1_countries/by_users[s-rep]": 0.8043983550867155,
    "top1_countries/by_users[n=2]": 0.9583407831217593,
}
GOLDEN_TOP_HOSTER = "OVH"
GOLDEN_TOP_COUNTRY = "JP"

GOLDEN_CHURN = {
    "mean_availability[no-rep]": 0.8622335459006297,
    "min_availability[no-rep]": 0.5785803683175398,
    "mean_availability[s-rep]": 0.9122265927647655,
    "min_availability[s-rep]": 0.7421777221526908,
    "mean_availability[n=2]": 0.9957772115938575,
    "min_availability[n=2]": 0.9699624530663329,
}


@pytest.fixture(scope="module")
def ctx(datasets) -> ExperimentContext:
    return ExperimentContext.from_datasets(datasets)


class TestCorrelatedGolden:
    def test_scalars_pinned(self, ctx):
        result = get_experiment("correlated").run(ctx)
        for key, expected in GOLDEN_CORRELATED.items():
            assert result.scalars[key] == pytest.approx(expected, **EXACT), key

    def test_removal_order_pinned(self, ctx):
        result = get_experiment("correlated").run(ctx)
        assert result.scalars["top_hoster"] == GOLDEN_TOP_HOSTER
        assert result.scalars["top_country"] == GOLDEN_TOP_COUNTRY

    def test_paper_direction_holds(self, ctx):
        """Replication recovers availability under correlated outages too."""
        result = get_experiment("correlated").run(ctx)
        for group in ("hosters", "countries"):
            none = result.scalars[f"top1_{group}/by_users[no-rep]"]
            srep = result.scalars[f"top1_{group}/by_users[s-rep]"]
            rand = result.scalars[f"top1_{group}/by_users[n=2]"]
            assert none < srep < rand


class TestChurnGolden:
    def test_scalars_pinned(self, ctx):
        result = get_experiment("churn").run(ctx)
        assert result.scalars["churn_ticks"] == 48
        for key, expected in GOLDEN_CHURN.items():
            assert result.scalars[key] == pytest.approx(expected, **EXACT), key

    def test_paper_direction_holds(self, ctx):
        """Replication keeps toots reachable through churn as well."""
        result = get_experiment("churn").run(ctx)
        assert (
            result.scalars["mean_availability[no-rep]"]
            < result.scalars["mean_availability[s-rep]"]
            < result.scalars["mean_availability[n=2]"]
        )
        # even the worst probed tick keeps most toots with 2 random replicas
        assert result.scalars["min_availability[n=2]"] > 0.9
