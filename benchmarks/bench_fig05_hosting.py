"""Fig. 5 — top-5 hosting countries and ASes.

Paper shape: Japan leads (25.5% of instances, 41% of users), followed by
the US and France; the top ASes (Amazon, Cloudflare, Sakura, OVH,
DigitalOcean) host a disproportionate share of users — the top three hold
almost two thirds.
"""

from __future__ import annotations

from repro.core import hosting
from repro.reporting import format_percentage, format_table

from benchmarks.conftest import emit


def test_fig05_country_breakdown(benchmark, data):
    shares = benchmark(lambda: hosting.country_breakdown(data.instances, top=5))
    rows = [
        [share.key, format_percentage(share.instance_share),
         format_percentage(share.toot_share), format_percentage(share.user_share)]
        for share in shares
    ]
    emit("Fig. 5 (top) — top-5 countries", format_table(["country", "instances", "toots", "users"], rows))

    assert shares[0].key == "JP"
    japan = shares[0]
    # Japan attracts proportionally more users than instances (paper: 25.5% vs 41%)
    assert japan.user_share > japan.instance_share


def test_fig05_as_breakdown(benchmark, data):
    shares = benchmark(lambda: hosting.asn_breakdown(data.instances, top=5))
    rows = [
        [share.key, format_percentage(share.instance_share),
         format_percentage(share.toot_share), format_percentage(share.user_share)]
        for share in shares
    ]
    top3 = hosting.top_as_user_share(data.instances, top=3)
    emit(
        "Fig. 5 (bottom) — top-5 ASes",
        format_table(["AS", "instances", "toots", "users"], rows)
        + f"\ntop-3 AS user share: {format_percentage(top3)} (paper: 62%)",
    )
    # the top AS hosts a much larger share of users than of instances
    assert shares[0].user_share > shares[0].instance_share
    assert top3 > 0.4
