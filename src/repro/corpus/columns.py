"""The corpus column schema: one integer/bool array per toot attribute.

A corpus shard is one ``.npz`` file holding the columns of a contiguous
toot range.  Strings appear exactly once, in the intern tables
(``tables.npz``: domains, authors, hashtags) plus the per-shard URL
column; everything else is integer or boolean, so a shard's placement
inputs are a few flat arrays instead of a list of ``TootRecord``
objects.  Hashtags are ragged and therefore stored CSR-style
(``hashtag_codes`` + ``hashtag_indptr``), with the indptr local to the
shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.errors import DatasetError

#: Manifest schema tag — bumped on any incompatible layout change.
CORPUS_SCHEMA = "repro.corpus/v1"

#: Every column a shard must contain, with its storage dtype (``None``
#: for the variable-width unicode URL column).
COLUMN_DTYPES: dict[str, np.dtype | None] = {
    "url": None,
    "toot_id": np.dtype(np.int64),
    "home_code": np.dtype(np.int32),
    "author_code": np.dtype(np.int32),
    "collected_code": np.dtype(np.int32),
    "created_minute": np.dtype(np.int64),
    "is_boost": np.dtype(np.bool_),
    "sensitive": np.dtype(np.bool_),
    "media_attachments": np.dtype(np.int32),
    "favourites": np.dtype(np.int32),
    "hashtag_codes": np.dtype(np.int32),
    "hashtag_indptr": np.dtype(np.int64),
}

COLUMN_NAMES: tuple[str, ...] = tuple(COLUMN_DTYPES)


@dataclass(frozen=True)
class TootColumns:
    """The columns of one contiguous toot range (usually one shard).

    ``home_code``/``author_code``/``collected_code``/``hashtag_codes``
    index into the corpus intern tables (domains, authors, hashtags);
    ``hashtag_indptr`` is the local CSR pointer over ``hashtag_codes``
    (length ``n_toots + 1``).
    """

    url: np.ndarray
    toot_id: np.ndarray
    home_code: np.ndarray
    author_code: np.ndarray
    collected_code: np.ndarray
    created_minute: np.ndarray
    is_boost: np.ndarray
    sensitive: np.ndarray
    media_attachments: np.ndarray
    favourites: np.ndarray
    hashtag_codes: np.ndarray
    hashtag_indptr: np.ndarray

    @property
    def n_toots(self) -> int:
        return self.home_code.shape[0]

    @classmethod
    def from_mapping(cls, arrays: Mapping[str, np.ndarray]) -> "TootColumns":
        """Bundle loaded shard members, checking the schema."""
        missing = [name for name in COLUMN_NAMES if name not in arrays]
        if missing:
            raise DatasetError(f"corpus shard is missing columns: {', '.join(missing)}")
        columns = cls(**{name: np.asarray(arrays[name]) for name in COLUMN_NAMES})
        columns.validate()
        return columns

    def validate(self) -> "TootColumns":
        """Check cross-column shape invariants; returns self for chaining."""
        n = self.n_toots
        for name in COLUMN_NAMES:
            if name in ("hashtag_codes", "hashtag_indptr"):
                continue
            if getattr(self, name).shape != (n,):
                raise DatasetError(f"corpus column {name!r} has inconsistent length")
        if self.hashtag_indptr.shape != (n + 1,):
            raise DatasetError("hashtag_indptr must have one entry per toot plus one")
        if n and self.hashtag_indptr[0] != 0:
            raise DatasetError("hashtag_indptr must start at zero")
        if int(self.hashtag_indptr[-1]) != self.hashtag_codes.shape[0]:
            raise DatasetError("hashtag_indptr does not cover hashtag_codes")
        if np.any(np.diff(self.hashtag_indptr) < 0):
            raise DatasetError("hashtag_indptr must be non-decreasing")
        return self

    def hashtags_of(self, row: int, table: Sequence[str]) -> tuple[str, ...]:
        """The hashtag strings of one toot, resolved against the intern table."""
        lo, hi = int(self.hashtag_indptr[row]), int(self.hashtag_indptr[row + 1])
        return tuple(table[code] for code in self.hashtag_codes[lo:hi])

    def iter_hashtag_rows(self) -> Iterator[np.ndarray]:
        """Per-toot hashtag code slices, in row order."""
        indptr = self.hashtag_indptr
        for row in range(self.n_toots):
            yield self.hashtag_codes[indptr[row] : indptr[row + 1]]
