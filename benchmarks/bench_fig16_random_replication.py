"""Fig. 16 — random replication vs subscription replication vs none.

Paper shape: replicating each toot onto n random instances beats
subscription-based replication for the same budget (after removing 25
instances, S-Rep keeps 95% of toots available while a single random
replica already keeps 99.2%); curves for n > 4 are indistinguishable from
full availability.

The whole strategy grid — no replication, subscription, six random
replica budgets, and a capacity-weighted variant — is one engine sweep
call sharing the removal schedule.  Placements are built by the
vectorised builders (one batched draw per strategy, Gumbel top-k for the
weighted spec; see :mod:`repro.engine.placement`), so constructing the
grid no longer dominates the benchmark the way the per-toot
``rng.choice`` loop did.
"""

from __future__ import annotations

from repro.core import resilience
from repro.engine import InstanceRemoval, StrategySpec, run_availability_sweep
from repro.reporting import format_sweep_table

from benchmarks.conftest import emit

REPLICA_COUNTS = (1, 2, 3, 4, 7, 9)
STEPS = 50


def test_fig16_random_replication(benchmark, data):
    ranking = resilience.rank_instances(
        data.graphs.federation_graph,
        toots_per_instance=data.toots.toots_per_instance(),
        by="toots",
    )
    domains = data.instances.domains()
    capacity = {d: 1.0 + users for d, users in data.instances.users_per_instance().items()}
    strategies = [
        StrategySpec.none(name="no-rep"),
        StrategySpec.subscription(name="s-rep"),
        *(StrategySpec.random(n, seed=7, name=f"n={n}") for n in REPLICA_COUNTS),
        StrategySpec.random(2, seed=7, weights=capacity, name="n=2/weighted"),
    ]
    failure = InstanceRemoval(ranking, steps=STEPS, name="instances")

    def run():
        return run_availability_sweep(
            data.toots,
            strategies,
            [failure],
            graphs=data.graphs,
            candidate_domains=domains,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    removals = (5, 10, 25, 50)
    emit(
        "Fig. 16 — toot availability when removing top instances (by toots)",
        format_sweep_table(result, "instances", removals),
    )

    at25 = result.compare("instances", 25)
    # ordering: no replication < subscription replication <= random replication
    assert at25["no-rep"] < at25["s-rep"]
    assert at25["n=1"] >= at25["s-rep"] - 0.05
    assert at25["n=4"] >= at25["n=1"] - 1e-9
    # high replica counts keep nearly everything available (paper: >99%)
    assert at25["n=7"] > 0.95
    # weighting towards big instances concentrates replicas on exactly the
    # targets of the removal schedule, so it cannot beat uniform placement
    assert at25["n=2/weighted"] <= at25["n=2"] + 0.02
