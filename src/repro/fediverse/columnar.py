"""Columnar scenario generation: whole-population numpy columns, no objects.

The object generator (:class:`~repro.fediverse.workload.ScenarioGenerator`)
builds every toot, follow and login as a Python object routed through
:class:`~repro.fediverse.network.FediverseNetwork` — faithful, but ~2 GiB
and minutes of wall clock at the ``large`` preset before a crawl even
starts.  :class:`ColumnarScenarioGenerator` draws the same distributions
as whole numpy columns instead: one array per attribute across the whole
population, one :class:`ColumnarScenario` handle at the end.

The handle preserves the crawler-facing surface without materialising
anything: :meth:`ColumnarScenario.timeline_page` serves
``Timeline.page``-shaped payload pages straight from the columns,
:meth:`ColumnarScenario.write_corpus` streams the federated-timeline
crawl of every online instance into a
:class:`~repro.corpus.writer.CorpusWriter` (never holding more than one
instance's render chunk), and :meth:`ColumnarScenario.write_graph`
streams the follower crawl into a
:class:`~repro.corpus.graph.GraphWriter`.  For differential testing,
:meth:`ColumnarScenario.to_network` materialises the *same* columns into
a real :class:`FediverseNetwork`, so the streamed corpus/graph can be
proven identical to what the real crawlers collect.

The columnar generator deliberately has its own RNG stream: the legacy
per-event draw order cannot be reproduced by vectorised draws, so a
given seed yields *statistically* matched but not bit-identical
populations across the two generators (both are pinned by golden stats
in the test-suite).  Within the columnar path everything is exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import SimulationError
from repro.fediverse.certificates import CertificateRegistry
from repro.fediverse.entities import (
    InstanceDescriptor,
    RegistrationPolicy,
    UserRef,
    Visibility,
)
from repro.fediverse.network import FediverseNetwork
from repro.fediverse.timeline import DEFAULT_PAGE_SIZE, ColumnarTimeline
from repro.fediverse.uptime import AvailabilitySchedule
from repro.fediverse.workload import (
    ScenarioConfig,
    ScenarioGenerator,
    scenario_config,
)
from repro.simtime import MINUTES_PER_DAY, SimClock
from repro.stats.distributions import sample_power_law

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.corpus.graph import GraphWriter
    from repro.corpus.writer import CorpusWriter

#: Rows rendered per ``write_corpus`` chunk: bounds the per-chunk string
#: working set while amortising the numpy slicing.
_RENDER_CHUNK_ROWS = 200_000


def _weighted_pick(cumulative: np.ndarray, base: np.ndarray, total: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Inverse-CDF sampling inside segments of a global cumulative-sum.

    ``cumulative`` is the inclusive cumsum of the weights; a draw for a
    segment ``[base, base + total)`` lands on the index whose weight mass
    covers ``base + u * total``.
    """
    x = base + u * total
    picks = np.searchsorted(cumulative, x, side="right")
    return np.minimum(picks, cumulative.size - 1)


class ColumnarScenarioGenerator(ScenarioGenerator):
    """Generates a :class:`ColumnarScenario` instead of an object network.

    Instance descriptors, availability and certificates reuse the parent
    generator's code verbatim (they are small); users, follows, toots,
    boosts and logins are drawn as whole columns.
    """

    def generate(self) -> "ColumnarScenario":  # type: ignore[override]
        cfg = self.config
        clock = SimClock(start_date=cfg.start_date, window_days=cfg.window_days)
        descriptors = self._build_descriptors()

        user_instance, user_created, attractiveness = self._users_columns(descriptors)
        follow_src, follow_dst = self._follow_columns(
            descriptors, user_instance, user_created, attractiveness
        )
        toots = self._toot_columns(descriptors, user_instance, user_created, attractiveness)
        login_user, login_minute = self._login_columns(descriptors, user_instance, user_created)

        # Availability and certificates reuse the object generator's code;
        # it only touches ``network.availability`` / ``network.certificates``.
        holder = SimpleNamespace(
            availability=AvailabilitySchedule(cfg.window_minutes),
            certificates=CertificateRegistry(),
        )
        self._generate_availability(holder, descriptors)
        self._issue_certificates(holder, descriptors)

        return ColumnarScenario(
            config=cfg,
            clock=clock,
            descriptors=descriptors,
            availability=holder.availability,
            certificates=holder.certificates,
            user_instance=user_instance,
            user_created=user_created,
            follow_src=follow_src,
            follow_dst=follow_dst,
            toot_author=toots["author"],
            toot_created=toots["created"],
            toot_private=toots["private"],
            toot_tag=toots["tag"],
            toot_cw=toots["cw"],
            toot_media=toots["media"],
            toot_boost_of=toots["boost_of"],
            login_user=login_user,
            login_minute=login_minute,
        )

    # -- users ----------------------------------------------------------------

    def _users_columns(
        self, descriptors: list[InstanceDescriptor]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        cfg = self.config
        weights = self._popularity_weights / self._popularity_weights.sum()
        extra = cfg.total_users - cfg.n_instances
        allocation = np.ones(cfg.n_instances, dtype=np.int64)
        if extra > 0:
            allocation += self.rng.multinomial(extra, weights)

        attractiveness = sample_power_law(
            self.rng,
            cfg.total_users,
            exponent=cfg.user_attractiveness_exponent,
            minimum=1.0,
            maximum=max(10.0, cfg.total_users / 2.0),
        )
        user_instance = np.repeat(
            np.arange(cfg.n_instances, dtype=np.int32), allocation
        )
        instance_created = np.asarray([d.created_at for d in descriptors], dtype=np.int64)
        base = instance_created[user_instance]
        span = np.maximum(1, cfg.window_minutes - base)
        user_created = (
            base + self.rng.beta(1.3, 1.8, size=cfg.total_users) * span
        ).astype(np.int64)
        return user_instance, user_created, attractiveness

    # -- follower graph --------------------------------------------------------

    def _follow_columns(
        self,
        descriptors: list[InstanceDescriptor],
        user_instance: np.ndarray,
        user_created: np.ndarray,
        attractiveness: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        n_users = user_instance.size
        n_instances = len(descriptors)

        raw_degrees = sample_power_law(
            self.rng,
            n_users,
            exponent=cfg.follow_degree_exponent,
            minimum=1.0,
            maximum=float(cfg.max_follows_per_user),
        )
        scale = cfg.mean_follows_per_user / max(raw_degrees.mean(), 1e-9)
        degrees = np.minimum(
            np.maximum(1, np.round(raw_degrees * scale)).astype(np.int64),
            min(cfg.max_follows_per_user, n_users - 1),
        )

        owner = np.repeat(np.arange(n_users, dtype=np.int64), degrees)
        n_draws = owner.size

        # Users are contiguous per instance, so the instance-local pools are
        # segments of one global attractiveness cumsum.
        cumulative = np.cumsum(attractiveness)
        seg = np.zeros(n_instances + 1, dtype=np.int64)
        np.cumsum(np.bincount(user_instance, minlength=n_instances), out=seg[1:])
        seg_base = np.concatenate([[0.0], cumulative])[seg[:-1]]
        seg_total = np.add.reduceat(attractiveness, seg[:-1])
        instance_size = np.diff(seg)

        # Country pools are scattered, so order users by country once and
        # sample inside that ordering's segments.
        country_names = sorted({d.country for d in descriptors})
        country_index = {name: i for i, name in enumerate(country_names)}
        instance_country = np.asarray(
            [country_index[d.country] for d in descriptors], dtype=np.int64
        )
        user_country = instance_country[user_instance]
        country_order = np.argsort(user_country, kind="stable")
        country_cum = np.cumsum(attractiveness[country_order])
        country_sizes = np.bincount(user_country, minlength=len(country_names))
        cseg = np.zeros(len(country_names) + 1, dtype=np.int64)
        np.cumsum(country_sizes, out=cseg[1:])
        country_base = np.concatenate([[0.0], country_cum])[cseg[:-1]]
        country_total = np.empty(len(country_names))
        for c in range(len(country_names)):
            country_total[c] = country_cum[cseg[c + 1] - 1] - country_base[c] if country_sizes[c] else 0.0

        owner_instance = user_instance[owner].astype(np.int64)
        owner_country = user_country[owner]
        band = self.rng.random(n_draws)
        p_local, p_country = cfg.same_instance_follow_prob, cfg.same_country_follow_prob
        # Draws landing in a band whose pool is trivial (a single user)
        # fall through to the global pool, like the object generator.
        is_local = (band < p_local) & (instance_size[owner_instance] > 1)
        is_country = (
            ~is_local
            & (band >= p_local)
            & (band < p_local + p_country)
            & (country_sizes[owner_country] > 1)
        )
        is_global = ~is_local & ~is_country

        target = np.empty(n_draws, dtype=np.int64)
        if is_local.any():
            inst = owner_instance[is_local]
            target[is_local] = _weighted_pick(
                cumulative, seg_base[inst], seg_total[inst], self.rng.random(int(is_local.sum()))
            )
        if is_country.any():
            ctry = owner_country[is_country]
            picks = _weighted_pick(
                country_cum,
                country_base[ctry],
                country_total[ctry],
                self.rng.random(int(is_country.sum())),
            )
            target[is_country] = country_order[picks]
        if is_global.any():
            total = cumulative[-1]
            target[is_global] = _weighted_pick(
                cumulative,
                np.zeros(int(is_global.sum())),
                np.full(int(is_global.sum()), total),
                self.rng.random(int(is_global.sum())),
            )

        # Dedup per owner and drop self-follows; np.unique's owner-major,
        # target-ascending order matches the object generator's per-user
        # ``sorted(chosen)`` emission order.
        keep = owner != target
        keys = np.unique(owner[keep] * np.int64(n_users) + target[keep])
        follow_src = (keys // n_users).astype(np.int32)
        follow_dst = (keys % n_users).astype(np.int32)
        return follow_src, follow_dst

    # -- toots and boosts -------------------------------------------------------

    def _toot_columns(
        self,
        descriptors: list[InstanceDescriptor],
        user_instance: np.ndarray,
        user_created: np.ndarray,
        attractiveness: np.ndarray,
    ) -> dict[str, np.ndarray]:
        cfg = self.config
        n_users = user_instance.size
        closed = np.asarray(
            [d.registration is RegistrationPolicy.CLOSED for d in descriptors],
            dtype=bool,
        )
        raw = self.rng.lognormal(mean=0.0, sigma=cfg.toots_per_user_sigma, size=n_users)
        multipliers = np.where(closed[user_instance], cfg.closed_toot_multiplier, 1.0)
        raw = raw * multipliers * (attractiveness ** cfg.toot_attractiveness_coupling)
        scale = cfg.total_toots_target / max(raw.sum(), 1e-9)
        budgets = np.maximum(0, np.round(raw * scale)).astype(np.int64)

        window = cfg.window_minutes
        author0 = np.repeat(np.arange(n_users, dtype=np.int32), budgets)
        n_base = author0.size
        base = user_created[author0.astype(np.int64)]
        times = (
            base + self.rng.beta(1.6, 1.0, size=n_base) * np.maximum(1, window - base)
        ).astype(np.int64)
        order = np.lexsort((author0, times))  # (time, author) like postings.sort()
        author = author0[order]
        created = times[order]

        private = self.rng.random(n_base) < cfg.private_toot_fraction
        has_tag = self.rng.random(n_base) < 0.3
        tag = np.where(
            has_tag,
            self.rng.integers(0, cfg.hashtag_vocabulary, size=n_base),
            -1,
        ).astype(np.int32)
        cw = self.rng.random(n_base) < cfg.content_warning_fraction
        media = (self.rng.random(n_base) < cfg.media_fraction).astype(np.int8)

        # Boosts: public base toots weighted by media + hashtags, boosted by
        # uniformly random users shortly after the original (or the booster's
        # own sign-up, whichever is later).
        public_rows = np.flatnonzero(~private)
        n_boosts = int(cfg.boost_fraction * public_rows.size)
        if n_boosts:
            boost_weights = (
                1.0 + media[public_rows].astype(np.float64) + (tag[public_rows] >= 0)
            )
            probs = boost_weights / boost_weights.sum()
            boosters = self.rng.integers(0, n_users, size=n_boosts)
            originals = public_rows[
                self.rng.choice(public_rows.size, size=n_boosts, p=probs)
            ]
            delay = self.rng.integers(1, MINUTES_PER_DAY * 3, size=n_boosts)
            boost_created = np.minimum(
                window - 1,
                np.maximum(created[originals] + 1, user_created[boosters]) + delay,
            ).astype(np.int64)
            author = np.concatenate([author, boosters.astype(np.int32)])
            created = np.concatenate([created, boost_created])
            private = np.concatenate([private, np.zeros(n_boosts, dtype=bool)])
            tag = np.concatenate([tag, np.full(n_boosts, -1, dtype=np.int32)])
            cw = np.concatenate([cw, np.zeros(n_boosts, dtype=bool)])
            media = np.concatenate([media, np.zeros(n_boosts, dtype=np.int8)])
            boost_of = np.concatenate(
                [np.zeros(n_base, dtype=np.int64), originals + 1]
            )
        else:
            boost_of = np.zeros(n_base, dtype=np.int64)

        return {
            "author": author,
            "created": created,
            "private": private,
            "tag": tag,
            "cw": cw,
            "media": media,
            "boost_of": boost_of,
        }

    # -- engagement -------------------------------------------------------------

    def _login_columns(
        self,
        descriptors: list[InstanceDescriptor],
        user_instance: np.ndarray,
        user_created: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        weeks = max(1, cfg.window_days // 7)
        seg = np.zeros(len(descriptors) + 1, dtype=np.int64)
        np.cumsum(np.bincount(user_instance, minlength=len(descriptors)), out=seg[1:])
        users_chunks: list[np.ndarray] = []
        minutes_chunks: list[np.ndarray] = []
        for index, descriptor in enumerate(descriptors):
            lo, hi = int(seg[index]), int(seg[index + 1])
            if hi <= lo:
                continue
            if descriptor.registration is RegistrationPolicy.CLOSED:
                a, b = cfg.closed_activity_beta
            else:
                a, b = cfg.open_activity_beta
            activity_level = float(self.rng.beta(a, b))
            local_created = user_created[lo:hi]
            for week in range(weeks):
                week_start = week * 7 * MINUTES_PER_DAY
                engaged = self.rng.random(hi - lo) < activity_level * self.rng.uniform(0.6, 0.9)
                chosen = engaged & (local_created <= week_start + 7 * MINUTES_PER_DAY)
                count = int(chosen.sum())
                if not count:
                    continue
                users_chunks.append((np.flatnonzero(chosen) + lo).astype(np.int32))
                minutes_chunks.append(
                    week_start + self.rng.integers(0, 7 * MINUTES_PER_DAY, size=count)
                )
        if not users_chunks:
            return np.empty(0, dtype=np.int32), np.empty(0, dtype=np.int64)
        return (
            np.concatenate(users_chunks),
            np.concatenate(minutes_chunks).astype(np.int64),
        )


@dataclass
class ColumnarScenario:
    """A generated fediverse held as numpy columns.

    Users are numbered ``0..n_users-1`` contiguously per instance (user
    ``i`` is ``user{i}@<domain of their instance>``); toot ids are
    ``row + 1`` in posting order, matching the network's monotonic id
    allocator; ``toot_boost_of`` is the original's toot id or 0.
    """

    config: ScenarioConfig
    clock: SimClock
    descriptors: list[InstanceDescriptor]
    availability: AvailabilitySchedule
    certificates: CertificateRegistry
    user_instance: np.ndarray
    user_created: np.ndarray
    follow_src: np.ndarray
    follow_dst: np.ndarray
    toot_author: np.ndarray
    toot_created: np.ndarray
    toot_private: np.ndarray
    toot_tag: np.ndarray
    toot_cw: np.ndarray
    toot_media: np.ndarray
    toot_boost_of: np.ndarray
    login_user: np.ndarray
    login_minute: np.ndarray
    _cache: dict[str, Any] = field(default_factory=dict, repr=False)

    # -- structure -------------------------------------------------------------

    @property
    def n_instances(self) -> int:
        return len(self.descriptors)

    @property
    def n_users(self) -> int:
        return int(self.user_instance.size)

    @property
    def n_toots(self) -> int:
        return int(self.toot_author.size)

    def domains(self) -> list[str]:
        """Every instance domain, sorted (like the network's)."""
        return sorted(d.domain for d in self.descriptors)

    def _domain_index(self) -> dict[str, int]:
        if "domain_index" not in self._cache:
            self._cache["domain_index"] = {
                d.domain: i for i, d in enumerate(self.descriptors)
            }
        return self._cache["domain_index"]

    def _user_segments(self) -> np.ndarray:
        if "user_seg" not in self._cache:
            seg = np.zeros(self.n_instances + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(self.user_instance, minlength=self.n_instances), out=seg[1:]
            )
            self._cache["user_seg"] = seg
        return self._cache["user_seg"]

    def _instance_domains(self) -> list[str]:
        if "instance_domains" not in self._cache:
            self._cache["instance_domains"] = [d.domain for d in self.descriptors]
        return self._cache["instance_domains"]

    # -- derived graph structure -----------------------------------------------

    def _delivery_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Author → subscribing remote instances (CSR over authors).

        Instance ``j`` subscribes to author ``a`` when at least one user
        on ``j`` follows ``a`` from another instance — exactly the set of
        delivery targets the federation router pushes ``a``'s public
        toots to.
        """
        if "delivery" not in self._cache:
            inst = self.user_instance
            src_inst = inst[self.follow_src].astype(np.int64)
            dst = self.follow_dst.astype(np.int64)
            cross = src_inst != inst[self.follow_dst]
            keys = np.unique(dst[cross] * self.n_instances + src_inst[cross])
            authors = keys // self.n_instances
            targets = (keys % self.n_instances).astype(np.int32)
            indptr = np.zeros(self.n_users + 1, dtype=np.int64)
            np.cumsum(np.bincount(authors, minlength=self.n_users), out=indptr[1:])
            self._cache["delivery"] = (indptr, targets)
        return self._cache["delivery"]

    def _receivers_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Instance → remote authors delivered to it (CSR over instances)."""
        if "receivers" not in self._cache:
            indptr, targets = self._delivery_csr()
            authors = np.repeat(
                np.arange(self.n_users, dtype=np.int64), np.diff(indptr)
            )
            order = np.argsort(targets, kind="stable")
            inst_indptr = np.zeros(self.n_instances + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(targets, minlength=self.n_instances), out=inst_indptr[1:]
            )
            self._cache["receivers"] = (inst_indptr, authors[order])
        return self._cache["receivers"]

    def _toots_by_author(self) -> tuple[np.ndarray, np.ndarray]:
        """All toot rows grouped by author (CSR over authors)."""
        if "toots_by_author" not in self._cache:
            order = np.argsort(self.toot_author, kind="stable").astype(np.int64)
            indptr = np.zeros(self.n_users + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(self.toot_author, minlength=self.n_users), out=indptr[1:]
            )
            self._cache["toots_by_author"] = (indptr, order)
        return self._cache["toots_by_author"]

    def _public_toots_by_author(self) -> tuple[np.ndarray, np.ndarray]:
        """Public toot rows grouped by author (CSR over authors)."""
        if "public_by_author" not in self._cache:
            public_rows = np.flatnonzero(~self.toot_private)
            authors = self.toot_author[public_rows]
            order = np.argsort(authors, kind="stable")
            indptr = np.zeros(self.n_users + 1, dtype=np.int64)
            np.cumsum(np.bincount(authors, minlength=self.n_users), out=indptr[1:])
            self._cache["public_by_author"] = (indptr, public_rows[order])
        return self._cache["public_by_author"]

    def toot_counts_per_user(self) -> np.ndarray:
        """Locally-authored toots per user (boosts and private included)."""
        if "toot_counts" not in self._cache:
            self._cache["toot_counts"] = np.bincount(
                self.toot_author, minlength=self.n_users
            )
        return self._cache["toot_counts"]

    # -- timelines -------------------------------------------------------------

    def timeline_rows(self, domain: str) -> np.ndarray:
        """Row indices on ``domain``'s federated timeline, id-ascending.

        Local toots (public and private) plus the public toots of every
        remote author at least one local user follows — what federation
        delivery leaves on the real instance's federated timeline.
        """
        index = self._domain_index()[domain]
        seg = self._user_segments()
        lo, hi = int(seg[index]), int(seg[index + 1])
        all_indptr, all_rows = self._toots_by_author()
        local = all_rows[all_indptr[lo] : all_indptr[hi]]

        recv_indptr, recv_authors = self._receivers_csr()
        remote_authors = recv_authors[recv_indptr[index] : recv_indptr[index + 1]]
        pub_indptr, pub_rows = self._public_toots_by_author()
        pieces = [local]
        for author in remote_authors.tolist():
            pieces.append(pub_rows[pub_indptr[author] : pub_indptr[author + 1]])
        rows = np.concatenate(pieces) if len(pieces) > 1 else local
        rows.sort()
        return rows

    def instance_timeline(self, domain: str) -> ColumnarTimeline:
        """The federated timeline of ``domain`` as a :class:`ColumnarTimeline`."""
        rows = self.timeline_rows(domain)
        return ColumnarTimeline(rows + 1, ~self.toot_private[rows])

    def _user_handle_tables(self) -> tuple[list[str], list[str]]:
        """Per-user ``user{i}@domain`` handles and home domains (cached)."""
        if "handles" not in self._cache:
            domains = self._instance_domains()
            user_domains = [domains[i] for i in self.user_instance.tolist()]
            handles = [
                f"user{index}@{domain}" for index, domain in enumerate(user_domains)
            ]
            self._cache["handles"] = (handles, user_domains)
        return self._cache["handles"]

    def _tag_names(self) -> list[str]:
        if "tags" not in self._cache:
            self._cache["tags"] = [
                f"tag{i}" for i in range(self.config.hashtag_vocabulary)
            ]
        return self._cache["tags"]

    def render_rows(self, rows: np.ndarray, collected_from: str) -> list[dict[str, Any]]:
        """Render toot rows as timeline-API payload dicts (crawler shape)."""
        handles, user_domains = self._user_handle_tables()
        tag_names = self._tag_names()
        payloads: list[dict[str, Any]] = []
        for row in rows.tolist():
            author = int(self.toot_author[row])
            domain = user_domains[author]
            tag = int(self.toot_tag[row])
            boost_of = int(self.toot_boost_of[row])
            payloads.append(
                {
                    "id": row + 1,
                    "url": f"https://{domain}/@user{author}/{row + 1}",
                    "account": handles[author],
                    "account_domain": domain,
                    "created_at": int(self.toot_created[row]),
                    "visibility": (
                        Visibility.PRIVATE.value
                        if self.toot_private[row]
                        else Visibility.PUBLIC.value
                    ),
                    "sensitive": bool(self.toot_cw[row]),
                    "tags": [tag_names[tag]] if tag >= 0 else [],
                    "media_attachments": int(self.toot_media[row]),
                    "favourites_count": 0,
                    "reblog_of_id": boost_of if boost_of else None,
                    "collected_from": collected_from,
                }
            )
        return payloads

    def timeline_page(
        self,
        domain: str,
        max_id: int | None = None,
        limit: int = DEFAULT_PAGE_SIZE,
    ) -> list[dict[str, Any]]:
        """One public federated-timeline page, shaped like the API payload.

        Mirrors ``Timeline.page`` + ``toot_to_payload`` over the real
        network: the newest ``limit`` public toots strictly below
        ``max_id``, newest first.
        """
        timeline = self.instance_timeline(domain)
        rows = self.timeline_rows(domain)[timeline.page_positions(max_id, limit)]
        return self.render_rows(rows, collected_from=domain)

    # -- headline stats ----------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Population counts matching :meth:`FediverseNetwork.stats`."""
        inst = self.user_instance
        src_inst = inst[self.follow_src].astype(np.int64)
        dst_inst = inst[self.follow_dst].astype(np.int64)
        cross = src_inst != dst_inst
        federation_edges = np.unique(
            src_inst[cross] * self.n_instances + dst_inst[cross]
        ).size
        return {
            "instances": self.n_instances,
            "users": self.n_users,
            "toots": self.n_toots,
            "public_toots": int((~self.toot_private).sum()),
            "follow_edges": int(self.follow_src.size),
            "federation_edges": int(federation_edges),
        }

    # -- gating (which instances a crawl can see) --------------------------------

    def _crawlable(self, descriptor: InstanceDescriptor, minute: int) -> bool:
        """Whether a crawler reaches ``descriptor`` at ``minute`` at all."""
        if descriptor.created_at > minute:
            return False
        if self.certificates.is_lapsed(descriptor.domain, minute):
            return False
        return self.availability.is_online(descriptor.domain, minute)

    # -- streaming: scenario → corpus ---------------------------------------------

    def write_corpus(
        self,
        writer: "CorpusWriter",
        at_minute: int | None = None,
        chunk_rows: int = _RENDER_CHUNK_ROWS,
    ) -> dict[str, int]:
        """Stream the federated-timeline crawl of every instance into ``writer``.

        Produces exactly what :class:`~repro.crawler.toot_crawler.TootCrawler`
        collects from :meth:`to_network`'s materialisation at the same
        minute: per reachable, non-blocked instance, the public federated
        timeline newest-first.  Rows render in bounded chunks, so peak
        memory is one instance's row indices plus one chunk of strings.
        Returns rows written per instance; the caller finalises.
        """
        minute = self.config.window_minutes - 1 if at_minute is None else at_minute
        handles, user_domains = self._user_handle_tables()
        tag_names = self._tag_names()
        written: dict[str, int] = {}
        for descriptor in sorted(self.descriptors, key=lambda d: d.domain):
            if not self._crawlable(descriptor, minute):
                continue
            if descriptor.crawl_blocked:
                continue
            domain = descriptor.domain
            rows = self.timeline_rows(domain)
            rows = rows[~self.toot_private[rows]][::-1]  # public, newest first
            total = int(rows.size)
            for start in range(0, total, chunk_rows):
                chunk = rows[start : start + chunk_rows]
                authors = self.toot_author[chunk].astype(np.int64)
                ids = chunk + 1
                tags = self.toot_tag[chunk]
                tagged = tags >= 0
                urls = [
                    f"https://{user_domains[author]}/@user{author}/{toot_id}"
                    for author, toot_id in zip(authors.tolist(), ids.tolist())
                ]
                accounts = [handles[author] for author in authors.tolist()]
                author_domains = [user_domains[author] for author in authors.tolist()]
                writer.add_columns(
                    domain,
                    urls=urls,
                    accounts=accounts,
                    author_domains=author_domains,
                    toot_id=ids,
                    created_minute=self.toot_created[chunk],
                    is_boost=self.toot_boost_of[chunk] > 0,
                    sensitive=self.toot_cw[chunk],
                    media_attachments=self.toot_media[chunk].astype(np.int32),
                    favourites=np.zeros(chunk.size, dtype=np.int32),
                    hashtag_flat=[tag_names[tag] for tag in tags[tagged].tolist()],
                    hashtag_lengths=tagged.astype(np.int64),
                )
            writer.end_instance(domain)
            written[domain] = total
        return written

    # -- streaming: scenario → follower graph -------------------------------------

    def write_graph(
        self, writer: "GraphWriter", at_minute: int | None = None
    ) -> dict[str, int]:
        """Stream the follower crawl of every instance into ``writer``.

        Produces exactly what :class:`FollowerGraphCrawler` collects in
        sink mode from the materialised network: per reachable instance
        (crawl blocking only affects timelines, not follower pages), the
        accounts that have tooted — in directory order, which sorts
        usernames as strings — each contributing its follower list sorted
        by ``(username, domain)``.  Returns edges written per instance.
        """
        minute = self.config.window_minutes - 1 if at_minute is None else at_minute
        handles, _ = self._user_handle_tables()
        toot_counts = self.toot_counts_per_user()
        seg = self._user_segments()

        # Followers of each account, ordered the way followers_page sorts
        # UserRef objects: by (username, domain).  Usernames are globally
        # unique here, so ranking by username string alone is enough.
        if "followers_csr" not in self._cache:
            usernames = np.asarray([f"user{i}" for i in range(self.n_users)])
            rank = np.empty(self.n_users, dtype=np.int64)
            rank[np.argsort(usernames, kind="stable")] = np.arange(self.n_users)
            dst = self.follow_dst.astype(np.int64)
            order = np.lexsort((rank[self.follow_src.astype(np.int64)], dst))
            indptr = np.zeros(self.n_users + 1, dtype=np.int64)
            np.cumsum(np.bincount(dst, minlength=self.n_users), out=indptr[1:])
            self._cache["followers_csr"] = (indptr, self.follow_src[order])
        indptr, ordered_src = self._cache["followers_csr"]

        written: dict[str, int] = {}
        for descriptor in sorted(self.descriptors, key=lambda d: d.domain):
            if not self._crawlable(descriptor, minute):
                continue
            domain = descriptor.domain
            index = self._domain_index()[domain]
            lo, hi = int(seg[index]), int(seg[index + 1])
            tooting = [u for u in range(lo, hi) if toot_counts[u] > 0]
            tooting.sort(key=lambda u: f"user{u}")  # directory string order
            added = 0
            for account in tooting:
                followers = ordered_src[indptr[account] : indptr[account + 1]]
                if not followers.size:
                    continue
                account_handle = handles[account]
                added += writer.add_edges(
                    domain,
                    (
                        (handles[int(follower)], account_handle)
                        for follower in followers
                    ),
                )
            writer.end_instance(domain)
            written[domain] = added
        return written

    # -- differential materialisation ---------------------------------------------

    def to_network(self) -> FediverseNetwork:
        """Materialise the columns into a real :class:`FediverseNetwork`.

        The differential bridge: every user, follow, toot, boost and
        login replays through the network in column order, with the
        scenario's availability schedule and certificate registry shared,
        so real crawlers over the result must observe exactly what
        :meth:`write_corpus` / :meth:`write_graph` streamed.  Only use at
        test scale — this is the object path the columns exist to avoid.
        """
        network = FediverseNetwork(
            clock=self.clock,
            certificates=self.certificates,
            availability=self.availability,
        )
        for descriptor in self.descriptors:
            network.add_instance(descriptor)

        domains = self._instance_domains()
        refs: list[UserRef] = []
        for index in range(self.n_users):
            domain = domains[int(self.user_instance[index])]
            network.register_user(
                domain, f"user{index}", int(self.user_created[index]), invited=True
            )
            refs.append(UserRef(username=f"user{index}", domain=domain))

        for src, dst in zip(self.follow_src.tolist(), self.follow_dst.tolist()):
            network.follow(refs[src], refs[dst], created_at=int(self.user_created[src]))

        tag_names = self._tag_names()
        for row in range(self.n_toots):
            author = refs[int(self.toot_author[row])]
            created_at = int(self.toot_created[row])
            boost_of = int(self.toot_boost_of[row])
            if boost_of:
                original_author = refs[int(self.toot_author[boost_of - 1])]
                original = network.get_instance(original_author.domain).toots[boost_of]
                boost = network.boost(author, original, created_at=created_at)
                if boost.toot_id != row + 1:  # pragma: no cover - invariant
                    raise SimulationError("columnar toot ids diverged from the network")
                continue
            tag = int(self.toot_tag[row])
            toot = network.post_toot(
                author=author,
                created_at=created_at,
                visibility=(
                    Visibility.PRIVATE if self.toot_private[row] else Visibility.PUBLIC
                ),
                hashtags=(tag_names[tag],) if tag >= 0 else (),
                content_warning=bool(self.toot_cw[row]),
                media_count=int(self.toot_media[row]),
            )
            if toot.toot_id != row + 1:  # pragma: no cover - invariant
                raise SimulationError("columnar toot ids diverged from the network")

        for user, minute in zip(self.login_user.tolist(), self.login_minute.tolist()):
            network.record_login(refs[user], minute=int(minute))
        return network


def build_columnar_scenario(preset: str = "small", seed: int = 7) -> ColumnarScenario:
    """Generate a :class:`ColumnarScenario` from a named preset.

    The columnar counterpart of
    :func:`~repro.fediverse.workload.build_scenario`; valid presets are
    the same, including ``xlarge`` (10M toots), which only this path can
    realistically generate.
    """
    return ColumnarScenarioGenerator(scenario_config(preset, seed=seed)).generate()
