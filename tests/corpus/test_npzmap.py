"""The mmap-backed ``.npz`` reader and the stores' ``mmap=True`` mode."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.corpus import CorpusStore, GraphStore, GraphWriter
from repro.corpus.npzmap import MappedNpz, open_npz
from repro.crawler import FollowerGraphCrawler, SimulatedTransport
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def graph_store(tiny_network, tmp_path_factory):
    """The tiny follower crawl in an edge-shard store (multiple shards)."""
    writer = GraphWriter(tmp_path_factory.mktemp("npzmap-graph"), shard_size=500)
    result = FollowerGraphCrawler(SimulatedTransport(tiny_network), threads=4).crawl(
        sink=writer
    )
    return writer.finalise(crawl_minute=result.crawl_minute)


@pytest.fixture()
def archive(tmp_path):
    path = tmp_path / "arrays.npz"
    np.savez(
        path,
        ints=np.arange(1000, dtype=np.int64),
        floats=np.linspace(0.0, 1.0, 257),
        strings=np.asarray(["alpha.example", "beta.example"]),
        fortran=np.asfortranarray(np.arange(12.0).reshape(3, 4)),
        empty=np.empty((0, 3), dtype=np.int32),
    )
    return path


class TestMappedNpz:
    def test_members_match_eager_load(self, archive):
        mapped = MappedNpz(archive)
        eager = np.load(archive)
        assert sorted(mapped.files) == sorted(eager.files)
        for name in eager.files:
            got = mapped[name]
            assert got.dtype == eager[name].dtype
            assert got.shape == eager[name].shape
            assert np.array_equal(got, eager[name])

    def test_stored_members_are_memmaps(self, archive):
        mapped = MappedNpz(archive)
        for name in ("ints", "floats", "strings", "fortran"):
            assert isinstance(mapped[name], np.memmap), name

    def test_fortran_order_preserved(self, archive):
        member = MappedNpz(archive)["fortran"]
        assert member.flags["F_CONTIGUOUS"]

    def test_zero_size_members_load(self, archive):
        member = MappedNpz(archive)["empty"]
        assert member.shape == (0, 3)
        assert not isinstance(member, np.memmap)  # nothing to map

    def test_members_cached(self, archive):
        mapped = MappedNpz(archive)
        assert mapped["ints"] is mapped["ints"]

    def test_contains_and_keyerror(self, archive):
        mapped = MappedNpz(archive)
        assert "ints" in mapped
        assert "missing" not in mapped
        with pytest.raises(KeyError):
            mapped["missing"]

    def test_compressed_archive_falls_back_to_eager(self, tmp_path):
        path = tmp_path / "compressed.npz"
        data = np.arange(4096, dtype=np.int64)
        np.savez_compressed(path, data=data)
        mapped = MappedNpz(path)
        member = mapped["data"]
        assert not isinstance(member, np.memmap)
        assert np.array_equal(member, data)

    def test_open_npz_dispatch(self, archive):
        assert isinstance(open_npz(archive, mmap=True), MappedNpz)
        eager = open_npz(archive)
        assert not isinstance(eager, MappedNpz)
        assert np.array_equal(eager["ints"], np.arange(1000, dtype=np.int64))


class TestMappedStores:
    """``mmap=True`` stores read bit-identical data through memmaps."""

    def test_corpus_tables_and_columns_identical(self, tiny_store):
        eager = CorpusStore(tiny_store.path)
        mapped = CorpusStore(tiny_store.path, mmap=True)
        assert mapped.mmap and not eager.mmap
        assert np.array_equal(mapped.domains, eager.domains)
        assert np.array_equal(mapped.authors, eager.authors)
        assert np.array_equal(
            mapped.replication_counts(), eager.replication_counts()
        )
        for name in ("home_code", "author_code", "toot_id"):
            assert np.array_equal(mapped.column(name), eager.column(name))

    def test_corpus_shard_columns_are_memmaps(self, tiny_store):
        mapped = CorpusStore(tiny_store.path, mmap=True)
        assert isinstance(mapped.shard_column(0, "home_code"), np.memmap)
        assert isinstance(
            CorpusStore(tiny_store.path).shard_column(0, "home_code"), np.ndarray
        )

    def test_graph_tables_and_shards_identical(self, graph_store):
        eager = GraphStore(graph_store.path)
        mapped = GraphStore(graph_store.path, mmap=True)
        assert np.array_equal(mapped.handles, eager.handles)
        assert np.array_equal(mapped.domains, eager.domains)
        for index in range(eager.n_shards):
            for got, want in zip(mapped.shard_edges(index), eager.shard_edges(index)):
                assert np.array_equal(got, want)

    def test_graph_shard_edges_are_memmaps(self, graph_store):
        mapped = GraphStore(graph_store.path, mmap=True)
        src, dst = mapped.shard_edges(0)
        assert isinstance(src, np.memmap) and isinstance(dst, np.memmap)


class TestManifestErrorContext:
    """Validation errors carry the offending directory and manifest key."""

    @staticmethod
    def corrupted_copy(store_path, tmp_path, mutate):
        import shutil

        target = tmp_path / "corrupt"
        shutil.copytree(store_path, target)
        manifest = json.loads((target / "manifest.json").read_text())
        mutate(manifest, target)
        (target / "manifest.json").write_text(json.dumps(manifest))
        return target

    def test_missing_shard_file_names_path_and_key(self, tiny_store, tmp_path):
        def drop_shard(manifest, target):
            (target / manifest["shards"][0]["file"]).unlink()

        target = self.corrupted_copy(tiny_store.path, tmp_path, drop_shard)
        with pytest.raises(DatasetError) as excinfo:
            CorpusStore(target)
        message = str(excinfo.value)
        assert str(target) in message
        assert "key 'shards'" in message

    def test_bad_schema_names_path_and_key(self, tiny_store, tmp_path):
        def bad_schema(manifest, target):
            manifest["schema"] = "nope/v0"

        target = self.corrupted_copy(tiny_store.path, tmp_path, bad_schema)
        with pytest.raises(DatasetError) as excinfo:
            CorpusStore(target)
        message = str(excinfo.value)
        assert str(target) in message
        assert "key 'schema'" in message

    def test_toot_count_mismatch_names_path_and_key(self, tiny_store, tmp_path):
        def wrong_count(manifest, target):
            manifest["n_toots"] += 1

        target = self.corrupted_copy(tiny_store.path, tmp_path, wrong_count)
        with pytest.raises(DatasetError) as excinfo:
            CorpusStore(target)
        message = str(excinfo.value)
        assert str(target) in message
        assert "key 'n_toots'" in message

    def test_graph_errors_name_path(self, graph_store, tmp_path):
        def drop_key(manifest, target):
            del manifest["n_edges"]

        target = self.corrupted_copy(graph_store.path, tmp_path, drop_key)
        with pytest.raises(DatasetError) as excinfo:
            GraphStore(target)
        message = str(excinfo.value)
        assert str(target) in message
        assert "graph manifest" in message
