"""Resilience study: what breaks the federation (Figs. 11-13).

Removes the most important users, instances and hosting ASes from the
social and federation graphs and reports how the largest connected
component and the number of components evolve — the Section 5.1
experiments, including the Twitter comparison.

Run with::

    python examples/resilience_study.py [preset] [seed]
"""

from __future__ import annotations

import sys

from repro import build_scenario, collect_datasets
from repro.core import resilience
from repro.datasets import TwitterBaselines
from repro.reporting import format_percentage, format_table


def main(preset: str = "tiny", seed: int = 33) -> None:
    network = build_scenario(preset, seed=seed)
    data = collect_datasets(network, monitor_interval_minutes=24 * 60)
    graphs = data.graphs
    instances = data.instances

    print(
        f"follower graph: {graphs.user_count()} accounts / {graphs.follow_edge_count()} edges; "
        f"federation graph: {graphs.instance_count()} instances / "
        f"{graphs.federation_edge_count()} edges\n"
    )

    # -- Fig. 12: removing top user accounts -------------------------------------
    twitter = TwitterBaselines.generate(days=30, n_users=graphs.user_count(), seed=seed)
    mastodon_steps = resilience.user_removal_sweep(graphs.follower_graph, rounds=10, fraction_per_round=0.01)
    twitter_steps = resilience.user_removal_sweep(twitter.follower_graph, rounds=10, fraction_per_round=0.01)
    rows = [
        [
            format_percentage(m.removed_fraction),
            format_percentage(m.lcc_fraction),
            format_percentage(t.lcc_fraction),
        ]
        for m, t in zip(mastodon_steps, twitter_steps)
    ]
    print(
        format_table(
            ["accounts removed", "Mastodon LCC", "Twitter LCC"],
            rows,
            title="Fig. 12 — removing the most-followed accounts",
        )
    )

    # -- Fig. 13(a): removing top instances --------------------------------------
    users = instances.users_per_instance()
    toots = instances.toots_per_instance()
    ranking = resilience.rank_instances(graphs.federation_graph, users, toots, by="users")
    steps = resilience.instance_removal_sweep(graphs.federation_graph, ranking, steps=20)
    rows = [
        [step.removed_count, format_percentage(step.lcc_fraction), step.components]
        for step in steps[::4]
    ]
    print()
    print(
        format_table(
            ["instances removed", "LCC", "components"],
            rows,
            title="Fig. 13(a) — removing top instances (by users) from GF",
        )
    )

    # -- Fig. 13(b): removing whole ASes ------------------------------------------
    asn_of = {d: instances.metadata_for(d).asn for d in instances.domains()}
    as_ranking = resilience.rank_ases(asn_of, users, by="users")
    as_steps = resilience.as_removal_sweep(graphs.federation_graph, asn_of, as_ranking, steps=8)
    rows = [
        [index, format_percentage(step.lcc_fraction), step.components]
        for index, step in enumerate(as_steps)
    ]
    print()
    print(
        format_table(
            ["ASes removed", "LCC", "components"],
            rows,
            title="Fig. 13(b) — removing top ASes (by users hosted) from GF",
        )
    )
    drop = as_steps[0].lcc_fraction - as_steps[min(5, len(as_steps) - 1)].lcc_fraction
    print(
        f"\nRemoving five ASes cuts the federation LCC by {format_percentage(drop)} "
        "(the paper reports a drop from 92% to 46% of users)."
    )


if __name__ == "__main__":
    preset_arg = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    seed_arg = int(sys.argv[2]) if len(sys.argv) > 2 else 33
    main(preset_arg, seed_arg)
