"""Fig. 15 — toot availability under instance/AS removal, with and without
subscription-based replication.

Paper shape: without replication, removing the top 10 instances (by
toots) erases 62.69% of all toots and removing the top 10 ASes erases
90.1%; replicating each toot to its followers' instances cuts those
losses to 2.1% and 18.66% respectively.

Thin timing wrapper over the ``fig15`` registry runner: one engine sweep
(incidence matrix per strategy, every removal schedule batched against
it) whose rankings, failure models and placement maps live in the shared
:class:`~repro.experiments.context.ExperimentContext` — the duplicated
``_rankings``/``_failures`` setup this file used to carry is gone.

``pedantic(rounds=1)``: the context memoises placements/rankings, so
repeated rounds would time cache hits, not the experiment.
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_fig15_replication(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: get_experiment("fig15").run(ctx), rounds=1, iterations=1
    )
    emit("Fig. 15 — availability with/without subscription replication", result.render_text())

    no_rep_top10 = result.scalar("no_rep_top10_instances_by_toots")
    # removing the top 10 instances erases a large share of toots (paper: 62.69%)
    assert no_rep_top10 < 0.7
    # removing the top 10 ASes is even worse (paper: 90.1% lost)
    assert result.scalar("no_rep_top10_ases_by_users") <= no_rep_top10 + 0.05
    # replication recovers most of the availability lost to the top-10 removal
    s_rep_top10 = result.scalar("s_rep_top10_instances_by_toots")
    assert s_rep_top10 > no_rep_top10 + 0.2
    assert result.scalar("s_rep_top10_ases_by_users") >= s_rep_top10 - 0.6
