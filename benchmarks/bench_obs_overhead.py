"""Disabled observability must be (nearly) free on the engine hot path.

PR 10 threaded spans and metrics through ``availability_curves`` /
``streaming_losses`` — the innermost loops of every sweep.  The design
contract is that an *inactive* observer costs one ``obs.active()`` check
per fold plus a no-op span per sweep, which this benchmark holds to a
hard gate: the shipped, instrumented sweep with observability off must
stay within :data:`MAX_OVERHEAD_PCT` of a stripped replica of the
pre-instrumentation loop (the same removal-matrix build and serial
shard fold, with zero ``obs`` calls).

It also proves the second half of the contract: running the same sweep
with a tracer installed and metrics enabled produces **bit-identical**
curves — instrumentation observes the computation, it never joins it.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

or through the harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -s
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.engine import TootIncidence, availability_curves
from repro.engine.kernels import availability_from_losses, losses_per_step_batch
from repro.engine.sharding import ShardedIncidence
from repro.engine.sweep import _to_points

try:
    from benchmarks.bench_engine_scale import build_failures, synthetic_placements
except ImportError:  # run as a script: benchmarks/ itself is on sys.path
    from bench_engine_scale import build_failures, synthetic_placements

N_TOOTS = 100_000
SHARD_SIZE = 10_000  # 10 shards: the per-shard check is what we are gating
ROUNDS = 5
MAX_OVERHEAD_PCT = 2.0


def plain_availability_curves(incidence, failures, shard_size):
    """The pre-instrumentation sweep: same maths, zero ``obs`` calls.

    A faithful replica of ``availability_curves`` + ``streaming_losses``
    for cumulative failure models on a pre-built incidence matrix —
    removal columns from the shared lookup, one serial shard fold, the
    same additive int64 loss table, the same ``AvailabilityPoint``
    assembly — with every observability line stripped.  Any timing gap
    between this and the shipped path is pure instrumentation overhead.
    """
    sharded = ShardedIncidence.from_incidence(incidence, shard_size)
    lookup = sharded.lookup
    columns = []
    col_steps = []
    for failure in failures:
        steps = failure.effective_steps()
        columns.append(lookup.removal_vector(failure.removal_index(), steps)[:, None])
        col_steps.append(steps)
    removal_matrix = np.concatenate(columns, axis=1)
    steps = np.asarray(col_steps, dtype=np.int64)
    losses = np.zeros((len(col_steps), int(steps.max()) + 1), dtype=np.int64)
    for bounds in sharded.shard_bounds():
        shard = sharded.shard(*bounds)
        losses += losses_per_step_batch(shard.matrix, removal_matrix, steps)
    return {
        failure.name: _to_points(
            availability_from_losses(losses[i, : int(steps[i]) + 1], sharded.n_toots)
        )
        for i, failure in enumerate(failures)
    }


def shipped_availability_curves(incidence, failures, shard_size):
    """The shipped, instrumented sweep — exactly what the pipeline runs."""
    return availability_curves(incidence, failures, shard_size=shard_size)


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def compare(incidence, failures, rounds: int = ROUNDS):
    """Best-of-``rounds`` seconds per side, measured in alternation."""
    assert not obs.tracing_enabled() and not obs.metrics_enabled()
    plain_time = shipped_time = float("inf")
    plain_curves = shipped_curves = None
    for _ in range(rounds):
        plain_curves, elapsed = _timed(
            plain_availability_curves, incidence, failures, SHARD_SIZE
        )
        plain_time = min(plain_time, elapsed)
        shipped_curves, elapsed = _timed(
            shipped_availability_curves, incidence, failures, SHARD_SIZE
        )
        shipped_time = min(shipped_time, elapsed)
    for name, points in plain_curves.items():
        assert points == shipped_curves[name], f"divergence on {name}"
    return plain_time, shipped_time


def assert_enabled_is_bit_identical(incidence, failures):
    """Tracer + metrics on: same curves, and the observer saw the work."""
    disabled = shipped_availability_curves(incidence, failures, SHARD_SIZE)
    tracer = obs.Tracer()  # memory-only: no file I/O in the identity check
    obs.set_tracer(tracer)
    obs.enable_metrics(fresh=True)
    try:
        enabled = shipped_availability_curves(incidence, failures, SHARD_SIZE)
    finally:
        obs.set_tracer(None)
        obs.disable_metrics()
    assert enabled == disabled, "instrumentation changed the curves"
    span_names = {event["name"] for event in tracer.events}
    assert "engine/streaming_losses" in span_names
    assert "engine/shard" in span_names
    return len(tracer.events)


def run_comparison(n_toots: int = N_TOOTS):
    placements, domains, asn_of = synthetic_placements(n_toots=n_toots)
    failures = build_failures(domains, asn_of)
    incidence = TootIncidence.from_placements(placements)
    plain_time, shipped_time = compare(incidence, failures)
    n_spans = assert_enabled_is_bit_identical(incidence, failures)
    overhead_pct = 100.0 * (shipped_time - plain_time) / plain_time
    return plain_time, shipped_time, overhead_pct, n_spans, len(failures)


def test_disabled_observability_overhead():
    plain_time, shipped_time, overhead_pct, n_spans, n_failures = run_comparison(
        n_toots=40_000
    )

    from benchmarks.conftest import emit
    from repro.reporting import format_table

    emit(
        f"Observability overhead — 40,000 toots, {n_failures} schedules",
        format_table(
            ["pipeline", "seconds", "overhead"],
            [
                ["plain fold (no obs)", round(plain_time, 4), "-"],
                ["shipped, obs off", round(shipped_time, 4), f"{overhead_pct:+.2f}%"],
                ["shipped, obs on", "-", f"bit-identical ({n_spans} spans)"],
            ],
        ),
    )
    assert overhead_pct <= MAX_OVERHEAD_PCT, (
        f"disabled instrumentation costs {overhead_pct:.2f}% "
        f"(gate: {MAX_OVERHEAD_PCT}%)"
    )


def main() -> None:
    plain_time, shipped_time, overhead_pct, n_spans, n_failures = run_comparison()
    print(f"observability overhead: {N_TOOTS:,} toots x {n_failures} schedules")
    print(f"  plain fold (no obs)  : {plain_time:8.4f}s")
    print(f"  shipped, obs off     : {shipped_time:8.4f}s ({overhead_pct:+.2f}%)")
    print(f"  shipped, obs on      : bit-identical curves, {n_spans} spans recorded")
    print(f"  gate                 : <= {MAX_OVERHEAD_PCT:.1f}% disabled overhead")
    assert overhead_pct <= MAX_OVERHEAD_PCT, (
        f"disabled instrumentation costs {overhead_pct:.2f}%"
    )

    try:
        from benchmarks.perf_log import record
    except ImportError:  # run as a script: benchmarks/ itself is on sys.path
        from perf_log import record

    path = record(
        "obs_overhead",
        {
            "n_toots": N_TOOTS,
            "n_schedules": n_failures,
            "plain_seconds": round(plain_time, 4),
            "instrumented_off_seconds": round(shipped_time, 4),
            # clamp: a negative reading is timing noise, not a speedup claim
            "overhead_pct": round(max(0.0, overhead_pct), 3),
            "max_overhead_pct": MAX_OVERHEAD_PCT,
            "identical_with_instrumentation": True,
            "spans_recorded": n_spans,
        },
    )
    print(f"  recorded             : {path}")


if __name__ == "__main__":
    main()
