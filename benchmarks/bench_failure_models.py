"""Correlated & temporal failure models at scale (the PR 6 gate).

The new models in :mod:`repro.engine.failures` extend the engine's step
semantics — grouped correlated removals and non-monotone temporal
schedules — by *reusing* the additive loss-table fold rather than adding
a second evaluation path.  This benchmark drives them over a synthetic
400k-toot placement backend and gates three claims:

1. **identity** — degenerate configurations (one instance per step, zero
   recoveries; identity hoster grouping; AS-label grouping) reproduce
   the existing ``InstanceRemoval`` / ``ASRemoval`` curves bit for bit,
   on the monolithic AND the sharded streaming path;
2. **shard invariance** — stochastic temporal churn evaluates
   bit-identically sharded vs monolithic (ragged tail shard included);
3. **throughput** — the temporal sweep (one single-step schedule column
   per tick) sustains at least ``MIN_TOOT_TICKS_PER_SECOND`` toot-ticks
   per second through the streaming path.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_failure_models.py

or through the harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_failure_models.py --benchmark-only -s
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine import (
    ASRemoval,
    HosterRemoval,
    InstanceRemoval,
    ScheduledDowntime,
    ShardedIncidence,
    TemporalChurn,
    TootIncidence,
    availability_curves,
    temporal_removal_matrix,
)
from repro.engine.kernels import losses_per_step_batch
from repro.engine.sharding import streaming_losses

try:
    from benchmarks.bench_shard_scale import synthetic_arrays
except ImportError:  # run as a script: benchmarks/ itself is on sys.path
    from bench_shard_scale import synthetic_arrays

N_TOOTS = 400_000
N_DOMAINS = 300
SHARD_SIZE = 75_000  # 400k = 5 * 75k + 25k: ragged tail shard
DEGENERATE_STEPS = 64
CHURN_TICKS = 96
CHURN_SEED = 5

#: Throughput floor for the temporal sweep, in toot-ticks per second.
#: Deliberately conservative (shared CI runners); a healthy machine
#: clears it by an order of magnitude.
MIN_TOOT_TICKS_PER_SECOND = 2_000_000


def build_placements(n_toots: int = N_TOOTS):
    arrays, domains, asn_of = synthetic_arrays(n_toots=n_toots, n_domains=N_DOMAINS)
    from repro.core.replication import PlacementMap

    return PlacementMap(strategy=arrays.strategy, arrays=arrays), domains, asn_of


def build_churn(domains) -> TemporalChurn:
    rng = np.random.default_rng(CHURN_SEED)
    empirical = rng.lognormal(mean=-0.5, sigma=1.0, size=500)
    downtime = {d: float(f) for d, f in zip(domains, rng.uniform(0.02, 0.4, len(domains)))}
    return TemporalChurn(
        domains,
        empirical,
        downtime,
        steps=CHURN_TICKS,
        horizon_days=30.0,
        seed=CHURN_SEED,
        name="churn",
    )


def _curve(curves, name) -> np.ndarray:
    return np.asarray([p.availability for p in curves[name]], dtype=np.float64)


def check_degenerate_identity(placements, domains, asn_of) -> None:
    """Degenerate new-model configs == existing curves, both paths."""
    ranked = domains[:DEGENERATE_STEPS]
    as_ranking = sorted(set(asn_of.values()))[:16]
    models = [
        InstanceRemoval(ranked, steps=DEGENERATE_STEPS, name="inst"),
        HosterRemoval({d: d for d in ranked}, ranked, steps=DEGENERATE_STEPS, name="host"),
        ScheduledDowntime(
            {d: [(i + 1, DEGENERATE_STEPS + 1)] for i, d in enumerate(ranked)},
            steps=DEGENERATE_STEPS,
            name="sched",
        ),
        ASRemoval(asn_of, as_ranking, steps=len(as_ranking), name="as"),
        HosterRemoval(
            {d: f"AS{a}" for d, a in asn_of.items()},
            [f"AS{a}" for a in as_ranking],
            steps=len(as_ranking),
            name="as-grouped",
        ),
    ]
    monolithic = availability_curves(placements, models, shard_size=0)
    sharded = availability_curves(placements, models, shard_size=SHARD_SIZE)
    for name in ("inst", "host", "sched", "as", "as-grouped"):
        assert np.array_equal(_curve(monolithic, name), _curve(sharded, name)), name
    assert np.array_equal(_curve(monolithic, "inst"), _curve(monolithic, "host"))
    assert np.array_equal(_curve(monolithic, "inst"), _curve(monolithic, "sched"))
    assert np.array_equal(_curve(monolithic, "as"), _curve(monolithic, "as-grouped"))


def check_churn_shard_invariance(placements, churn) -> None:
    monolithic = availability_curves(placements, [churn], shard_size=0)
    sharded = availability_curves(placements, [churn], shard_size=SHARD_SIZE, workers=2)
    assert np.array_equal(_curve(monolithic, "churn"), _curve(sharded, "churn"))


def measure_temporal_throughput(placements, churn, rounds: int = 3) -> dict:
    """Best-of-``rounds`` wall time for the full temporal streaming sweep."""
    arrays = placements.arrays
    sharded = ShardedIncidence.from_arrays(arrays, SHARD_SIZE)
    incidence = TootIncidence.from_arrays(arrays)
    removal_matrix = temporal_removal_matrix(churn.down_matrix(sharded.lookup))
    steps = np.ones(removal_matrix.shape[1], dtype=np.int64)

    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        losses = streaming_losses(sharded, removal_matrix, steps)
        best = min(best, time.perf_counter() - start)
    expected = losses_per_step_batch(incidence.matrix, removal_matrix, steps)
    assert np.array_equal(losses, expected), "streamed temporal losses diverged"

    toot_ticks = arrays.n_toots * removal_matrix.shape[1]
    return {
        "ticks": int(removal_matrix.shape[1]),
        "sweep_seconds": best,
        "toot_ticks_per_second": toot_ticks / best,
    }


def _assert_gates(measured: dict) -> None:
    assert measured["toot_ticks_per_second"] >= MIN_TOOT_TICKS_PER_SECOND, (
        f"temporal sweep gate: {measured['toot_ticks_per_second']:,.0f} "
        f"toot-ticks/s < {MIN_TOOT_TICKS_PER_SECOND:,} required"
    )


def run_gates():
    placements, domains, asn_of = build_placements()
    churn = build_churn(domains)
    check_degenerate_identity(placements, domains, asn_of)
    check_churn_shard_invariance(placements, churn)
    return measure_temporal_throughput(placements, churn)


def test_failure_model_gates(benchmark):
    placements, domains, asn_of = build_placements()
    churn = build_churn(domains)
    check_degenerate_identity(placements, domains, asn_of)
    check_churn_shard_invariance(placements, churn)

    benchmark.pedantic(
        lambda: availability_curves(placements, [churn], shard_size=SHARD_SIZE),
        rounds=1,
        iterations=1,
    )
    measured = measure_temporal_throughput(placements, churn)

    from benchmarks.conftest import emit
    from repro.reporting import format_table

    emit(
        f"Failure models — {N_TOOTS:,} toots, {CHURN_TICKS} churn ticks, "
        f"shard={SHARD_SIZE:,}",
        format_table(
            ["measure", "value"],
            [
                ["degenerate identity (5 configs, both paths)", "bit-identical"],
                ["churn shard invariance", "bit-identical"],
                ["temporal sweep (s)", round(measured["sweep_seconds"], 3)],
                ["toot-ticks / second", f"{measured['toot_ticks_per_second']:,.0f}"],
            ],
        ),
    )
    _assert_gates(measured)


def main() -> None:
    measured = run_gates()
    print(f"failure-model gates: {N_TOOTS:,} toots x {CHURN_TICKS} churn ticks "
          f"(shard={SHARD_SIZE:,})")
    print("  identity            : degenerate hoster/country/temporal configs == "
          "InstanceRemoval/ASRemoval, monolithic and sharded")
    print("  shard invariance    : churn curves bit-identical sharded vs monolithic")
    print(f"  temporal sweep      : {measured['sweep_seconds']:.3f}s "
          f"({measured['toot_ticks_per_second']:,.0f} toot-ticks/s, "
          f"required >= {MIN_TOOT_TICKS_PER_SECOND:,})")
    _assert_gates(measured)

    try:
        from benchmarks.perf_log import record
    except ImportError:  # run as a script: benchmarks/ itself is on sys.path
        from perf_log import record

    path = record(
        "failure_models",
        {
            "n_toots": N_TOOTS,
            "n_domains": N_DOMAINS,
            "shard_size": SHARD_SIZE,
            "churn_ticks": CHURN_TICKS,
            "min_toot_ticks_per_second": MIN_TOOT_TICKS_PER_SECOND,
            "identity_degenerate": True,
            "churn_shard_invariant": True,
            **{key: round(value, 4) if isinstance(value, float) else value
               for key, value in measured.items()},
        },
    )
    print(f"  recorded            : {path}")


if __name__ == "__main__":
    main()
