"""Tests for the retry / circuit-breaker transport composition."""

from __future__ import annotations

import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    ConnectionLostError,
    CrawlBlockedError,
    InstanceUnavailableError,
    RateLimitError,
    RequestTimeoutError,
    ServerError,
)
from repro.crawler.resilient import (
    CircuitBreaker,
    ResilientTransport,
    RetryPolicy,
    is_retryable,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class ScriptedTransport:
    """A transport whose responses are scripted per URL.

    The script for a URL is a list consumed left to right: exceptions
    are raised, anything else is returned.  Unscripted URLs succeed.
    """

    def __init__(self, scripts: dict[str, list[object]] | None = None) -> None:
        self.scripts = scripts or {}
        self.calls: list[str] = []
        self.budget_resets: list[str | None] = []

    @property
    def network(self):  # pragma: no cover - surface parity only
        return None

    @property
    def stats(self):  # pragma: no cover - surface parity only
        return {}

    def known_domains(self) -> list[str]:
        return []

    def reset_budget(self, domain: str | None = None) -> None:
        self.budget_resets.append(domain)

    def get(self, url: str, at_minute: int | None = None) -> object:
        self.calls.append(url)
        script = self.scripts.get(url)
        if script:
            step = script.pop(0)
            if isinstance(step, BaseException):
                raise step
        return {"url": url}


def resilient(
    scripts: dict[str, list[object]] | None = None,
    policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    clock: FakeClock | None = None,
) -> tuple[ResilientTransport, ScriptedTransport, list[float]]:
    inner = ScriptedTransport(scripts)
    sleeps: list[float] = []
    clock = clock or FakeClock()

    def sleep(delay: float) -> None:
        sleeps.append(delay)
        clock.advance(delay)

    transport = ResilientTransport(
        inner, policy=policy, breaker=breaker, sleep=sleep, clock=clock
    )
    return transport, inner, sleeps


URL = "https://a.example/api/v1/instance"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(deadline=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(domain_budget=-1)

    def test_backoff_is_capped_full_jitter(self):
        import random

        policy = RetryPolicy(base_delay=0.1, max_delay=0.3)
        rng = random.Random(0)
        for attempt in range(1, 10):
            ceiling = min(0.3, 0.1 * 2 ** (attempt - 1))
            assert 0.0 <= policy.backoff_delay(attempt, rng) <= ceiling

    def test_is_retryable(self):
        assert is_retryable(RequestTimeoutError(URL))
        assert is_retryable(ServerError(URL))
        assert is_retryable(RateLimitError(URL, retry_after=1.0))
        assert not is_retryable(InstanceUnavailableError(URL))
        assert not is_retryable(CrawlBlockedError(URL))
        assert not is_retryable(ValueError("x"))


class TestResilientTransport:
    def test_transient_failures_are_retried_to_success(self):
        transport, inner, sleeps = resilient(
            {URL: [RequestTimeoutError(URL), ConnectionLostError(URL)]}
        )
        assert transport.get(URL) == {"url": URL}
        assert len(inner.calls) == 3
        assert len(sleeps) == 2
        assert transport.resilience.recovered == 1
        assert transport.resilience.retries == 2

    def test_attempts_exhausted_reraises_last_error(self):
        transport, inner, _ = resilient(
            {URL: [ServerError(URL)] * 5},
            policy=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(ServerError):
            transport.get(URL)
        assert len(inner.calls) == 3
        assert transport.resilience.exhausted == 1

    def test_deterministic_failures_pass_straight_through(self):
        transport, inner, sleeps = resilient(
            {URL: [InstanceUnavailableError(URL)]}
        )
        with pytest.raises(InstanceUnavailableError):
            transport.get(URL)
        assert len(inner.calls) == 1
        assert sleeps == []

    def test_rate_limit_honours_retry_after_and_resets_budget(self):
        transport, inner, sleeps = resilient(
            {URL: [RateLimitError(URL, retry_after=0.25)]},
            policy=RetryPolicy(max_delay=2.0),
        )
        transport.get(URL)
        assert sleeps == [0.25]
        assert inner.budget_resets == ["a.example"]

    def test_retry_after_capped_at_max_delay(self):
        transport, _, sleeps = resilient(
            {URL: [RateLimitError(URL, retry_after=60.0)]},
            policy=RetryPolicy(max_delay=0.5),
        )
        transport.get(URL)
        assert sleeps == [0.5]

    def test_domain_budget_bounds_total_retries(self):
        scripts = {
            f"https://a.example/{n}": [RequestTimeoutError(URL)] * 9
            for n in range(3)
        }
        transport, inner, _ = resilient(
            scripts, policy=RetryPolicy(max_attempts=9, domain_budget=2)
        )
        failures = 0
        for n in range(3):
            with pytest.raises(RequestTimeoutError):
                transport.get(f"https://a.example/{n}")
            failures += 1
        # 2 retries total across the domain, then every request gets
        # exactly one attempt
        assert transport.resilience.budget_denied >= 1
        assert len(inner.calls) == 3 + 2

    def test_deadline_bounds_time_spent_retrying(self):
        clock = FakeClock()
        transport, _, _ = resilient(
            {URL: [RateLimitError(URL, retry_after=5.0)] * 9},
            policy=RetryPolicy(max_attempts=9, max_delay=10.0, deadline=3.0),
            clock=clock,
        )
        with pytest.raises(RequestTimeoutError):
            transport.get(URL)
        assert transport.resilience.deadline_expired == 1

    def test_jitter_is_deterministic_per_domain(self):
        script = lambda: {URL: [ServerError(URL)] * 3}  # noqa: E731
        first, _, first_sleeps = resilient(script(), policy=RetryPolicy(max_attempts=4))
        second, _, second_sleeps = resilient(script(), policy=RetryPolicy(max_attempts=4))
        first.get(URL)
        second.get(URL)
        assert first_sleeps == second_sleeps


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout=0)

    def test_opens_after_consecutive_transient_failures(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0, clock=FakeClock())
        error = RequestTimeoutError(URL)
        breaker.record_failure("a.example", error)
        assert breaker.state("a.example") == CircuitBreaker.CLOSED
        breaker.record_failure("a.example", error)
        assert breaker.state("a.example") == CircuitBreaker.OPEN
        assert breaker.trips == 1
        with pytest.raises(CircuitOpenError):
            breaker.before_request("a.example", URL)

    def test_deterministic_failures_never_trip(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        for _ in range(10):
            breaker.record_failure("a.example", InstanceUnavailableError(URL))
        assert breaker.state("a.example") == CircuitBreaker.CLOSED

    def test_success_clears_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        error = ServerError(URL)
        breaker.record_failure("a.example", error)
        breaker.record_success("a.example")
        breaker.record_failure("a.example", error)
        assert breaker.state("a.example") == CircuitBreaker.CLOSED

    def test_half_open_probe_then_close_or_reopen(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        error = ConnectionLostError(URL)
        breaker.record_failure("a.example", error)
        assert breaker.state("a.example") == CircuitBreaker.OPEN
        clock.advance(5.0)
        assert breaker.state("a.example") == CircuitBreaker.HALF_OPEN
        # a half-open probe failing re-opens immediately
        breaker.record_failure("a.example", error)
        assert breaker.state("a.example") == CircuitBreaker.OPEN
        clock.advance(5.0)
        breaker.before_request("a.example", URL)  # probe admitted
        breaker.record_success("a.example")
        assert breaker.state("a.example") == CircuitBreaker.CLOSED

    def test_breakers_are_per_domain(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        breaker.record_failure("a.example", ServerError(URL))
        assert breaker.state("a.example") == CircuitBreaker.OPEN
        assert breaker.state("b.example") == CircuitBreaker.CLOSED

    def test_circuit_open_error_carries_remaining_time(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        breaker.record_failure("a.example", ServerError(URL))
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.before_request("a.example", URL)
        assert excinfo.value.retry_after == pytest.approx(6.0)

    def test_transport_integration_fails_fast_while_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=30.0, clock=clock)
        transport, inner, _ = resilient(
            {URL: [ServerError(URL)] * 2},
            policy=RetryPolicy(max_attempts=2),
            breaker=breaker,
            clock=clock,
        )
        with pytest.raises(ServerError):
            transport.get(URL)
        # breaker tripped by the two failed attempts; next request is
        # refused without touching the inner transport
        calls_before = len(inner.calls)
        with pytest.raises(CircuitOpenError):
            transport.get(URL)
        assert len(inner.calls) == calls_before
