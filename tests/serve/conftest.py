"""Serve-layer fixtures: one corpus + graph store pair and a warm service.

The stores are written once per session from the shared ``tiny_network``
with deliberately small shard sizes, so every serve test exercises the
multi-shard mmap path; the warm service over them is session-scoped and
treated as read-only by every test (its own thread-safety test included).
"""

from __future__ import annotations

import pytest

from repro.corpus import CorpusWriter, GraphWriter
from repro.crawler import FollowerGraphCrawler, SimulatedTransport, TootCrawler
from repro.serve import AvailabilityService

CORPUS_SHARD_TOOTS = 700
GRAPH_SHARD_EDGES = 500


@pytest.fixture(scope="session")
def serve_corpus_dir(tiny_network, tmp_path_factory):
    """The tiny crawl streamed into a multi-shard columnar corpus."""
    target = tmp_path_factory.mktemp("serve-corpus")
    writer = CorpusWriter(target, shard_size=CORPUS_SHARD_TOOTS)
    result = TootCrawler(SimulatedTransport(tiny_network), threads=4).crawl(sink=writer)
    writer.finalise(crawl_minute=result.crawl_minute)
    return target


@pytest.fixture(scope="session")
def serve_graph_dir(tiny_network, tmp_path_factory):
    """The tiny follower crawl streamed into a multi-shard edge store."""
    target = tmp_path_factory.mktemp("serve-graph")
    writer = GraphWriter(target, shard_size=GRAPH_SHARD_EDGES)
    result = FollowerGraphCrawler(SimulatedTransport(tiny_network), threads=4).crawl(
        sink=writer
    )
    writer.finalise(crawl_minute=result.crawl_minute)
    return target


@pytest.fixture(scope="session")
def service(serve_corpus_dir, serve_graph_dir) -> AvailabilityService:
    """One mmap-backed service over both stores, shared read-only."""
    return AvailabilityService(serve_corpus_dir, serve_graph_dir, mmap=True)
