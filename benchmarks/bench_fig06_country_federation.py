"""Fig. 6 — federated subscription links between countries (Sankey data).

Paper shape: federation is homophilous (~32% of links stay in-country)
and the top five countries attract ~94% of all subscription links.

Thin timing wrapper over the ``fig6`` registry runner.
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_fig06_country_federation(benchmark, ctx):
    result = benchmark(lambda: get_experiment("fig6").run(ctx))
    emit("Fig. 6 — cross-country federation flows", result.render_text())

    assert result.scalar("flow_count") >= 1, "expected at least one federation flow"
    assert 0.05 < result.scalar("same_country_share") <= 1.0
    assert result.scalar("top5_country_link_share") > 0.6
