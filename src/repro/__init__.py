"""repro — a reproduction toolkit for "Challenges in the Decentralised Web:
The Mastodon Case" (Raman et al., IMC 2019).

The package is organised in layers:

* :mod:`repro.fediverse` — a self-contained Mastodon/Pleroma simulator
  (instances, users, toots, federation, hosting, certificates, outages)
  standing in for the live network the paper measured;
* :mod:`repro.crawler` — the measurement tooling (instance monitor, toot
  crawler, follower-graph crawler) speaking to instances over a simulated
  HTTP transport;
* :mod:`repro.datasets` — the paper's three datasets plus the Twitter
  baselines, built from crawler output;
* :mod:`repro.core` — the analyses behind every figure and table;
* :mod:`repro.engine` — the sparse-matrix failure-simulation engine the
  resilience/replication hot paths (Figs. 11-16) dispatch through;
* :mod:`repro.reporting` — table/figure rendering and the experiment index.

Quick start::

    from repro import build_scenario, collect_datasets

    network = build_scenario("small", seed=7)
    datasets = collect_datasets(network)
    print(datasets.instances.total_users(), "users on", len(datasets.instances), "instances")
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.fediverse import FediverseNetwork, ScenarioConfig, ScenarioGenerator, build_scenario
from repro.crawler import (
    CircuitBreaker,
    FaultInjector,
    FaultRates,
    FaultyTransport,
    FollowerGraphCrawler,
    InstanceMonitor,
    ResilientTransport,
    RetryPolicy,
    SimulatedTransport,
    TootCrawler,
)
from repro.datasets import GraphDataset, InstancesDataset, TootsDataset, TwitterBaselines

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus import CorpusStore, GraphStore

__version__ = "1.0.0"

__all__ = [
    "CircuitBreaker",
    "CollectedDatasets",
    "FaultInjector",
    "FaultRates",
    "FaultyTransport",
    "FediverseNetwork",
    "GraphDataset",
    "ResilientTransport",
    "RetryPolicy",
    "InstancesDataset",
    "ReproError",
    "ScenarioConfig",
    "ScenarioGenerator",
    "TootsDataset",
    "TwitterBaselines",
    "__version__",
    "build_scenario",
    "collect_datasets",
]


@dataclass
class CollectedDatasets:
    """The three paper datasets collected from one simulated fediverse."""

    instances: InstancesDataset
    toots: TootsDataset
    graphs: GraphDataset
    network: FediverseNetwork
    #: The columnar corpus behind ``toots`` when the crawl streamed to
    #: disk (``collect_datasets(..., corpus_dir=...)``); ``None`` on the
    #: in-memory record path.
    corpus: "CorpusStore | None" = None
    #: The on-disk edge-shard store behind ``graphs`` when the follower
    #: crawl streamed to disk (``collect_datasets(..., graph_dir=...)``);
    #: ``None`` on the in-memory record path.
    graph_store: "GraphStore | None" = None
    #: Fetched-versus-attempted accounting of the toot crawl
    #: (:meth:`CrawlCoverage.as_dict
    #: <repro.crawler.toot_crawler.CrawlCoverage.as_dict>`); ``None``
    #: only when an existing corpus without coverage was reused.
    coverage: "dict | None" = None
    #: The follower crawl's coverage accounting, same shape.
    graph_coverage: "dict | None" = None


def collect_datasets(
    network: FediverseNetwork,
    monitor_interval_minutes: int = 24 * 60,
    crawl_threads: int = 8,
    corpus_dir: "str | Path | None" = None,
    corpus_shard_size: int | None = None,
    graph_dir: "str | Path | None" = None,
    graph_shard_size: int | None = None,
    fault_rates: "FaultRates | float | None" = None,
    fault_seed: int = 0,
    retry_policy: "RetryPolicy | int | None" = None,
    breaker: "CircuitBreaker | None" = None,
    resume: bool = False,
    politeness_delay: float = 0.0,
) -> CollectedDatasets:
    """Run the full measurement pipeline against a simulated fediverse.

    This is the one-call equivalent of the paper's data collection: poll
    every instance's API across the observation window, crawl every
    federated timeline, scrape every follower list, and assemble the
    datasets the analyses consume.

    ``monitor_interval_minutes`` defaults to daily probes (the paper used
    five minutes over fifteen months; the analyses only need the relative
    resolution, and daily probing keeps the default pipeline fast).

    With ``corpus_dir``, the toot crawl streams page by page into a
    columnar corpus at that directory (:mod:`repro.corpus`) instead of
    building ``TootRecord`` lists: the returned ``toots`` dataset is
    corpus-backed (aggregates from columns, records only on demand) and
    ``corpus`` carries the opened store, so placement construction and
    availability sweeps run straight from the on-disk columns.  A
    directory that already holds a corpus manifest (a previous
    ``collect``) is **reused** instead of re-crawled, after checking its
    crawled instances belong to this scenario — collect once, run many.
    ``corpus_shard_size`` overrides the default toots-per-shard split.

    ``graph_dir`` gives the follower crawl the same treatment: edges
    stream into integer-coded shards (:mod:`repro.corpus.graph`) as each
    ego network is paged, ``graph_store`` carries the opened store, and
    the networkx-backed ``graphs`` dataset is rebuilt from the store's
    decoded edges (identical graph, since the store preserves crawl
    order).  An existing graph manifest is reused the same way a corpus
    one is.  ``graph_shard_size`` overrides the edges-per-shard split.

    Resilience knobs: ``fault_rates`` (a
    :class:`~repro.crawler.faults.FaultRates`, or a float total rate
    split uniformly across the failure modes) wraps the transport in a
    seeded chaos layer (``fault_seed``); ``retry_policy`` (a
    :class:`~repro.crawler.resilient.RetryPolicy`, or an int
    ``max_attempts``) plus an optional per-instance circuit ``breaker``
    wrap it in retries with backoff.  The monitor and both crawlers all
    route through the same wrapped transport.  ``resume=True`` reopens
    interrupted corpus/graph writers from their crawl journals — sealed
    instances are never re-crawled; ``politeness_delay`` spaces
    per-instance requests (useful to widen the crash window in tests).
    """
    transport = SimulatedTransport(network)
    if fault_rates is not None:
        rates = (
            fault_rates
            if isinstance(fault_rates, FaultRates)
            else FaultRates.uniform(float(fault_rates))
        )
        transport = FaultyTransport(transport, FaultInjector(seed=fault_seed, rates=rates))
    if retry_policy is not None:
        policy = (
            retry_policy
            if isinstance(retry_policy, RetryPolicy)
            else RetryPolicy(max_attempts=int(retry_policy))
        )
        transport = ResilientTransport(transport, policy=policy, breaker=breaker)
    monitor = InstanceMonitor(transport, network.domains(), monitor_interval_minutes)
    log = monitor.run()
    instances = InstancesDataset.build(network, log)

    toot_crawler = TootCrawler(
        transport, threads=crawl_threads, politeness_delay=politeness_delay
    )
    corpus = None
    coverage = None
    if corpus_dir is None:
        crawl = toot_crawler.crawl()
        toots = TootsDataset.from_crawl(crawl)
        coverage = crawl.coverage().as_dict()
    else:
        from repro.corpus import DEFAULT_CORPUS_SHARD_SIZE, CorpusStore, CorpusWriter

        if (Path(corpus_dir) / "manifest.json").exists():
            corpus = CorpusStore(corpus_dir)
            unknown = set(corpus.observations) - set(network.domains())
            if unknown:
                from repro.errors import DatasetError

                raise DatasetError(
                    f"the corpus at {corpus_dir} was crawled from a different "
                    f"scenario ({len(unknown)} unknown instance domain(s), e.g. "
                    f"{sorted(unknown)[0]!r}); point --corpus at a fresh directory"
                )
            coverage = corpus.coverage
        else:
            writer = CorpusWriter(
                corpus_dir,
                shard_size=corpus_shard_size or DEFAULT_CORPUS_SHARD_SIZE,
                resume=resume,
            )
            crawl = toot_crawler.crawl(sink=writer)
            coverage = crawl.coverage().as_dict()
            corpus = writer.finalise(crawl_minute=crawl.crawl_minute, coverage=coverage)
        toots = TootsDataset.from_corpus(corpus)

    graph_crawler = FollowerGraphCrawler(
        transport, threads=crawl_threads, politeness_delay=politeness_delay
    )
    graph_store = None
    graph_coverage = None
    if graph_dir is None:
        graph_crawl = graph_crawler.crawl()
        graphs = GraphDataset.from_crawl(graph_crawl)
        graph_coverage = graph_crawl.coverage().as_dict()
    else:
        from repro.corpus import DEFAULT_GRAPH_SHARD_SIZE, GraphStore, GraphWriter

        if (Path(graph_dir) / "manifest.json").exists():
            graph_store = GraphStore(graph_dir)
            unknown = set(graph_store.edges_collected) - set(network.domains())
            if unknown:
                from repro.errors import DatasetError

                raise DatasetError(
                    f"the graph store at {graph_dir} was crawled from a different "
                    f"scenario ({len(unknown)} unknown instance domain(s), e.g. "
                    f"{sorted(unknown)[0]!r}); point --graph at a fresh directory"
                )
            graph_coverage = graph_store.coverage
        else:
            writer = GraphWriter(
                graph_dir,
                shard_size=graph_shard_size or DEFAULT_GRAPH_SHARD_SIZE,
                resume=resume,
            )
            graph_crawl = graph_crawler.crawl(sink=writer)
            graph_coverage = graph_crawl.coverage().as_dict()
            graph_store = writer.finalise(
                crawl_minute=graph_crawl.crawl_minute, coverage=graph_coverage
            )
        graphs = GraphDataset.from_edges(graph_store.iter_edge_handles())

    return CollectedDatasets(
        instances=instances,
        toots=toots,
        graphs=graphs,
        network=network,
        corpus=corpus,
        graph_store=graph_store,
        coverage=coverage,
        graph_coverage=graph_coverage,
    )
