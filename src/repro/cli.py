"""Command-line interface for the reproduction toolkit.

Seven subcommands cover the common workflows::

    repro-mastodon scenario     --preset small --seed 7   # population summary
    repro-mastodon report       --preset tiny  --seed 7   # headline analyses
    repro-mastodon export OUT/  --preset tiny  --seed 7   # anonymised JSONL dump
    repro-mastodon collect --corpus out/ --preset large   # stream crawl to columns
    repro-mastodon experiments                            # list every table/figure
    repro-mastodon run fig15 fig16 --preset small --seed 42 --json out/
    repro-mastodon run --all --preset tiny --seed 7       # the whole evaluation
    repro-mastodon run fig15 fig16 --preset large --corpus corpus/ --workers 4
    repro-mastodon serve corpus/ --graph graph/ --warm    # availability queries

The CLI is a thin wrapper over the public API: ``run`` dispatches
through :func:`repro.experiments.run_experiments` (one shared, memoised
pipeline for any subset of the paper's experiments), ``report`` is a
view over the same runners' headline scalars, and anything printed here
can also be produced programmatically.  ``collect --corpus`` and ``run
--corpus`` stream the toot crawl into the columnar corpus store
(:mod:`repro.corpus`): same curves bit for bit, O(shard) instead of
O(corpus) Python objects.  ``--graph`` gives the follower crawl the
same treatment (on-disk edge shards), and ``collect --columnar``
generates the scenario as numpy columns and streams them straight to
disk — the only route to the 10M-toot ``xlarge`` preset.

Resilience: ``--retries`` routes every crawl request through retrying
transports with per-instance circuit breakers, ``--fault-rate`` injects
seeded chaos to exercise them, and ``collect --resume`` reopens an
interrupted crawl from its journal — sealed instances are never
re-crawled.

Observability (``collect``/``run``/``serve``): ``--trace PATH`` records
spans across the whole command (``--trace-format chrome`` writes a
``chrome://tracing`` file), ``--metrics [PATH]`` dumps Prometheus text
on exit, and ``-v``/``-q`` tune the ``repro.*`` loggers.  The HTTP
server additionally answers ``GET /metrics`` whether or not the flags
were passed.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import Sequence

from repro import build_scenario, collect_datasets, obs
from repro.crawler import FollowerGraphCrawler, SimulatedTransport, TootCrawler
from repro.datasets import Anonymiser, save_edges, save_snapshots, save_toot_records
from repro.errors import AnalysisError, ConfigurationError, DatasetError
from repro.experiments import ExperimentContext, has_runner, run_experiments
from repro.fediverse import build_columnar_scenario, preset_names
from repro.reporting import EXPERIMENTS, format_percentage, format_table

#: The experiments whose scalars make up the ``report`` headline table.
REPORT_EXPERIMENTS = ("headline", "fig5", "fig7", "fig14")


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        choices=preset_names(),
        default="tiny",
        help=(
            "scenario size preset (default: tiny; 'large' targets 1M+ toots, "
            "'xlarge' 10M+ and needs --columnar)"
        ),
    )
    parser.add_argument("--seed", type=int, default=7, help="scenario random seed (default: 7)")
    parser.add_argument(
        "--monitor-interval",
        type=int,
        default=24 * 60,
        help="monitor probe interval in minutes (default: daily)",
    )


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "route every crawl request through the resilient transport with "
            "up to N attempts (exponential backoff + jitter, per-instance "
            "circuit breakers); default: no retries"
        ),
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=None,
        metavar="P",
        help=(
            "inject seeded transport faults (timeouts, resets, 5xx, 429s, "
            "truncated pages, instance deaths) with total probability P per "
            "request — a chaos harness for exercising --retries"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="fault-injection seed (default: 0; faults are deterministic per seed)",
    )
    parser.add_argument(
        "--retry-delay",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "base backoff delay between retry attempts (default: 0.05; the "
            "cap scales with it — tiny values keep chaos runs fast in CI)"
        ),
    )


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        dest="trace_path",
        help=(
            "record tracing spans for the whole command to PATH (crawl, "
            "corpus, engine, experiment phases, serve); a closing summary "
            "reports how much wall-clock the root spans cover"
        ),
    )
    parser.add_argument(
        "--trace-format",
        choices=obs.TRACE_FORMATS,
        default="jsonl",
        help=(
            "trace file format: 'jsonl' streams one span per line as spans "
            "close (crash-safe), 'chrome' writes a chrome://tracing / "
            "ui.perfetto.dev trace_event file on exit (default: jsonl)"
        ),
    )
    parser.add_argument(
        "--metrics",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        dest="metrics_path",
        help=(
            "enable counters/histograms on the instrumented hot paths and "
            "dump them in Prometheus text format on exit — to stdout, or to "
            "PATH if given"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log more from the repro.* loggers (-v: INFO, -vv: DEBUG)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="log less (-q: errors only, -qq: silence)",
    )


def _retry_policy(args: argparse.Namespace):
    """The retry configuration described by the resilience flags.

    Returns ``None`` (retries disabled), an int ``max_attempts`` for the
    default backoff schedule, or a full
    :class:`~repro.crawler.resilient.RetryPolicy` when ``--retry-delay``
    reshapes the schedule (the delay cap scales with the base so a tiny
    base cannot still escalate to multi-second sleeps).
    """
    if args.retries is None and args.retry_delay is None:
        return None
    if args.retry_delay is None:
        return args.retries
    from repro import RetryPolicy

    attempts = args.retries if args.retries is not None else 4
    return RetryPolicy(
        max_attempts=attempts,
        base_delay=args.retry_delay,
        max_delay=min(2.0, args.retry_delay * 64),
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mastodon",
        description="Reproduction toolkit for 'Challenges in the Decentralised Web' (IMC 2019)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenario = subparsers.add_parser("scenario", help="generate a scenario and print its population")
    _add_scenario_arguments(scenario)
    scenario.set_defaults(func=_command_scenario)

    report = subparsers.add_parser("report", help="run the measurement pipeline and print headline analyses")
    _add_scenario_arguments(report)
    report.set_defaults(func=_command_report)

    export = subparsers.add_parser("export", help="export anonymised datasets as JSON lines")
    export.add_argument("output_dir", help="directory to write the JSONL files into")
    _add_scenario_arguments(export)
    export.add_argument("--salt", default=None, help="anonymisation salt (random if omitted)")
    export.set_defaults(func=_command_export)

    collect = subparsers.add_parser(
        "collect",
        help="run the measurement pipeline, streaming the crawl to a columnar corpus",
        description=(
            "Collect the paper's datasets and stream the toot crawl into the "
            "columnar corpus store: integer-coded .npz shards plus a JSON "
            "manifest that 'run --corpus' and PlacementArrays.from_corpus "
            "build from directly."
        ),
    )
    collect.add_argument(
        "--corpus",
        metavar="DIR",
        required=True,
        dest="corpus_dir",
        help="directory to write the columnar corpus into",
    )
    collect.add_argument(
        "--shard-toots",
        type=int,
        default=None,
        metavar="N",
        help="toots per corpus shard (default: the corpus writer's 250k)",
    )
    collect.add_argument(
        "--graph",
        metavar="DIR",
        default=None,
        dest="graph_dir",
        help=(
            "also stream the follower crawl into an on-disk edge-shard store "
            "at DIR (integer-coded .npz shards + manifest)"
        ),
    )
    collect.add_argument(
        "--columnar",
        action="store_true",
        help=(
            "generate the scenario as numpy columns and stream them straight "
            "into the corpus (and --graph) without materialising the object "
            "network — required for the 'xlarge' preset"
        ),
    )
    collect.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted collect: sealed instances recorded in the "
            "crawl journal are trusted without re-crawling, partial files are "
            "quarantined; a directory whose manifest is already complete is "
            "reused as-is"
        ),
    )
    collect.add_argument(
        "--politeness",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="minimum delay between requests to the same instance (default: 0)",
    )
    _add_scenario_arguments(collect)
    _add_resilience_arguments(collect)
    _add_observability_arguments(collect)
    collect.set_defaults(func=_command_collect)

    experiments = subparsers.add_parser(
        "experiments", help="list every reproducible table and figure"
    )
    experiments.set_defaults(func=_command_experiments)

    run = subparsers.add_parser(
        "run",
        help="run experiments from the registry over one shared pipeline",
        description=(
            "Run any subset of the paper's experiments (e.g. 'run fig15 fig16'). "
            "The scenario, measurement pipeline and placements are built once and "
            "shared across every selected experiment."
        ),
    )
    run.add_argument(
        "experiment_ids",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids to run (fig1..fig16, table1, table2, headline)",
    )
    run.add_argument(
        "--all", action="store_true", dest="run_all", help="run every registered experiment"
    )
    _add_scenario_arguments(run)
    run.add_argument(
        "--json",
        metavar="DIR",
        dest="json_dir",
        default=None,
        help="also write one <experiment>.json result file per experiment into DIR",
    )
    run.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="TOOTS",
        help=(
            "evaluate availability sweeps in toot-range shards of this size "
            "(0 disables sharding; default: automatic past the engine's "
            "corpus-size threshold)"
        ),
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluate incidence shards on N threads (implies sharding for N > 1)",
    )
    run.add_argument(
        "--corpus",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        dest="corpus_dir",
        help=(
            "stream the toot crawl into a columnar corpus and build placements "
            "from its columns (bit-identical curves, O(shard) memory); with no "
            "DIR the corpus lives in a temporary directory for the run"
        ),
    )
    run.add_argument(
        "--graph",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        dest="graph_dir",
        help=(
            "stream the follower crawl into an on-disk edge-shard store and "
            "read subscription follower sets from it (no networkx on the "
            "placement path); with no DIR the store lives in a temporary "
            "directory for the run"
        ),
    )
    run.add_argument(
        "--churn-ticks",
        type=int,
        default=None,
        metavar="N",
        help=(
            "probe ticks of the temporal-churn sweep across the observation "
            "window (the 'churn' experiment; default: 48)"
        ),
    )
    run.add_argument(
        "--churn-seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="SEED",
        help="bootstrap seeds of the sampled churn processes (default: 0 1 2)",
    )
    _add_resilience_arguments(run)
    _add_observability_arguments(run)
    run.set_defaults(func=_command_run)

    serve = subparsers.add_parser(
        "serve",
        help="answer availability queries from a warm, mmap-backed service",
        description=(
            "Load a columnar corpus (and optionally its graph store) read-only "
            "via memory-mapped shards, build placements and loss tables once, "
            "then answer per-user/per-instance availability queries at "
            "interactive latency over HTTP (JSON) or stdin/stdout — "
            "bit-identical to the batch sweeps."
        ),
    )
    serve.add_argument(
        "corpus_dir",
        metavar="CORPUS_DIR",
        help="columnar corpus directory (from 'collect --corpus')",
    )
    serve.add_argument(
        "--graph",
        metavar="DIR",
        default=None,
        dest="graph_dir",
        help=(
            "follower-graph store directory (from 'collect --graph'); enables "
            "the s-rep strategy, timeline queries and the by_users/"
            "by_connections rankings"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8015, help="bind port (default: 8015)")
    serve.add_argument(
        "--stdin",
        action="store_true",
        help="answer line-oriented queries on stdin/stdout instead of HTTP",
    )
    serve.add_argument(
        "--no-mmap",
        action="store_true",
        help="load shards eagerly instead of memory-mapping them",
    )
    serve.add_argument(
        "--warm",
        nargs="*",
        metavar="STRATEGY",
        default=None,
        help=(
            "strategies to build eagerly before serving (e.g. no-rep s-rep "
            "n=2); with no names, warms no-rep (and s-rep when --graph is "
            "given); omit the flag to build lazily on first query"
        ),
    )
    serve.add_argument(
        "--removal-steps",
        type=int,
        default=50,
        metavar="N",
        help="length of the built-in removal schedules (default: 50)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluate loss-table shards on N threads during the one-time build",
    )
    _add_observability_arguments(serve)
    serve.set_defaults(func=_command_serve)
    return parser


def _command_scenario(args: argparse.Namespace) -> int:
    network = build_scenario(args.preset, seed=args.seed)
    stats = network.stats()
    print(
        format_table(
            ["metric", "value"],
            [[key, value] for key, value in stats.items()],
            title=f"Scenario '{args.preset}' (seed={args.seed})",
        )
    )
    return 0


def _command_report(args: argparse.Namespace) -> int:
    ctx = ExperimentContext(
        preset=args.preset, seed=args.seed, monitor_interval_minutes=args.monitor_interval
    )
    results = run_experiments(REPORT_EXPERIMENTS, ctx=ctx)
    headline = results["headline"]
    hosting_result = results["fig5"]
    downtime = results["fig7"]
    federation = results["fig14"]
    rows = [
        ["top 10% instances: user share",
         format_percentage(headline.scalar("top10pct_user_share"))],
        ["user Gini coefficient", round(headline.scalar("user_gini"), 2)],
        ["top hosting country",
         f"{hosting_result.scalar('top_country')} "
         f"({format_percentage(hosting_result.scalar('top_country_user_share'))} of users)"],
        ["top-3 AS user share", format_percentage(hosting_result.scalar("top3_as_user_share"))],
        ["mean instance downtime", format_percentage(downtime.scalar("mean_downtime"))],
        ["instances >50% downtime",
         format_percentage(downtime.scalar("share_above_50pct_downtime"))],
        ["instances with <10% home toots",
         format_percentage(federation.scalar("share_under_10pct_home"))],
    ]
    print(
        format_table(
            ["headline", "measured"],
            rows,
            title=f"Headline reproduction report — '{args.preset}' scenario, seed {args.seed}",
        )
    )
    return 0


def _command_export(args: argparse.Namespace) -> int:
    output = Path(args.output_dir)
    network = build_scenario(args.preset, seed=args.seed)
    data = collect_datasets(network, monitor_interval_minutes=args.monitor_interval)
    transport = SimulatedTransport(network)
    toot_crawl = TootCrawler(transport, threads=4).crawl()
    graph_crawl = FollowerGraphCrawler(transport, threads=4).crawl()

    anonymiser = Anonymiser(salt=args.salt)
    snapshots = save_snapshots(output / "instance_snapshots.jsonl", data.instances.log)
    toots = save_toot_records(
        output / "toots.jsonl", anonymiser.anonymise_toots(toot_crawl.all_records())
    )
    edges = save_edges(output / "follower_edges.jsonl", anonymiser.anonymise_edges(graph_crawl.edges))
    print(f"wrote {snapshots} snapshots, {toots} toot records, {edges} follower edges to {output}/")
    print(f"anonymisation salt: {anonymiser.salt}")
    return 0


def _collect_columnar(args: argparse.Namespace) -> "tuple[object, object | None]":
    """Scenario → corpus (→ graph) without materialising the object network."""
    from repro.corpus import (
        DEFAULT_CORPUS_SHARD_SIZE,
        CorpusWriter,
        GraphWriter,
    )

    scenario = build_columnar_scenario(args.preset, seed=args.seed)
    minute = scenario.config.window_minutes - 1
    writer = CorpusWriter(
        args.corpus_dir, shard_size=args.shard_toots or DEFAULT_CORPUS_SHARD_SIZE
    )
    scenario.write_corpus(writer, at_minute=minute)
    store = writer.finalise(crawl_minute=minute)
    graph_store = None
    if args.graph_dir is not None:
        graph_writer = GraphWriter(args.graph_dir)
        scenario.write_graph(graph_writer, at_minute=minute)
        graph_store = graph_writer.finalise(crawl_minute=minute)
    return store, graph_store


def _command_collect(args: argparse.Namespace) -> int:
    if not args.resume:
        if (Path(args.corpus_dir) / "manifest.json").exists():
            print(
                f"error: {args.corpus_dir} already holds a corpus manifest; "
                "choose a fresh directory, pass it to 'run --corpus' to reuse "
                "it, or pass --resume",
                file=sys.stderr,
            )
            return 2
        if args.graph_dir is not None and (Path(args.graph_dir) / "manifest.json").exists():
            print(
                f"error: {args.graph_dir} already holds a graph manifest; "
                "choose a fresh directory, pass it to 'run --graph' to reuse "
                "it, or pass --resume",
                file=sys.stderr,
            )
            return 2
    if args.resume and args.columnar:
        print(
            "error: --resume only applies to the crawling path; the columnar "
            "generator writes stores in one pass",
            file=sys.stderr,
        )
        return 2
    if args.preset == "xlarge" and not args.columnar:
        print(
            "error: the 'xlarge' preset only works with --columnar "
            "(10M toots never fit through the object network)",
            file=sys.stderr,
        )
        return 2
    coverage = None
    try:
        if args.columnar:
            store, graph_store = _collect_columnar(args)
        else:
            network = build_scenario(args.preset, seed=args.seed)
            data = collect_datasets(
                network,
                monitor_interval_minutes=args.monitor_interval,
                corpus_dir=args.corpus_dir,
                corpus_shard_size=args.shard_toots,
                graph_dir=args.graph_dir,
                fault_rates=args.fault_rate,
                fault_seed=args.fault_seed,
                retry_policy=_retry_policy(args),
                resume=args.resume,
                politeness_delay=args.politeness,
            )
            store, graph_store = data.corpus, data.graph_store
            coverage = data.coverage
    except (ConfigurationError, DatasetError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows = [
        ["unique toots", store.n_toots],
        ["observations (pre-dedup)", store.n_observations],
        ["shards", store.n_shards],
        ["toots per shard", store.shard_size],
        ["instance domains", int(store.domains.shape[0])],
        ["authors", int(store.authors.shape[0])],
        ["on-disk size (MiB)", round(store.nbytes() / 2**20, 1)],
    ]
    if coverage is not None:
        rows += [
            ["crawl coverage", format_percentage(coverage["coverage_fraction"])],
            ["instances resumed", coverage.get("instances_resumed", 0)],
            ["instances failed", coverage.get("instances_failed", 0)],
        ]
    if graph_store is not None:
        rows += [
            ["graph edges", graph_store.n_edges],
            ["graph nodes", graph_store.n_nodes],
            ["graph on-disk size (MiB)", round(graph_store.nbytes() / 2**20, 1)],
        ]
    print(
        format_table(
            ["corpus", "value"],
            rows,
            title=f"Columnar corpus — '{args.preset}' scenario, seed {args.seed}",
        )
    )
    print(f"wrote {store.n_shards} shard(s) + manifest to {store.path}/")
    if graph_store is not None:
        print(
            f"wrote {graph_store.n_shards} graph shard(s) + manifest to {graph_store.path}/"
        )
    graph_flag = f" --graph {graph_store.path}" if graph_store is not None else ""
    print(f"run experiments from it with: repro-mastodon run fig15 fig16 "
          f"--preset {args.preset} --seed {args.seed} --corpus {store.path}{graph_flag}")
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    rows = [
        [
            experiment.experiment_id,
            experiment.title,
            experiment.benchmark,
            "yes" if has_runner(experiment.experiment_id) else "-",
        ]
        for experiment in EXPERIMENTS.values()
    ]
    print(format_table(["id", "title", "benchmark", "runner"], rows, title="Reproducible experiments"))
    print("\nrun them with: repro-mastodon run <id> [<id> ...] | --all")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.run_all and args.experiment_ids:
        print("error: pass experiment ids or --all, not both", file=sys.stderr)
        return 2
    if not args.run_all and not args.experiment_ids:
        print("error: no experiments selected (pass ids or --all)", file=sys.stderr)
        return 2
    ids = list(EXPERIMENTS) if args.run_all else args.experiment_ids
    unknown = [experiment_id for experiment_id in ids if experiment_id not in EXPERIMENTS]
    if unknown:
        known = ", ".join(EXPERIMENTS)
        print(
            f"error: unknown experiment id(s): {', '.join(unknown)} (known: {known})",
            file=sys.stderr,
        )
        return 2

    # user-supplied store directories that already hold a manifest are
    # validated up front, so a broken manifest is a clean exit-2 naming
    # the offending directory instead of a mid-run traceback
    try:
        _validate_store_dirs(args.corpus_dir, args.graph_dir)
    except DatasetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    corpus_dir = args.corpus_dir
    scratch_corpus = None
    if corpus_dir == "":
        scratch_corpus = tempfile.TemporaryDirectory(prefix="repro-corpus-")
        corpus_dir = scratch_corpus.name
        print(f"streaming the crawl to a temporary corpus at {corpus_dir}/")
    graph_dir = args.graph_dir
    scratch_graph = None
    if graph_dir == "":
        scratch_graph = tempfile.TemporaryDirectory(prefix="repro-graph-")
        graph_dir = scratch_graph.name
        print(f"streaming the follower crawl to a temporary graph store at {graph_dir}/")

    churn_kwargs: dict[str, object] = {}
    if args.churn_ticks is not None:
        churn_kwargs["churn_ticks"] = args.churn_ticks
    if args.churn_seeds is not None:
        churn_kwargs["churn_seeds"] = tuple(args.churn_seeds)
    ctx = ExperimentContext(
        preset=args.preset,
        seed=args.seed,
        monitor_interval_minutes=args.monitor_interval,
        shard_size=args.shard_size,
        workers=args.workers,
        corpus_dir=corpus_dir,
        graph_dir=graph_dir,
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
        retries=_retry_policy(args),
        **churn_kwargs,
    )
    try:
        results = run_experiments(ids, ctx=ctx)
    except (AnalysisError, ConfigurationError, DatasetError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if scratch_corpus is not None:
            scratch_corpus.cleanup()
        if scratch_graph is not None:
            scratch_graph.cleanup()

    for result in results.values():
        print(result.render_text())
        print()

    if args.json_dir is not None:
        output = Path(args.json_dir)
        output.mkdir(parents=True, exist_ok=True)
        for experiment_id, result in results.items():
            (output / f"{experiment_id}.json").write_text(result.to_json() + "\n")
        print(f"wrote {len(results)} result file(s) to {output}/")

    built = ", ".join(f"{name} ×{count}" for name, count in ctx.counters.items())
    print(f"ran {len(results)} experiment(s) on '{args.preset}' (seed {args.seed}); pipeline builds: {built}")
    return 0


def _validate_store_dirs(corpus_dir: str | None, graph_dir: str | None) -> None:
    """Open any pre-existing store manifests to surface errors early."""
    from repro.corpus import CorpusStore, GraphStore

    if corpus_dir and (Path(corpus_dir) / "manifest.json").exists():
        CorpusStore(corpus_dir)
    if graph_dir and (Path(graph_dir) / "manifest.json").exists():
        GraphStore(graph_dir)


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve import AvailabilityService, serve_http, serve_stdio

    try:
        service = AvailabilityService(
            args.corpus_dir,
            args.graph_dir,
            mmap=not args.no_mmap,
            removal_steps=args.removal_steps,
            workers=args.workers,
        )
    except DatasetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.warm is not None:
        try:
            service.warm(args.warm or None)
        except (AnalysisError, DatasetError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"warmed {', '.join(sorted(service.meta()['strategies']))} over "
            f"{service.corpus.n_toots} toots",
            flush=True,
        )
    if args.stdin:
        serve_stdio(service)
        return 0
    serve_http(service, args.host, args.port)
    return 0


def _setup_observability(args: argparse.Namespace) -> None:
    """Install the tracer/metrics/logging state the flags ask for."""
    if hasattr(args, "verbose"):
        obs.configure_logging(args.verbose - args.quiet)
    if getattr(args, "trace_path", None) is not None:
        try:
            obs.set_tracer(obs.Tracer(args.trace_path, fmt=args.trace_format))
        except OSError as exc:
            raise ConfigurationError(f"cannot open trace file: {exc}") from exc
    if getattr(args, "metrics_path", None) is not None:
        obs.enable_metrics(fresh=True)


def _teardown_observability(args: argparse.Namespace, elapsed: float) -> None:
    """Flush trace/metrics output and reset the process-wide state.

    The reset matters beyond hygiene: tests (and embedders) call
    :func:`main` repeatedly in one process, and one invocation's tracer
    must not leak into the next.
    """
    tracer = obs.get_tracer()
    if tracer is not None:
        obs.set_tracer(None)
        tracer.close()
        covered = obs.root_span_seconds(tracer.events)
        pct = 100.0 * covered / elapsed if elapsed > 0 else 0.0
        print(
            f"trace: {len(tracer.events)} span(s) -> {tracer.path} "
            f"[{tracer.fmt}]; root spans cover {pct:.1f}% of {elapsed:.2f}s wall",
            file=sys.stderr,
        )
    if getattr(args, "metrics_path", None) is not None and obs.metrics_enabled():
        text = obs.metrics().render_prometheus()
        obs.disable_metrics()
        if args.metrics_path == "-":
            sys.stdout.write(text)
        else:
            Path(args.metrics_path).write_text(text)
            print(
                f"metrics: wrote Prometheus text to {args.metrics_path}",
                file=sys.stderr,
            )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro-mastodon`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _setup_observability(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    try:
        return args.func(args)
    finally:
        _teardown_observability(args, time.perf_counter() - started)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
