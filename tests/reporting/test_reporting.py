"""Tests for table rendering, figure series and the experiment registry."""

from __future__ import annotations

import json

import pytest

from repro.errors import AnalysisError
from repro.reporting.experiments import EXPERIMENTS, get_experiment
from repro.reporting.figures import FigureSeries, cdf_series, curve_series
from repro.reporting.tables import format_percentage, format_table


class TestTables:
    def test_basic_rendering(self):
        table = format_table(
            ["domain", "users"],
            [["alpha.example", 1200], ["beta.example", 35]],
            title="Instances",
        )
        lines = table.splitlines()
        assert lines[0] == "Instances"
        assert "domain" in lines[1] and "users" in lines[1]
        assert "alpha.example" in table
        assert "1,200" in table

    def test_numbers_right_aligned(self):
        table = format_table(["n"], [[1], [1000]])
        lines = table.splitlines()
        assert lines[-1].endswith("1,000")
        assert lines[-2].endswith("    1")

    def test_float_formatting(self):
        table = format_table(["x"], [[0.5]])
        assert "0.50" in table

    def test_row_width_mismatch(self):
        with pytest.raises(AnalysisError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers(self):
        with pytest.raises(AnalysisError):
            format_table([], [])

    def test_format_percentage(self):
        assert format_percentage(0.1234) == "12.3%"
        assert format_percentage(0.5, digits=0) == "50%"

    def test_format_percentage_digits(self):
        assert format_percentage(0.123456, digits=2) == "12.35%"
        assert format_percentage(0.123456, digits=4) == "12.3456%"
        assert format_percentage(0.0) == "0.0%"
        assert format_percentage(1.0) == "100.0%"

    def test_bools_are_not_formatted_as_numbers(self):
        table = format_table(["flag"], [[True], [False]])
        assert "True" in table and "False" in table
        # bools are left-aligned like text, not right-aligned like ints
        lines = table.splitlines()
        assert lines[-2].startswith("True")
        assert lines[-1].startswith("False")

    def test_int_vs_bool_alignment_in_same_column(self):
        table = format_table(["value"], [[1000000], [True]])
        lines = table.splitlines()
        assert lines[-2].endswith("1,000,000")  # int: right-aligned with separators
        assert lines[-1].startswith("True")     # bool: left-aligned, no formatting

    def test_float_thousands_separator(self):
        table = format_table(["x"], [[1234.5678]])
        assert "1,234.57" in table

    def test_ragged_row_error_message_names_widths(self):
        with pytest.raises(AnalysisError, match="row width 3 does not match header width 2"):
            format_table(["a", "b"], [[1, 2], [1, 2, 3]])

    def test_mixed_type_column_width(self):
        table = format_table(["v"], [["a-long-string"], [7]])
        lines = table.splitlines()
        assert lines[-2] == "a-long-string"
        assert lines[-1].endswith("            7")


class TestFigureSeries:
    def test_add_and_export(self):
        figure = FigureSeries("fig7", "Downtime CDF")
        figure.add("instances", [0.0, 0.5, 1.0], [0.1, 0.6, 1.0])
        assert figure.names() == ["instances"]
        payload = figure.to_dict()
        assert payload["figure_id"] == "fig7"
        assert payload["series"]["instances"]["x"] == [0.0, 0.5, 1.0]
        json.dumps(payload)  # must be JSON-serialisable
        assert "fig7" in figure.summary()

    def test_mismatched_lengths_rejected(self):
        figure = FigureSeries("fig", "title")
        with pytest.raises(AnalysisError):
            figure.add("bad", [1, 2], [1])

    def test_cdf_series(self):
        xs, ys = cdf_series([3, 1, 2])
        assert xs == [1, 2, 3]
        assert ys[-1] == 1.0

    def test_curve_series(self):
        xs, ys = curve_series([(0, 1.0), (1, 0.5)])
        assert xs == [0.0, 1.0]
        assert ys == [1.0, 0.5]


class TestExperimentRegistry:
    def test_every_figure_and_table_registered(self):
        expected = {f"fig{i}" for i in range(1, 17)} | {
            "table1",
            "table2",
            "headline",
            "correlated",
            "churn",
        }
        assert expected == set(EXPERIMENTS)

    def test_every_experiment_has_a_benchmark_and_modules(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.benchmark.startswith("benchmarks/bench_")
            assert experiment.modules
            assert experiment.paper_claim

    def test_get_experiment(self):
        assert get_experiment("fig12").title.startswith("Removing")
        with pytest.raises(AnalysisError):
            get_experiment("fig99")

    def test_registered_modules_importable(self):
        import importlib

        for experiment in EXPERIMENTS.values():
            for module in experiment.modules:
                importlib.import_module(module)
