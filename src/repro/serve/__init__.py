"""Availability-as-a-service: the long-lived query layer.

The batch experiments answer the paper's headline question — how
available is a timeline when instances fail — by rebuilding the whole
pipeline per invocation.  This package keeps the answer warm instead:
:class:`AvailabilityService` opens a columnar corpus (and optionally its
follower-graph store) read-only via memory-mapped shards, performs the
expensive one-time build exactly once (intern tables, per-strategy
:class:`~repro.engine.placement.PlacementArrays`, per-(strategy ×
failure) loss tables through the same streaming reduction the batch
sweeps use), and then answers per-user / per-instance availability
queries at interactive latency — bit-identical to the equivalent batch
sweep.

Three exposures share one service object:

* the Python API (:class:`AvailabilityService`);
* a stdlib :class:`~http.server.ThreadingHTTPServer` JSON endpoint
  (:func:`serve_http`, behind ``repro-mastodon serve``);
* a line-oriented stdin/stdout query mode for scripts
  (:func:`serve_stdio`).
"""

from repro.serve.service import AvailabilityService, handle_query, parse_strategy
from repro.serve.http import build_http_server, serve_http
from repro.serve.stdio import serve_stdio

__all__ = [
    "AvailabilityService",
    "build_http_server",
    "handle_query",
    "parse_strategy",
    "serve_http",
    "serve_stdio",
]
