"""Fig. 8 — per-day downtime binned by instance popularity, vs Twitter 2007.

Paper shape: small instances (<10K toots) have the most downtime, the
largest (>1M toots) are worse than the 100K-1M group, and even 2007-era
Twitter (mean daily downtime 1.25%) is more available than the average
Mastodon instance (10.95%).

Thin timing wrapper over the ``fig8`` registry runner.
"""

from __future__ import annotations

from repro.reporting import get_experiment

from benchmarks.conftest import emit


def test_fig08_downtime_bins(benchmark, ctx):
    result = benchmark(lambda: get_experiment("fig8").run(ctx))
    emit("Fig. 8 — downtime by popularity vs Twitter", result.render_text())

    assert result.scalar("bin_count") >= 2
    # the smallest instances are not the most reliable group
    assert result.scalar("smallest_bin_mean_downtime") >= result.scalar("min_bin_mean_downtime")
    # Twitter 2007 was still more available than the average instance
    assert result.scalar("downtime_ratio") > 1.5
