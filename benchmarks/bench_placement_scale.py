"""Vectorised vs legacy placement construction at 100k toots (the PR 2 gate).

After PR 1 the availability curves became batched reductions, leaving
placement *construction* as the Figs. 15-16 bottleneck: the legacy
``_random_replication_python`` loop issues one ``rng.choice`` per toot
(~1s unweighted / ~5s weighted at this scale), while the vectorised
builder draws every toot in one chunked pass — per-row ``argpartition``
over random keys, Gumbel top-k for the weighted case.  This benchmark
builds 100,000-toot random placements both ways (weighted and
unweighted) and asserts the vectorised builder is at least 10× faster
for each variant.

The two sides cannot be compared toot-by-toot (the batched draw consumes
the RNG stream in a different order), so the benchmark cross-checks the
replica-count distribution instead; the full statistical suite lives in
``tests/engine/test_placement.py``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_placement_scale.py

or through the harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_placement_scale.py --benchmark-only -s
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.replication import _random_replication_python, random_replication
from repro.crawler.toot_crawler import TootRecord
from repro.datasets.toots import TootsDataset

N_TOOTS = 100_000
N_DOMAINS = 400
N_REPLICAS = 3
SEED = 0
MIN_SPEEDUP = 10.0


def synthetic_toots(n_toots: int = N_TOOTS, n_domains: int = N_DOMAINS, seed: int = 1):
    """A 100k-toot catalogue with a Zipf-like home-instance skew."""
    rng = np.random.default_rng(seed)
    domains = [f"i{j}.example" for j in range(n_domains)]
    popularity = 1.0 / np.arange(1, n_domains + 1)
    popularity /= popularity.sum()
    homes = rng.choice(n_domains, size=n_toots, p=popularity)
    records = [
        TootRecord(
            toot_id=t,
            url=f"https://{domains[homes[t]]}/toots/{t}",
            account=f"u{homes[t]}@{domains[homes[t]]}",
            author_domain=domains[homes[t]],
            collected_from=domains[homes[t]],
            created_at=t,
        )
        for t in range(n_toots)
    ]
    weights = {domain: float(w) for domain, w in zip(domains, popularity)}
    return TootsDataset(records=records), domains, weights


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def compare(toots, domains, weights, rounds: int = 2):
    """Best-of-``rounds`` build time per side, measured in alternation.

    Alternating legacy/vectorised rounds and keeping each side's minimum
    makes the ratio robust to CPU-steal windows on shared machines.
    """
    results = {}
    for label, kwargs in (("unweighted", {}), ("weighted", {"weights": weights})):
        legacy_time = fast_time = float("inf")
        legacy = fast = None
        for _ in range(rounds):
            legacy, elapsed = _timed(
                _random_replication_python, toots, domains, N_REPLICAS, seed=SEED, **kwargs
            )
            legacy_time = min(legacy_time, elapsed)
            fast, elapsed = _timed(
                random_replication, toots, domains, N_REPLICAS, seed=SEED, **kwargs
            )
            fast_time = min(fast_time, elapsed)
        # same replica-count distribution (bit-identity is impossible: the
        # batched draw consumes the RNG stream in a different order)
        fast_counts = np.asarray(fast.replica_counts())
        legacy_counts = np.asarray(legacy.replica_counts())
        assert fast_counts.min() >= N_REPLICAS - 1 and fast_counts.max() <= N_REPLICAS
        assert abs(fast_counts.mean() - legacy_counts.mean()) < 0.01
        results[label] = (legacy_time, fast_time)
    return results


def run_comparison(n_toots: int = N_TOOTS):
    toots, domains, weights = synthetic_toots(n_toots=n_toots)
    return compare(toots, domains, weights)


def test_placement_scale_speedup(benchmark):
    toots, domains, weights = synthetic_toots()

    benchmark.pedantic(
        random_replication,
        args=(toots, domains, N_REPLICAS),
        kwargs={"seed": SEED, "weights": weights},
        rounds=1,
        iterations=1,
    )
    results = compare(toots, domains, weights)

    from benchmarks.conftest import emit
    from repro.reporting import format_table

    rows = []
    for label, (legacy_time, fast_time) in results.items():
        rows.append([f"legacy loop ({label})", round(legacy_time, 3), "1.0x"])
        rows.append(
            [
                f"vectorised ({label})",
                round(fast_time, 3),
                f"{legacy_time / fast_time:.1f}x",
            ]
        )
    emit(
        f"Placement construction — {N_TOOTS:,} toots, {N_DOMAINS} candidate domains, "
        f"{N_REPLICAS} replicas",
        format_table(["builder", "seconds", "speedup"], rows),
    )
    for label, (legacy_time, fast_time) in results.items():
        assert legacy_time / fast_time >= MIN_SPEEDUP, label


def main() -> None:
    results = run_comparison()
    print(
        f"random_replication construction: {N_TOOTS:,} toots x {N_DOMAINS} domains, "
        f"{N_REPLICAS} replicas"
    )
    payload: dict[str, object] = {
        "n_toots": N_TOOTS,
        "n_domains": N_DOMAINS,
        "n_replicas": N_REPLICAS,
        "min_speedup": MIN_SPEEDUP,
    }
    for label, (legacy_time, fast_time) in results.items():
        speedup = legacy_time / fast_time
        print(f"  [{label}]")
        print(f"    legacy python loop  : {legacy_time:8.3f}s")
        print(f"    vectorised builder  : {fast_time:8.3f}s")
        print(f"    speedup             : {speedup:8.1f}x (required >= {MIN_SPEEDUP:.0f}x)")
        payload[f"legacy_seconds[{label}]"] = round(legacy_time, 4)
        payload[f"vectorised_seconds[{label}]"] = round(fast_time, 4)
        payload[f"speedup[{label}]"] = round(speedup, 2)
        assert speedup >= MIN_SPEEDUP, f"{label} placement speedup regressed below 10x"

    try:
        from benchmarks.perf_log import record
    except ImportError:  # run as a script: benchmarks/ itself is on sys.path
        from perf_log import record

    path = record("placement_scale", payload)
    print(f"  recorded            : {path}")


if __name__ == "__main__":
    main()
