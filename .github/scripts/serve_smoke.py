"""End-to-end smoke test for ``repro-mastodon serve`` (the CI serve-smoke job).

Starts the HTTP server as a real subprocess over a pre-collected columnar
corpus + graph store, waits for ``/health``, then checks that the three
exposures agree with each other and with the batch sweep:

1. HTTP ``/availability`` answers for no-rep and s-rep at ``k=10`` under
   ``instances/by_toots`` must equal the ``run fig15 --json`` scalars
   ``no_rep_top10_instances_by_toots`` / ``s_rep_top10_instances_by_toots``
   **exactly** (the serve layer's bit-identity contract).  Only the
   by_toots ranking is compared: the service's ``by_users`` ranking is a
   store-derived analogue of the batch pipeline's monitor-derived one.
2. The stdin/stdout transport, run as a second subprocess with the same
   queries piped through, must return byte-identical availability values.
3. Error paths stay errors: unknown failure names are HTTP 400, unknown
   endpoints 404, malformed stdin tokens answer ``{"error": ...}``.
4. ``GET /metrics`` answers Prometheus text exposition in which the
   fig15 availability queries just issued are visible: the per-endpoint
   request counter and latency histogram for ``/availability``.

Usage::

    python .github/scripts/serve_smoke.py \\
        --corpus smoke-corpus --graph smoke-graph \\
        --results batch-results/fig15.json --port 8731
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path

HEALTH_TIMEOUT_SECONDS = 180.0


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get_text(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=30) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


def _wait_for_health(base: str, process: subprocess.Popen) -> None:
    deadline = time.monotonic() + HEALTH_TIMEOUT_SECONDS
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise SystemExit(f"serve exited early with code {process.returncode}")
        try:
            status, payload = _get(base + "/health")
            if status == 200 and payload.get("status") == "ok":
                return
        except (urllib.error.URLError, OSError):
            pass
        time.sleep(0.5)
    raise SystemExit(f"serve did not become healthy within {HEALTH_TIMEOUT_SECONDS}s")


def _check(label: str, condition: bool, detail: str = "") -> None:
    if not condition:
        raise SystemExit(f"FAIL {label}: {detail}")
    print(f"  ok  {label}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus", required=True, metavar="DIR")
    parser.add_argument("--graph", required=True, metavar="DIR")
    parser.add_argument("--results", required=True, metavar="FIG15_JSON",
                        help="fig15.json written by 'run fig15 --json'")
    parser.add_argument("--port", type=int, default=8731)
    args = parser.parse_args()

    scalars = json.loads(Path(args.results).read_text())["scalars"]
    expected = {
        "no-rep": scalars["no_rep_top10_instances_by_toots"],
        "s-rep": scalars["s_rep_top10_instances_by_toots"],
    }

    base = f"http://127.0.0.1:{args.port}"
    command = [
        sys.executable, "-m", "repro.cli", "serve", args.corpus,
        "--graph", args.graph, "--port", str(args.port), "--warm",
    ]
    print(f"starting: {' '.join(command)}")
    server = subprocess.Popen(command, env=_env())
    try:
        _wait_for_health(base, server)
        print(f"server healthy at {base}")

        http_answers: dict[str, float] = {}
        for strategy, want in expected.items():
            query = urllib.parse.urlencode({
                "strategy": strategy, "failure": "instances/by_toots", "k": 10,
            })
            status, payload = _get(f"{base}/availability?{query}")
            _check(f"http availability {strategy}", status == 200, repr(payload))
            got = payload["availability"]
            http_answers[strategy] = got
            _check(
                f"http {strategy} k=10 == fig15 scalar",
                got == want,
                f"serve {got!r} != batch {want!r}",
            )

        status, payload = _get(f"{base}/meta")
        _check("http /meta", status == 200 and payload["n_toots"] > 0, repr(payload))
        _check(
            "http /meta build counters",
            payload["build_counters"]["strategies_built"] >= 2
            and payload["uptime_seconds"] >= 0,
            repr(payload.get("build_counters")),
        )

        status, content_type, body = _get_text(f"{base}/metrics")
        _check(
            "http /metrics is Prometheus text",
            status == 200 and content_type.startswith("text/plain"),
            f"status {status}, content-type {content_type!r}",
        )
        for needle in (
            '# TYPE repro_serve_requests_total counter',
            'repro_serve_requests_total{endpoint="/availability",status="200"} 2',
            '# TYPE repro_serve_request_seconds histogram',
            'repro_serve_request_seconds_bucket{endpoint="/availability",le="+Inf"} 2',
            'repro_serve_build_seconds_count{kind="strategy"}',
        ):
            _check(f"/metrics contains {needle!r}", needle in body, body[:2000])

        status, payload = _get(f"{base}/stats")
        _check(
            "http /stats",
            status == 200 and payload["build_counters"]["strategies_built"] >= 2
            and "metrics" in payload,
            repr(payload)[:2000],
        )

        status, payload = _get(
            f"{base}/availability?strategy=no-rep&failure=nope&k=10"
        )
        _check("http unknown failure -> 400", status == 400 and "error" in payload,
               f"status {status}: {payload!r}")
        status, payload = _get(f"{base}/nope")
        _check("http unknown endpoint -> 404", status == 404, f"status {status}")
    finally:
        server.terminate()
        server.wait(timeout=30)

    queries = "".join(
        f"availability strategy={strategy} failure=instances/by_toots k=10\n"
        for strategy in expected
    ) + "availability strategy=no-rep bogus\nquit\n"
    stdio = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", args.corpus,
         "--graph", args.graph, "--stdin"],
        input=queries, capture_output=True, text=True, env=_env(), timeout=600,
    )
    _check("stdin transport exit 0", stdio.returncode == 0, stdio.stderr[-2000:])
    lines = [json.loads(line) for line in stdio.stdout.splitlines() if line.strip()]
    _check("stdin answer count", len(lines) == len(expected) + 1,
           f"{len(lines)} answers: {stdio.stdout!r}")
    for answer, (strategy, _) in zip(lines, expected.items()):
        _check(
            f"stdin {strategy} == http",
            answer["availability"] == http_answers[strategy],
            f"stdin {answer['availability']!r} != http {http_answers[strategy]!r}",
        )
    _check("stdin malformed token -> error answer", "error" in lines[-1],
           repr(lines[-1]))

    print("serve smoke: all transports agree with the fig15 batch scalars")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
