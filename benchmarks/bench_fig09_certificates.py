"""Fig. 9 — certificate authority footprint and expiry-driven outages.

Paper shape: Let's Encrypt serves >85% of instances; its 90-day expiry
policy causes correlated outages (worst day: 105 instances down at once);
certificate expiries explain ~6.3% of observed outages.
"""

from __future__ import annotations

from repro.core import availability
from repro.reporting import format_percentage, format_table

from benchmarks.conftest import emit


def test_fig09a_certificate_footprint(benchmark, data):
    footprint = benchmark(lambda: availability.certificate_footprint(data.instances))
    emit(
        "Fig. 9(a) — certificate authority footprint",
        format_table(
            ["authority", "share of instances"],
            [[authority, format_percentage(share)] for authority, share in footprint.items()],
        ),
    )
    assert footprint["Let's Encrypt"] > 0.6
    assert max(footprint.values()) == footprint["Let's Encrypt"]


def test_fig09b_expiry_outages(benchmark, data, network):
    window_days = network.clock.window_days
    series = benchmark(
        lambda: availability.certificate_expiry_outages(network.certificates, window_days)
    )
    worst_day = max(series, key=lambda day: series[day])
    busy_days = [(day, count) for day, count in series.items() if count > 0]
    emit(
        "Fig. 9(b) — instances with a lapsed certificate per day",
        format_table(["day", "instances lapsed"], busy_days[:15])
        + f"\nworst day: day {worst_day} with {series[worst_day]} instances (paper: 105 on one day)",
    )
    assert series[worst_day] >= 2  # a correlated expiry spike exists

    share = availability.certificate_outage_share(data.instances, network.certificates)
    emit(
        "Fig. 9 — share of outages attributable to certificate expiry",
        f"measured: {format_percentage(share)} (paper: 6.3%)",
    )
    assert 0.0 < share < 0.5
