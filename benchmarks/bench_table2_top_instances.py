"""Table 2 — the top instances by home-timeline toots.

Paper shape: the top-10 instances are dominated by large Japanese
deployments (mstdn.jp, friends.nico, pawoo.net), run by a mix of
companies, individuals and crowd-funded operators, hosted on the big
clouds, with very high degrees in both the user and federation graphs.
"""

from __future__ import annotations

from repro.core import federation_analysis
from repro.reporting import format_table

from benchmarks.conftest import emit


def test_table2_top_instances(benchmark, data):
    rows_data = benchmark(
        lambda: federation_analysis.top_instances_report(
            data.toots, data.graphs, data.instances, top=10
        )
    )
    rows = [
        [
            row.domain,
            row.home_toots,
            row.users,
            row.user_out_degree,
            row.user_in_degree,
            row.toot_out_degree,
            row.toot_in_degree,
            row.instance_out_degree,
            row.instance_in_degree,
            row.operator,
            f"{row.as_name} ({row.country})",
        ]
        for row in rows_data
    ]
    emit(
        "Table 2 — top 10 instances by home toots",
        format_table(
            [
                "Domain", "Home toots", "Users", "U-OD", "U-ID",
                "T-OD", "T-ID", "I-OD", "I-ID", "Run by", "AS (country)",
            ],
            rows,
        ),
    )

    assert len(rows_data) == 10
    counts = [row.home_toots for row in rows_data]
    assert counts == sorted(counts, reverse=True)
    # the flagship instances have high federation degrees and real hosting metadata
    assert rows_data[0].instance_out_degree > 0 or rows_data[0].instance_in_degree > 0
    assert all(row.as_name for row in rows_data)
