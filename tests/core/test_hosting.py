"""Tests for the hosting analyses (Figs. 5-6)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core import hosting
from repro.crawler.monitor import InstanceSnapshot, MonitoringLog
from repro.datasets.instances import InstanceMetadata, InstancesDataset
from repro.errors import AnalysisError


def make_dataset() -> InstancesDataset:
    spec = {
        "jp1.example": (400, 4_000, "JP", 9370, "SAKURA Internet Inc."),
        "jp2.example": (100, 1_000, "JP", 16509, "Amazon.com, Inc."),
        "us1.example": (300, 6_000, "US", 16509, "Amazon.com, Inc."),
        "fr1.example": (50, 500, "FR", 16276, "OVH SAS"),
        "fr2.example": (150, 1_500, "FR", 16276, "OVH SAS"),
    }
    log = MonitoringLog(interval_minutes=60)
    metadata = {}
    for domain, (users, toots, country, asn, as_name) in spec.items():
        log.snapshots.append(
            InstanceSnapshot(domain=domain, minute=0, online=True, user_count=users, toot_count=toots)
        )
        metadata[domain] = InstanceMetadata(
            domain=domain, country=country, asn=asn, as_name=as_name
        )
    return InstancesDataset(log=log, metadata=metadata)


def make_federation_graph() -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_edge("jp1.example", "jp2.example", weight=10)
    graph.add_edge("jp1.example", "us1.example", weight=5)
    graph.add_edge("us1.example", "jp1.example", weight=8)
    graph.add_edge("fr1.example", "fr2.example", weight=4)
    graph.add_edge("fr2.example", "jp1.example", weight=3)
    return graph


class TestBreakdowns:
    def test_country_breakdown_ordering_and_shares(self):
        shares = hosting.country_breakdown(make_dataset())
        assert shares[0].key == "JP"
        assert shares[0].users == 500
        assert shares[0].instance_share == pytest.approx(2 / 5)
        assert shares[0].user_share == pytest.approx(0.5)
        assert shares[0].toot_share == pytest.approx(5000 / 13_000)

    def test_asn_breakdown(self):
        shares = hosting.asn_breakdown(make_dataset())
        by_name = {share.key: share for share in shares}
        assert by_name["Amazon.com, Inc."].users == 400
        assert by_name["OVH SAS"].instances == 2

    def test_hoster_breakdown_maps_asns_to_provider_labels(self):
        shares = hosting.hoster_breakdown(make_dataset())
        by_name = {share.key: share for share in shares}
        # known ASNs collapse to provider labels, not raw AS names
        assert by_name["Amazon"].users == 400
        assert by_name["Amazon"].instances == 2
        assert by_name["Sakura Internet"].users == 400
        assert by_name["OVH"].instances == 2
        assert "Amazon.com, Inc." not in by_name

    def test_top_limit(self):
        assert len(hosting.country_breakdown(make_dataset(), top=2)) == 2
        assert len(hosting.hoster_breakdown(make_dataset(), top=1)) == 1

    def test_top_as_user_share(self):
        share = hosting.top_as_user_share(make_dataset(), top=2)
        assert share == pytest.approx((400 + 400) / 1000)

    def test_pipeline_japan_leads_and_top3_as_concentration(self, datasets):
        countries = hosting.country_breakdown(datasets.instances, top=3)
        assert countries[0].key == "JP"
        assert hosting.top_as_user_share(datasets.instances, top=3) > 0.4


class TestCountryFlows:
    def test_flow_shares_sum_to_one_per_source(self):
        flows = hosting.country_federation_flows(make_federation_graph(), make_dataset())
        by_source: dict[str, float] = {}
        for flow in flows:
            by_source[flow.source_country] = by_source.get(flow.source_country, 0.0) + flow.share_of_source
        for total in by_source.values():
            assert total == pytest.approx(1.0)

    def test_same_country_flow_detected(self):
        flows = hosting.country_federation_flows(make_federation_graph(), make_dataset())
        jp_to_jp = [f for f in flows if f.source_country == "JP" and f.target_country == "JP"]
        assert jp_to_jp and jp_to_jp[0].links == 10

    def test_empty_graph_rejected(self):
        with pytest.raises(AnalysisError):
            hosting.country_federation_flows(nx.DiGraph(), make_dataset())

    def test_homophily_metrics(self):
        metrics = hosting.federation_homophily(make_federation_graph(), make_dataset())
        assert metrics["total_links"] == 30
        assert metrics["same_country_share"] == pytest.approx(14 / 30)
        assert metrics["top5_country_link_share"] == 1.0

    def test_pipeline_homophily_positive(self, datasets):
        metrics = hosting.federation_homophily(
            datasets.graphs.federation_graph, datasets.instances
        )
        assert 0.0 < metrics["same_country_share"] <= 1.0
        assert metrics["top5_country_link_share"] > 0.5
