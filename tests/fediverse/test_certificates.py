"""Tests for certificate issuance, expiry windows and the CA footprint."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, DatasetError
from repro.fediverse.certificates import (
    CERTIFICATE_AUTHORITIES,
    Certificate,
    CertificateRegistry,
)
from repro.simtime import MINUTES_PER_DAY


class TestCertificate:
    def test_expiry_computation(self):
        certificate = Certificate(
            domain="a.example", authority="Let's Encrypt", issued_at=0, validity_days=90
        )
        assert certificate.expires_at == 90 * MINUTES_PER_DAY
        assert certificate.is_valid(0)
        assert certificate.is_valid(90 * MINUTES_PER_DAY - 1)
        assert not certificate.is_valid(90 * MINUTES_PER_DAY)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            Certificate(domain="a", authority="Let's Encrypt", issued_at=0, validity_days=0)
        with pytest.raises(ConfigurationError):
            Certificate(domain="a", authority="Let's Encrypt", issued_at=-1, validity_days=10)


class TestCertificateRegistry:
    def test_issue_uses_default_validity(self):
        registry = CertificateRegistry()
        certificate = registry.issue("a.example", "Let's Encrypt", issued_at=0)
        assert certificate.validity_days == CERTIFICATE_AUTHORITIES["Let's Encrypt"]

    def test_unknown_authority_rejected(self):
        registry = CertificateRegistry()
        with pytest.raises(ConfigurationError):
            registry.issue("a.example", "Totally Real CA", issued_at=0)

    def test_history_and_authority(self):
        registry = CertificateRegistry()
        registry.issue("a.example", "COMODO", issued_at=0)
        registry.issue("a.example", "Let's Encrypt", issued_at=100)
        assert len(registry.history("a.example")) == 2
        assert registry.authority_of("a.example") == "Let's Encrypt"
        assert "a.example" in registry
        assert len(registry) == 1

    def test_history_unknown_domain(self):
        registry = CertificateRegistry()
        with pytest.raises(DatasetError):
            registry.history("ghost.example")

    def test_lapse_detection(self):
        registry = CertificateRegistry()
        registry.issue("a.example", "Let's Encrypt", issued_at=0, validity_days=10)
        # renewal arrives two days late
        registry.issue("a.example", "Let's Encrypt", issued_at=12 * MINUTES_PER_DAY, validity_days=10)
        assert not registry.is_lapsed("a.example", 5 * MINUTES_PER_DAY)
        assert registry.is_lapsed("a.example", 11 * MINUTES_PER_DAY)
        assert not registry.is_lapsed("a.example", 13 * MINUTES_PER_DAY)

    def test_unknown_domain_is_not_lapsed(self):
        registry = CertificateRegistry()
        assert not registry.is_lapsed("ghost.example", 100)

    def test_lapse_windows(self):
        registry = CertificateRegistry()
        registry.issue("a.example", "Let's Encrypt", issued_at=0, validity_days=10)
        registry.issue("a.example", "Let's Encrypt", issued_at=12 * MINUTES_PER_DAY, validity_days=10)
        windows = registry.lapse_windows("a.example", window_end=30 * MINUTES_PER_DAY)
        assert windows[0] == (10 * MINUTES_PER_DAY, 12 * MINUTES_PER_DAY)
        # after the second certificate expires (day 22) the domain lapses again
        assert windows[-1][0] == 22 * MINUTES_PER_DAY

    def test_no_lapse_with_timely_renewal(self):
        registry = CertificateRegistry()
        registry.issue("a.example", "Let's Encrypt", issued_at=0, validity_days=10)
        registry.issue("a.example", "Let's Encrypt", issued_at=10 * MINUTES_PER_DAY, validity_days=30)
        windows = registry.lapse_windows("a.example", window_end=30 * MINUTES_PER_DAY)
        assert windows == []

    def test_expired_domains_on_day(self):
        registry = CertificateRegistry()
        registry.issue("a.example", "Let's Encrypt", issued_at=0, validity_days=5)
        registry.issue("b.example", "Let's Encrypt", issued_at=0, validity_days=90)
        assert registry.expired_domains_on_day(6) == ["a.example"]
        assert registry.expired_domains_on_day(2) == []

    def test_footprint(self):
        registry = CertificateRegistry()
        registry.bulk_issue(["a.example", "b.example", "c.example"], "Let's Encrypt", 0)
        registry.issue("d.example", "COMODO", 0)
        footprint = registry.authority_footprint()
        assert footprint["Let's Encrypt"] == 3
        assert footprint["COMODO"] == 1

    def test_current_certificate_picks_longest_valid(self):
        registry = CertificateRegistry()
        registry.issue("a.example", "Let's Encrypt", issued_at=0, validity_days=10)
        registry.issue("a.example", "Let's Encrypt", issued_at=0, validity_days=90)
        current = registry.current_certificate("a.example", 5 * MINUTES_PER_DAY)
        assert current is not None and current.validity_days == 90
