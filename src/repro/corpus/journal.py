"""The append-only crawl journal behind resumable ``collect`` runs.

:class:`CrawlJournal` is a JSONL event log kept next to a corpus/graph
store being written (``journal.jsonl``): every page ingested, every
instance sealed or discarded, appends one line and flushes it to the OS,
so the journal is at most one event behind reality when the process is
killed.  On restart, :meth:`CrawlJournal.replay` folds the surviving
lines into per-instance :class:`InstanceProgress` — which instances were
sealed (their spools are trusted and skipped), which were mid-flight
(their partial state is quarantined and re-crawled), and how far each
got (pages, rows, ``last_max_id``).

A crash can truncate the final line mid-write; replay tolerates exactly
one trailing undecodable line and rejects corruption anywhere else, so a
damaged journal fails loudly instead of silently dropping instances.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro.errors import DatasetError

#: The journal file name, next to the store's manifest.
JOURNAL_NAME = "journal.jsonl"


@dataclass(slots=True)
class InstanceProgress:
    """What the journal knows about one instance's crawl."""

    domain: str
    pages: int = 0
    rows: int = 0
    last_max_id: int | None = None
    state: str = "open"  # open | sealed | discarded

    @property
    def sealed(self) -> bool:
        """Whether the instance's spool completed and was sealed to disk."""
        return self.state == "sealed"


@dataclass(slots=True)
class JournalReplay:
    """The folded state of a journal: per-instance progress + counters."""

    progress: dict[str, InstanceProgress] = field(default_factory=dict)
    events: int = 0
    truncated_tail: bool = False

    def sealed_domains(self) -> set[str]:
        """Instances whose spools the journal vouches for."""
        return {d for d, p in self.progress.items() if p.sealed}

    def open_domains(self) -> set[str]:
        """Instances that were mid-crawl when the journal stopped."""
        return {d for d, p in self.progress.items() if p.state == "open"}


class CrawlJournal:
    """Append-only JSONL progress log for one store directory.

    Thread-safe: crawler workers append concurrently; each event is one
    ``json.dumps`` line followed by a flush, so lines never interleave
    and at most the final line can be lost to a crash.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._file: IO[str] | None = None

    def _append(self, event: dict[str, object]) -> None:
        with self._lock:
            if self._file is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._file = self.path.open("a", encoding="utf-8")
            self._file.write(json.dumps(event, sort_keys=True) + "\n")
            self._file.flush()

    def page(self, domain: str, rows: int, max_id: int | None = None) -> None:
        """Record one ingested page for ``domain``."""
        event: dict[str, object] = {"event": "page", "domain": domain, "rows": int(rows)}
        if max_id is not None:
            event["max_id"] = int(max_id)
        self._append(event)

    def sealed(self, domain: str) -> None:
        """Record that ``domain``'s spool was sealed (atomic rename done)."""
        self._append({"event": "sealed", "domain": domain})

    def discarded(self, domain: str) -> None:
        """Record that ``domain``'s crawl failed and its spool was dropped."""
        self._append({"event": "discarded", "domain": domain})

    def note(self, kind: str, **payload: object) -> None:
        """Record a free-form progress marker (e.g. ``finalise_started``)."""
        event: dict[str, object] = {"event": kind}
        event.update(payload)
        self._append(event)

    def close(self) -> None:
        """Close the underlying file (appends reopen it transparently)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def remove(self) -> None:
        """Delete the journal file (the store finalised successfully)."""
        self.close()
        self.path.unlink(missing_ok=True)

    @classmethod
    def replay(cls, path: str | Path) -> JournalReplay:
        """Fold a journal file into per-instance progress.

        A missing file replays to an empty state.  One undecodable
        *final* line is tolerated (the crash interrupted that append);
        corruption anywhere else raises :class:`DatasetError`.
        """
        path = Path(path)
        replay = JournalReplay()
        if not path.exists():
            return replay
        lines = path.read_text(encoding="utf-8").splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    replay.truncated_tail = True
                    break
                raise DatasetError(
                    f"corrupt crawl journal {path}: undecodable line {index + 1}"
                ) from None
            if not isinstance(event, dict) or "event" not in event:
                raise DatasetError(
                    f"corrupt crawl journal {path}: line {index + 1} is not an event"
                )
            replay.events += 1
            kind = event["event"]
            domain = event.get("domain")
            if not isinstance(domain, str):
                continue  # free-form notes carry no per-instance state
            progress = replay.progress.get(domain)
            if progress is None:
                progress = replay.progress[domain] = InstanceProgress(domain)
            if kind == "page":
                progress.pages += 1
                progress.rows += int(event.get("rows", 0))
                if "max_id" in event:
                    progress.last_max_id = int(event["max_id"])
            elif kind == "sealed":
                progress.state = "sealed"
            elif kind == "discarded":
                progress.state = "discarded"
        return replay
