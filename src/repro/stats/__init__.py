"""Statistical utilities shared across the measurement and analysis code.

The submodules are intentionally dependency-light (numpy only) so that the
analysis layer can be reused on raw measurement exports without pulling in
the simulator.
"""

from repro.stats.distributions import (
    ECDF,
    lorenz_curve,
    pareto_share,
    sample_lognormal,
    sample_power_law,
    sample_zipf_shares,
    fit_power_law_exponent,
)
from repro.stats.summary import (
    BoxplotStats,
    boxplot_stats,
    gini_coefficient,
    pearson_correlation,
    percentile,
    spearman_correlation,
    summarise,
)

__all__ = [
    "ECDF",
    "BoxplotStats",
    "boxplot_stats",
    "fit_power_law_exponent",
    "gini_coefficient",
    "lorenz_curve",
    "pareto_share",
    "pearson_correlation",
    "percentile",
    "sample_lognormal",
    "sample_power_law",
    "sample_zipf_shares",
    "spearman_correlation",
    "summarise",
]
