"""The per-instance server: accounts, toots, timelines and the instance API.

An :class:`InstanceServer` is the simulated counterpart of one Mastodon
(or Pleroma) deployment.  It owns its local accounts and toots, maintains
the three timelines, tracks follower relationships and federated
subscriptions, and renders the ``/api/v1/instance`` document that the
monitoring crawler polls every five minutes.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import (
    RegistrationClosedError,
    SimulationError,
    UnknownUserError,
)
from repro.fediverse.entities import (
    InstanceDescriptor,
    RegistrationPolicy,
    Toot,
    User,
    UserRef,
    Visibility,
)
from repro.fediverse.timeline import Timeline
from repro.simtime import MINUTES_PER_DAY

#: Number of follower handles shown per follower-list page (the paper
#: scraped these HTML pages to build the follower graph).
FOLLOWERS_PAGE_SIZE = 12

MINUTES_PER_WEEK = 7 * MINUTES_PER_DAY


@dataclass(slots=True)
class InstanceCounters:
    """Running counters surfaced through the instance API."""

    toots_posted: int = 0
    boosts_posted: int = 0
    remote_toots_received: int = 0
    logins: int = 0


class InstanceServer:
    """One simulated Mastodon/Pleroma instance.

    The server is intentionally self-contained: all cross-instance
    behaviour (remote follows, toot delivery) is mediated by
    :class:`repro.fediverse.network.FediverseNetwork`, mirroring how real
    instances only ever talk to each other through federation.
    """

    def __init__(self, descriptor: InstanceDescriptor) -> None:
        self.descriptor = descriptor
        self.users: dict[str, User] = {}
        self.toots: dict[int, Toot] = {}
        self.local_timeline = Timeline()
        self.federated_timeline = Timeline()
        self.home_timelines: dict[str, Timeline] = {}
        self.followers: dict[str, set[UserRef]] = {}
        self.following: dict[str, set[UserRef]] = {}
        #: Remote domains whose content this instance subscribes to.
        self.subscriptions: set[str] = set()
        #: Remote domains that subscribe to this instance's content.
        self.subscribers: set[str] = set()
        #: Weekly login sets: week index -> usernames seen logging in.
        self.weekly_logins: dict[int, set[str]] = {}
        self.counters = InstanceCounters()
        #: Cache for :meth:`user_count_at` / :meth:`toot_count_at`.
        self._creation_cache: tuple[int, int, list[int], list[int]] | None = None

    # -- identity -----------------------------------------------------------

    @property
    def domain(self) -> str:
        """The instance's domain name (its identity in the Fediverse)."""
        return self.descriptor.domain

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstanceServer({self.domain!r}, users={len(self.users)}, toots={len(self.toots)})"

    # -- accounts -----------------------------------------------------------

    def register_user(self, username: str, created_at: int = 0, invited: bool = False) -> User:
        """Register a new local account.

        Closed instances only accept registrations carrying an invitation,
        matching the open/closed split analysed in Section 4.1.
        """
        if username in self.users:
            raise SimulationError(f"username already taken on {self.domain}: {username!r}")
        if self.descriptor.registration is RegistrationPolicy.CLOSED and not invited:
            raise RegistrationClosedError(self.domain)
        user = User(username=username, domain=self.domain, created_at=created_at)
        self.users[username] = user
        self.followers[username] = set()
        self.following[username] = set()
        self.home_timelines[username] = Timeline()
        return user

    def get_user(self, username: str) -> User:
        """Return the local account named ``username``."""
        try:
            return self.users[username]
        except KeyError as exc:
            raise UnknownUserError(f"{username}@{self.domain}") from exc

    def has_user(self, username: str) -> bool:
        """Return whether ``username`` is registered locally."""
        return username in self.users

    def record_login(self, username: str, minute: int) -> None:
        """Record that ``username`` logged in at ``minute`` (activity levels)."""
        if username not in self.users:
            raise UnknownUserError(f"{username}@{self.domain}")
        week = minute // MINUTES_PER_WEEK
        self.weekly_logins.setdefault(week, set()).add(username)
        self.counters.logins += 1

    def _sorted_creation_times(self) -> tuple[list[int], list[int]]:
        """Cached, sorted creation times of users and toots (for bisecting)."""
        if (
            self._creation_cache is None
            or self._creation_cache[0] != len(self.users)
            or self._creation_cache[1] != len(self.toots)
        ):
            user_times = sorted(user.created_at for user in self.users.values())
            toot_times = sorted(toot.created_at for toot in self.toots.values())
            self._creation_cache = (len(self.users), len(self.toots), user_times, toot_times)
        return self._creation_cache[2], self._creation_cache[3]

    def user_count_at(self, minute: int) -> int:
        """Number of accounts registered by ``minute`` (for growth curves)."""
        user_times, _ = self._sorted_creation_times()
        return bisect_right(user_times, minute)

    def toot_count_at(self, minute: int) -> int:
        """Number of local toots posted by ``minute`` (for growth curves)."""
        _, toot_times = self._sorted_creation_times()
        return bisect_right(toot_times, minute)

    def weekly_active_fraction(self) -> float:
        """Maximum fraction of local users logging in during any one week.

        This is the "activity level" metric behind Fig. 2(c).
        """
        if not self.users:
            return 0.0
        if not self.weekly_logins:
            return 0.0
        busiest = max(len(usernames) for usernames in self.weekly_logins.values())
        return busiest / len(self.users)

    # -- toots --------------------------------------------------------------

    def post_toot(
        self,
        username: str,
        toot_id: int,
        created_at: int,
        visibility: Visibility = Visibility.PUBLIC,
        hashtags: Iterable[str] = (),
        content_warning: bool = False,
        media_count: int = 0,
        boost_of: int | None = None,
    ) -> Toot:
        """Create a toot authored by a local user and place it on timelines."""
        author = self.get_user(username).ref
        toot = Toot(
            toot_id=toot_id,
            author=author,
            created_at=created_at,
            visibility=visibility,
            hashtags=tuple(hashtags),
            content_warning=content_warning,
            media_count=media_count,
            boost_of=boost_of,
        )
        self.toots[toot.toot_id] = toot
        self.local_timeline.add(toot)
        self.federated_timeline.add(toot)
        self.home_timelines[username].add(toot)
        if toot.is_boost:
            self.counters.boosts_posted += 1
        else:
            self.counters.toots_posted += 1
        return toot

    def receive_remote_toot(self, toot: Toot) -> bool:
        """Ingest a toot delivered from a remote instance via federation.

        Remote toots land on the federated timeline only; they are not
        re-indexed as local content (the behaviour the paper's replication
        discussion wants to change).  Returns ``False`` for duplicates.
        """
        if toot.author.domain == self.domain:
            raise SimulationError("received a local toot through federation")
        added = self.federated_timeline.add(toot)
        if added:
            self.counters.remote_toots_received += 1
        return added

    def local_toots(self, public_only: bool = False) -> list[Toot]:
        """Return toots authored on this instance."""
        if not public_only:
            return list(self.toots.values())
        return [toot for toot in self.toots.values() if toot.is_public]

    def local_toot_count(self, public_only: bool = False) -> int:
        """Return the number of locally-authored toots."""
        if not public_only:
            return len(self.toots)
        return sum(1 for toot in self.toots.values() if toot.is_public)

    def home_toot_count(self) -> int:
        """Toots generated on the instance (the "home" share of Fig. 14)."""
        return len(self.toots)

    def remote_toot_count(self) -> int:
        """Remote toots replicated onto the federated timeline (Fig. 14)."""
        return len(self.federated_timeline) - self.local_timeline.count()

    # -- follows ------------------------------------------------------------

    def add_follower(self, username: str, follower: UserRef) -> None:
        """Record that ``follower`` (possibly remote) follows a local user."""
        if username not in self.users:
            raise UnknownUserError(f"{username}@{self.domain}")
        self.followers[username].add(follower)
        if follower.domain != self.domain:
            self.subscribers.add(follower.domain)

    def add_following(self, username: str, followed: UserRef) -> None:
        """Record that a local user follows ``followed`` (possibly remote)."""
        if username not in self.users:
            raise UnknownUserError(f"{username}@{self.domain}")
        self.following[username].add(followed)
        if followed.domain != self.domain:
            self.subscriptions.add(followed.domain)

    def followers_of(self, username: str) -> set[UserRef]:
        """Return the accounts following the local user ``username``."""
        if username not in self.users:
            raise UnknownUserError(f"{username}@{self.domain}")
        return set(self.followers[username])

    def following_of(self, username: str) -> set[UserRef]:
        """Return the accounts the local user ``username`` follows."""
        if username not in self.users:
            raise UnknownUserError(f"{username}@{self.domain}")
        return set(self.following[username])

    def followers_page(self, username: str, page: int, per_page: int = FOLLOWERS_PAGE_SIZE) -> list[UserRef]:
        """Return one page of ``username``'s follower list (paged like the HTML UI)."""
        if page < 1:
            raise SimulationError("follower pages are numbered from 1")
        ordered = sorted(self.followers_of(username))
        start = (page - 1) * per_page
        return ordered[start : start + per_page]

    # -- API document -------------------------------------------------------

    def subscription_count(self) -> int:
        """Number of remote domains this instance subscribes to."""
        return len(self.subscriptions)

    def instance_api_document(self, minute: int = 0) -> dict[str, Any]:
        """Render the ``/api/v1/instance`` document polled by the monitor.

        The fields mirror what mnm.social recorded: name, version, user
        and status counts, federated domain count, registration policy and
        recent login activity.
        """
        week = minute // MINUTES_PER_WEEK
        recent_logins = len(self.weekly_logins.get(week, ()))
        return {
            "uri": self.domain,
            "title": self.domain.split(".")[0],
            "version": self.descriptor.version,
            "software": self.descriptor.software.value,
            "registrations": self.descriptor.registration is RegistrationPolicy.OPEN,
            "stats": {
                "user_count": self.user_count_at(minute),
                "status_count": self.toot_count_at(minute),
                "domain_count": len(self.subscriptions | self.subscribers),
            },
            "logins_week": recent_logins,
            "categories": [category.value for category in self.descriptor.categories],
        }
