"""Federation: cross-instance follows and toot delivery.

Federation is the second DW innovation studied by the paper.  When a user
follows an account on a remote instance, their *local* instance performs
the subscription on their behalf; from then on, toots posted on the
remote instance are pushed to the local instance's federated timeline.

:class:`FederationRouter` implements that behaviour over a registry of
:class:`~repro.fediverse.instance.InstanceServer` objects, speaking the
minimal ActivityPub vocabulary from :mod:`repro.fediverse.activitypub`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import SimulationError, UnknownInstanceError
from repro.fediverse.activitypub import Activity, create_activity_for_toot, follow_activity
from repro.fediverse.entities import Follow, Toot, UserRef
from repro.fediverse.instance import InstanceServer


@dataclass
class FederationStats:
    """Counters describing federation traffic, useful in tests and reports."""

    follow_activities: int = 0
    remote_follows: int = 0
    local_follows: int = 0
    deliveries_attempted: int = 0
    deliveries_succeeded: int = 0
    delivery_log: list[Activity] = field(default_factory=list)


class FederationRouter:
    """Routes follows and toots between instances.

    The router holds no instance state itself; it operates on the mapping
    supplied by :class:`~repro.fediverse.network.FediverseNetwork` and is
    therefore trivially testable with hand-built instances.
    """

    def __init__(
        self,
        instances: Mapping[str, InstanceServer],
        record_activities: bool = False,
    ) -> None:
        self._instances = instances
        self._record_activities = record_activities
        self.stats = FederationStats()

    def _instance(self, domain: str) -> InstanceServer:
        try:
            return self._instances[domain]
        except KeyError as exc:
            raise UnknownInstanceError(domain) from exc

    # -- follows ------------------------------------------------------------

    def handle_follow(self, follower: UserRef, followed: UserRef, created_at: int = 0) -> Follow:
        """Create a follow edge, wiring both instances and their subscriptions.

        For remote follows this also records the instance-level federated
        subscription (the edges of the federation graph GF).
        """
        if follower == followed:
            raise SimulationError("an account cannot follow itself")
        follower_instance = self._instance(follower.domain)
        followed_instance = self._instance(followed.domain)
        if not follower_instance.has_user(follower.username):
            raise SimulationError(f"unknown follower account {follower.handle}")
        if not followed_instance.has_user(followed.username):
            raise SimulationError(f"unknown followed account {followed.handle}")

        follower_instance.add_following(follower.username, followed)
        followed_instance.add_follower(followed.username, follower)

        edge = Follow(follower=follower, followed=followed, created_at=created_at)
        if edge.is_remote:
            self.stats.remote_follows += 1
            activity = follow_activity(follower, followed, created_at)
            self.stats.follow_activities += 1
            if self._record_activities:
                self.stats.delivery_log.append(activity)
        else:
            self.stats.local_follows += 1
        return edge

    # -- toot delivery ------------------------------------------------------

    def delivery_targets(self, toot: Toot) -> set[str]:
        """Return the remote domains a toot is pushed to.

        Mastodon delivers a new status to the instances hosting at least
        one follower of the author (those instances hold the federated
        subscription for that account).
        """
        origin = self._instance(toot.author.domain)
        followers = origin.followers_of(toot.author.username)
        return {ref.domain for ref in followers if ref.domain != toot.author.domain}

    def deliver_toot(
        self,
        toot: Toot,
        is_deliverable: Callable[[str], bool] | None = None,
    ) -> int:
        """Push a freshly posted toot to every subscribing remote instance.

        ``is_deliverable`` lets callers model delivery-time failures (an
        offline subscriber simply misses the push).  Returns the number of
        instances that received the toot.
        """
        delivered = 0
        for domain in sorted(self.delivery_targets(toot)):
            self.stats.deliveries_attempted += 1
            if is_deliverable is not None and not is_deliverable(domain):
                continue
            subscriber = self._instance(domain)
            if subscriber.receive_remote_toot(toot):
                delivered += 1
                self.stats.deliveries_succeeded += 1
                if self._record_activities:
                    self.stats.delivery_log.append(create_activity_for_toot(toot, domain))
        return delivered

    # -- graph views --------------------------------------------------------

    def subscription_edges(self) -> set[tuple[str, str]]:
        """Return the instance-level federation edges ``(subscriber, publisher)``.

        An edge ``(a, b)`` means at least one user on ``a`` follows a user
        on ``b``, i.e. instance ``a`` subscribes to content from ``b``.
        """
        edges: set[tuple[str, str]] = set()
        for domain, instance in self._instances.items():
            for publisher in instance.subscriptions:
                edges.add((domain, publisher))
        return edges
