"""Registry integrity: metadata, benchmark scripts and runners stay in sync."""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from repro.experiments import has_runner, runnable_ids
from repro.reporting.experiments import EXPERIMENTS

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestBenchmarkPaths:
    def test_every_registered_benchmark_exists_on_disk(self):
        missing = [
            experiment.benchmark
            for experiment in EXPERIMENTS.values()
            if not (REPO_ROOT / experiment.benchmark).is_file()
        ]
        assert not missing, f"registry points at missing benchmark scripts: {missing}"

    def test_no_benchmark_referenced_twice(self):
        counts = Counter(experiment.benchmark for experiment in EXPERIMENTS.values())
        duplicates = {path: n for path, n in counts.items() if n > 1}
        assert not duplicates, f"benchmark scripts referenced by several entries: {duplicates}"

    def test_every_figure_and_table_script_is_registered(self):
        """Every bench_fig*/bench_table* script belongs to exactly one entry.

        Catches rename drift in both directions: a script renamed without
        updating the registry shows up as unregistered, and a registry
        entry pointing at a renamed script fails the exists-on-disk test.
        """
        on_disk = {
            f"benchmarks/{path.name}"
            for pattern in ("bench_fig*.py", "bench_table*.py")
            for path in (REPO_ROOT / "benchmarks").glob(pattern)
        }
        referenced = {experiment.benchmark for experiment in EXPERIMENTS.values()}
        unregistered = on_disk - referenced
        assert not unregistered, f"benchmark scripts not in the registry: {sorted(unregistered)}"


class TestRunners:
    def test_every_registry_entry_has_a_runner(self):
        missing = [
            experiment_id for experiment_id in EXPERIMENTS if not has_runner(experiment_id)
        ]
        assert not missing, f"registry entries without an executable runner: {missing}"

    def test_runnable_ids_preserve_registry_order(self):
        assert runnable_ids() == list(EXPERIMENTS)
