"""Fig. 11 — out-degree CDFs of the follower, federation and Twitter graphs.

Paper shape: all three graphs are heavy-tailed; the federation graph has
a flatter (more uniform) degree distribution than the user-level graphs.
"""

from __future__ import annotations

import numpy as np

from repro.core import resilience
from repro.reporting import format_table
from repro.stats.distributions import fit_power_law_exponent

from benchmarks.conftest import emit


def test_fig11_degree_distributions(benchmark, data, twitter):
    follower_degrees = data.graphs.out_degrees()
    federation_degrees = data.graphs.federation_out_degrees()
    twitter_degrees = [degree for _, degree in twitter.follower_graph.out_degree()]

    def build_cdfs():
        return {
            "mastodon_users": resilience.degree_cdf([d for d in follower_degrees if d > 0]),
            "mastodon_instances": resilience.degree_cdf([d for d in federation_degrees if d > 0]),
            "twitter_users": resilience.degree_cdf([d for d in twitter_degrees if d > 0]),
        }

    cdfs = benchmark(build_cdfs)
    rows = []
    for name, cdf in cdfs.items():
        sample = list(cdf.values)
        rows.append(
            [
                name,
                len(sample),
                round(float(np.median(sample)), 1),
                round(cdf.quantile(0.99), 1),
                round(fit_power_law_exponent(sample), 2),
            ]
        )
    emit(
        "Fig. 11 — out-degree distributions",
        format_table(["graph", "nodes", "median degree", "p99 degree", "power-law exponent"], rows),
    )

    # heavy tails: the 99th percentile is far above the median for user graphs
    assert cdfs["mastodon_users"].quantile(0.99) > 4 * max(1.0, cdfs["mastodon_users"].quantile(0.5))
    assert cdfs["twitter_users"].quantile(0.99) > 4 * max(1.0, cdfs["twitter_users"].quantile(0.5))
