"""The failure-simulation engine: sparse-matrix kernels for Figs. 11-16.

The engine is the vectorised substrate under :mod:`repro.core.replication`
and :mod:`repro.core.resilience`.  It models the expensive objects once —

* :class:`PlacementArrays` — integer-coded placements (per-toot home
  codes plus replica CSR arrays) produced by the vectorised builders in
  :mod:`repro.engine.placement`: batched random draws (Gumbel top-k for
  the weighted case) and a one-pass subscription builder;
* :class:`TootIncidence` — a toot×instance CSR incidence matrix built
  from a :class:`~repro.core.replication.PlacementMap` (plus an
  instance→AS assignment vector), assembled directly from the arrays
  backend and memoised per placement map;
* :class:`GraphMatrix` — a binary CSR adjacency matrix with the node
  ordering of the source :mod:`networkx` graph —

and then answers whole experiments with batch numpy/scipy reductions:
entire availability curves per failure schedule
(:mod:`repro.engine.kernels`), whole LCC/component removal trajectories
(:mod:`repro.engine.resilience`), and full (strategy × failure × seed)
grids in one call (:mod:`repro.engine.sweep`).  Past the auto-shard
threshold — or on request via ``shard_size``/``workers`` — evaluation
streams through :class:`ShardedIncidence`
(:mod:`repro.engine.sharding`): per-toot-range incidence shards
assembled lazily and reduced to additive loss tables, so peak memory is
O(shard) and shards can run thread-parallel with bit-identical output.

The public functions in :mod:`repro.core` remain the stable API; they
dispatch here and are held to *bit-identical* outputs by the
differential suite in ``tests/engine/test_equivalence.py``.  New failure
models subclass :class:`FailureModel` — see :mod:`repro.engine.failures`.
"""

from repro.engine.failures import (
    ASRemoval,
    CountryRemoval,
    FailureModel,
    GroupedRemoval,
    HosterRemoval,
    InstanceRemoval,
    ScheduledDowntime,
    TemporalChurn,
    TemporalFailureModel,
)
from repro.engine.incidence import DomainLookup, NEVER_REMOVED, TootIncidence
from repro.engine.sharding import (
    AUTO_SHARD_THRESHOLD,
    DEFAULT_SHARD_SIZE,
    IncidenceShard,
    ShardedIncidence,
    sharded_availability_curves,
    streaming_losses,
)
from repro.engine.placement import (
    PlacementArrays,
    build_no_replication,
    build_random_replication,
    build_subscription_replication,
)
from repro.engine.kernels import (
    availability_curve_array,
    availability_curves_batch,
    availability_from_losses,
    kill_steps,
    kill_steps_batch,
    losses_per_step,
    losses_per_step_batch,
    losses_per_step_rows,
    temporal_availability_from_counts,
    temporal_removal_matrix,
)
from repro.engine.resilience import (
    GraphMatrix,
    as_removal_sweep_matrix,
    ranked_removal_sweep_matrix,
    user_removal_sweep_matrix,
)
from repro.engine.sweep import (
    StrategySpec,
    SweepResult,
    availability_curve,
    availability_curves,
    random_strategy_grid,
    run_availability_sweep,
)

__all__ = [
    "ASRemoval",
    "AUTO_SHARD_THRESHOLD",
    "CountryRemoval",
    "DEFAULT_SHARD_SIZE",
    "DomainLookup",
    "FailureModel",
    "GraphMatrix",
    "GroupedRemoval",
    "HosterRemoval",
    "IncidenceShard",
    "InstanceRemoval",
    "NEVER_REMOVED",
    "ScheduledDowntime",
    "TemporalChurn",
    "TemporalFailureModel",
    "PlacementArrays",
    "ShardedIncidence",
    "StrategySpec",
    "SweepResult",
    "TootIncidence",
    "as_removal_sweep_matrix",
    "availability_curve",
    "availability_curve_array",
    "availability_curves",
    "availability_curves_batch",
    "availability_from_losses",
    "build_no_replication",
    "build_random_replication",
    "build_subscription_replication",
    "kill_steps",
    "kill_steps_batch",
    "losses_per_step",
    "losses_per_step_batch",
    "losses_per_step_rows",
    "random_strategy_grid",
    "ranked_removal_sweep_matrix",
    "run_availability_sweep",
    "sharded_availability_curves",
    "streaming_losses",
    "temporal_availability_from_counts",
    "temporal_removal_matrix",
    "user_removal_sweep_matrix",
]
