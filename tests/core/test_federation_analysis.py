"""Tests for the content-federation analyses (Fig. 14, Table 2)."""

from __future__ import annotations

import pytest

from repro.core import federation_analysis
from repro.crawler.toot_crawler import TootRecord
from repro.datasets.graphs import GraphDataset
from repro.datasets.toots import TootsDataset
from repro.errors import AnalysisError


def record(toot_id: int, author: str, home: str, collected_from: str) -> TootRecord:
    return TootRecord(
        toot_id=toot_id,
        url=f"https://{home}/@{author}/{toot_id}",
        account=f"{author}@{home}",
        author_domain=home,
        collected_from=collected_from,
        created_at=toot_id,
    )


def make_toots() -> TootsDataset:
    """feeder.example produces everything; leech.example only re-shows it."""
    feeder_toots = [record(i, "star", "feeder.example", "feeder.example") for i in range(1, 21)]
    leech_own = [record(100, "small", "leech.example", "leech.example")]
    leech_observed = leech_own + [
        record(i, "star", "feeder.example", "leech.example") for i in range(1, 16)
    ]
    observations = {
        "feeder.example": feeder_toots,
        "leech.example": leech_observed,
    }
    records = feeder_toots + leech_observed
    return TootsDataset(records=records, observed_by_instance=observations)


def make_graphs() -> GraphDataset:
    edges = [
        ("small@leech.example", "star@feeder.example"),
        ("other@leech.example", "star@feeder.example"),
        ("star@feeder.example", "small@leech.example"),
    ]
    return GraphDataset.from_edges(edges)


class TestHomeRemoteSeries:
    def test_series_ordered_by_home_share(self):
        points = federation_analysis.home_remote_series(make_toots())
        assert [p.domain for p in points] == ["leech.example", "feeder.example"]
        assert points[0].home_share == pytest.approx(1 / 16)
        assert points[1].home_share == 1.0

    def test_empty_observations_rejected(self):
        dataset = TootsDataset(records=[record(1, "a", "x.example", "x.example")])
        with pytest.raises(AnalysisError):
            federation_analysis.home_remote_series(dataset)

    def test_feeder_summary(self):
        summary = federation_analysis.feeder_summary(make_toots())
        assert summary["share_under_10pct_home"] == pytest.approx(0.5)
        assert summary["share_fully_remote"] == 0.0
        assert -1.0 <= summary["toots_vs_replication_correlation"] <= 1.0

    def test_pipeline_most_instances_rely_on_remote_content(self, datasets):
        summary = federation_analysis.feeder_summary(datasets.toots)
        # at tiny scale the effect is weaker than the paper's 78%, but a
        # sizeable share of instances must already be mostly remote-fed
        assert summary["share_under_10pct_home"] > 0.1
        assert summary["toots_vs_replication_correlation"] > 0.2
        points = federation_analysis.home_remote_series(datasets.toots)
        median_home_share = sorted(p.home_share for p in points)[len(points) // 2]
        assert median_home_share < 0.7


class TestTopInstances:
    def test_table_rows(self):
        rows = federation_analysis.top_instances_report(
            make_toots(), make_graphs(), _instances_dataset(), top=2
        )
        assert rows[0].domain == "feeder.example"
        assert rows[0].home_toots == 20
        assert rows[0].users == 1
        assert rows[0].user_in_degree == 2        # two remote followers
        assert rows[0].user_out_degree == 1       # star follows one remote account
        assert rows[0].instance_in_degree == 1
        assert rows[0].operator == "company"
        assert rows[1].domain == "leech.example"

    def test_top_validation(self):
        with pytest.raises(AnalysisError):
            federation_analysis.top_instances_report(
                make_toots(), make_graphs(), _instances_dataset(), top=0
            )

    def test_pipeline_table_is_sorted_by_home_toots(self, datasets):
        rows = federation_analysis.top_instances_report(
            datasets.toots, datasets.graphs, datasets.instances, top=10
        )
        counts = [row.home_toots for row in rows]
        assert counts == sorted(counts, reverse=True)
        assert all(row.users >= 0 for row in rows)


def _instances_dataset():
    from repro.crawler.monitor import InstanceSnapshot, MonitoringLog
    from repro.datasets.instances import InstanceMetadata, InstancesDataset

    log = MonitoringLog(interval_minutes=60)
    for domain in ("feeder.example", "leech.example"):
        log.snapshots.append(
            InstanceSnapshot(domain=domain, minute=0, online=True, user_count=10, toot_count=100)
        )
    metadata = {
        "feeder.example": InstanceMetadata(
            domain="feeder.example", operator="company", as_name="Amazon.com, Inc.", country="JP"
        ),
        "leech.example": InstanceMetadata(
            domain="leech.example", operator="individual", as_name="OVH SAS", country="FR"
        ),
    }
    return InstancesDataset(log=log, metadata=metadata)
