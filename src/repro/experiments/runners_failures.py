"""Runners for the correlated and temporal failure experiments.

Both are engine sweeps over the pluggable failure models of
:mod:`repro.engine.failures`: ``correlated`` removes whole hosting
providers and countries in ranked order (the paper's Tables 1-2 blast
radii), and ``churn`` probes availability through simulated time while
instances go down *and come back* on the empirical outage distributions
(Figs. 7-10).  The strategies mirror the fig15/16 family — no
replication, subscription replication, and a small random-replication
budget — so the two experiments answer the paper's question for
correlated and temporal failures: does replication still help?
"""

from __future__ import annotations

import numpy as np

from repro.engine import StrategySpec
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import register_runner
from repro.experiments.results import ExperimentResult, ResultSeries, ResultTable
from repro.reporting import format_percentage

#: The strategy grid shared by both failure experiments.
STRATEGIES = (
    StrategySpec.none(),
    StrategySpec.subscription(),
    StrategySpec.random(2, name="n=2"),
)


def _curve_series(name: str, curve) -> ResultSeries:
    return ResultSeries.build(
        name,
        [point.removed for point in curve],
        [point.availability for point in curve],
        x_label="removed",
        y_label="availability",
    )


def _tick_series(name: str, curve) -> ResultSeries:
    return ResultSeries.build(
        name,
        [point.removed for point in curve],
        [point.availability for point in curve],
        x_label="tick",
        y_label="availability",
    )


@register_runner("correlated")
def run_correlated(ctx: ExperimentContext) -> ExperimentResult:
    failures = ctx.correlated_failures()
    result = ctx.sweep(list(STRATEGIES), failures)

    removals = (1, 2, 3, 5)
    tables = []
    for failure, label in zip(failures, ("hosters", "countries")):
        rows = [
            [row[0]] + [format_percentage(value) for value in row[1:]]
            for row in result.availability_rows(failure.name, removals)
        ]
        tables.append(
            ResultTable.build(
                f"Toot availability when removing top {label} (by hosted users)",
                ["strategy"] + [f"top {r} removed" for r in removals],
                rows,
            )
        )
    top_hosters = ctx.hoster_ranking()[:5]
    top_countries = ctx.country_ranking()[:5]
    tables.append(
        ResultTable.build(
            "Removal order (ranked by hosted users)",
            ["step", "hoster", "country"],
            [
                [i + 1, hoster, country]
                for i, (hoster, country) in enumerate(zip(top_hosters, top_countries))
            ],
        )
    )

    at1 = {failure.name: result.compare(failure.name, 1) for failure in failures}
    return ExperimentResult.build(
        "correlated",
        "Correlated hoster and country outages",
        tables=tables,
        series=[
            _curve_series(f"{strategy}/{failure.name}", result.curve(strategy, failure.name))
            for strategy in result.strategy_names
            for failure in failures
        ],
        scalars={
            **{
                f"top1_{failure.name}[{strategy}]": value
                for failure in failures
                for strategy, value in at1[failure.name].items()
            },
            "top_hoster": top_hosters[0],
            "top_country": top_countries[0],
        },
    )


@register_runner("churn")
def run_churn(ctx: ExperimentContext) -> ExperimentResult:
    failures = ctx.churn_failures()
    result = ctx.sweep(list(STRATEGIES), failures)

    def availability_values(strategy: str, failure_name: str) -> np.ndarray:
        # drop index 0: it is the no-outage baseline, not a probed tick
        curve = result.curve(strategy, failure_name)
        return np.asarray([point.availability for point in curve[1:]], dtype=np.float64)

    rows = []
    scalars: dict[str, object] = {"churn_ticks": ctx.churn_ticks}
    for strategy in result.strategy_names:
        per_seed = np.stack(
            [availability_values(strategy, failure.name) for failure in failures]
        )
        mean = float(per_seed.mean())
        worst = float(per_seed.min())
        rows.append([strategy, format_percentage(mean), format_percentage(worst)])
        scalars[f"mean_availability[{strategy}]"] = mean
        scalars[f"min_availability[{strategy}]"] = worst

    return ExperimentResult.build(
        "churn",
        "Availability under temporal churn",
        tables=[
            ResultTable.build(
                f"Availability across {ctx.churn_ticks} probe ticks "
                f"({len(failures)} sampled outage processes)",
                ["strategy", "mean availability", "worst tick"],
                rows,
            )
        ],
        series=[
            _tick_series(
                f"{strategy}/{failure.name}", result.curve(strategy, failure.name)
            )
            for strategy in result.strategy_names
            for failure in failures[:1]  # one representative seed per strategy
        ],
        scalars=scalars,
    )
